#!/usr/bin/env python3
"""Quickstart: train BERT-large on a simulated 4-GPU commodity server.

The paper's ideal is that "users could write DNN training programs that
target a single virtual accelerator device with practically unbounded
memory".  This script is that experience: pick a model and a server,
choose a parallelization scheme, and run one training iteration — the
task decomposer, scheduler, and memory manager handle the rest.

Run:
    python examples/quickstart.py
"""

from repro import BatchConfig, HarmonyConfig, HarmonySession
from repro.hardware import presets
from repro.models import zoo
from repro.units import GB


def main() -> None:
    # The model, written as if for a single device with unbounded memory.
    model = zoo.build("bert-large")
    print(model.describe())
    footprint = model.training_footprint_bytes(microbatch_size=5)
    print(f"training footprint at batch 5: {footprint / GB:.1f} GB")

    # The paper's testbed: four 11 GB GTX 1080Ti GPUs behind a shared
    # PCIe uplink (4:1 oversubscription).
    server = presets.gtx1080ti_server(num_gpus=4)
    print(server)
    print()

    # Harmony-PP: layer packs late-bound round-robin across GPUs,
    # input-batch grouping, jit updates, p2p transfers.
    config = HarmonyConfig(
        parallelism="harmony-pp",
        batch=BatchConfig(microbatch_size=5, num_microbatches=4),
    )
    session = HarmonySession(model, server, config)
    print(session.explain())
    print()
    result = session.run()

    print(result.summary())
    print()
    print(f"throughput:       {result.throughput:.2f} seqs/s")
    print(f"swap-out volume:  {result.swap_out_volume / GB:.1f} GB per iteration")
    print(f"p2p volume:       {result.stats.p2p_volume() / GB:.1f} GB per iteration")
    link, util = result.bottleneck_link()
    print(f"bottleneck link:  {link} at {100 * util:.0f}% utilization")
    print()
    print("memory usage over the iteration (8 shade levels, full = capacity):")
    for device in sorted(result.devices):
        print("  " + result.memory_sparkline(device, width=80))


if __name__ == "__main__":
    main()
