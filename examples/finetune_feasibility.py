#!/usr/bin/env python3
"""Can the masses fine-tune large models?  (Paper section 4.)

The paper argues that while *pre-training* GPT-3 on a modest server
would take years, Harmony still enables development, debugging, and
*fine-tuning* — which needs under 10s of exaFLOPs — "clocking in at
days with modest small-scale deployments".

This script combines both halves of that argument: the closed-form
FLOP arithmetic, and the simulator's measured per-iteration time for a
model that actually fits the regime (GPT-2 XL on the 4x 1080Ti box),
extrapolated to a realistic fine-tuning corpus.

Run:
    python examples/finetune_feasibility.py
"""

from repro import BatchConfig, HarmonyConfig, HarmonySession
from repro.analytic.feasibility import pretraining_flops, training_days
from repro.hardware import presets
from repro.models import zoo
from repro.models.transformer import gpt2_xl
from repro.units import fmt_flops, fmt_time


def main() -> None:
    print("-- closed-form arithmetic (paper section 4) --")
    gpt3 = zoo.build("gpt3")
    flops = pretraining_flops(gpt3.param_count, 300e9)
    print(f"GPT-3 pre-training: {fmt_flops(flops)} (paper: 314 ZFLOPs)")
    for gpus in (1000, 32, 4):
        days = training_days(flops, gpus)
        print(f"  on {gpus:>4} GPUs: {days:,.0f} days ({days / 365.25:.1f} years)")
    print()

    print("-- simulated fine-tuning: GPT-2 XL on 4x 1080Ti --")
    model = gpt2_xl(seq_len=1024)
    server = presets.gtx1080ti_server(num_gpus=4)
    session = HarmonySession(
        model,
        server,
        HarmonyConfig("harmony-pp", batch=BatchConfig(1, 4)),
    )
    result = session.run()
    samples_per_sec = result.throughput
    print(f"iteration time: {fmt_time(result.makespan)} for {result.samples} seqs")
    print(f"throughput:     {samples_per_sec:.2f} seqs/s")

    # A typical fine-tuning pass: ~100k sequences, 3 epochs.
    corpus, epochs = 100_000, 3
    seconds = corpus * epochs / samples_per_sec
    print(
        f"fine-tuning {corpus:,} seqs x {epochs} epochs: "
        f"{fmt_time(seconds)}"
    )
    print()
    print(
        "Conclusion (matching the paper): pre-training from scratch is out\n"
        "of reach for a modest server, but fine-tuning completes in days —\n"
        "Harmony makes the difference between 'cannot run at all' (the\n"
        "model exceeds aggregate GPU memory) and 'runs at usable speed'."
    )


if __name__ == "__main__":
    main()
