#!/usr/bin/env python3
"""Explore the memory-performance tango (paper section 4).

Maps the full pack-size x microbatch-size surface for a model that does
not fit, showing the three regions the paper describes: infeasible
(working set exceeds capacity), transfer-bound (tiny granularity swaps
constantly), and the sweet spot between them.  Then compares the
double-buffering (prefetch) trade-off on roomy vs tight memory.

Run:
    python examples/tune_granularity.py
"""

from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.presets import commodity_server
from repro.models import zoo
from repro.tuner.search import tune
from repro.tuner.tango import prefetch_tradeoff, tango_surface, tango_table
from repro.units import MB, TFLOP


def small_server(capacity_mb: float):
    return commodity_server(
        num_gpus=2,
        gpu_factory=lambda n: DeviceSpec(
            n, DeviceKind.GPU, capacity_mb * MB, 4.5 * TFLOP
        ),
        name=f"server-{capacity_mb:.0f}MB",
    )


def main() -> None:
    model = zoo.synthetic_uniform(
        num_layers=8, param_bytes_per_layer=50 * MB, activation_bytes=10 * MB
    )
    server = small_server(400)
    print(model.describe())
    print(server)
    print()

    print("-- tango surface (pack size x microbatch split) --")
    points = tango_surface(model, server, minibatch_per_replica=8)
    print(tango_table(points))
    print()

    print("-- tuner search --")
    result = tune(model, server, minibatch_per_replica=8)
    print(result.table())
    print()
    print(f"best configuration: {result.best.label}")
    print()

    print("-- double-buffering (prefetch) trade-off --")
    for capacity in (1200, 400):
        base, prefetched = prefetch_tradeoff(
            model, small_server(capacity), microbatch_size=1, num_microbatches=4
        )
        gain = (base.makespan - prefetched.makespan) / base.makespan * 100
        print(
            f"capacity {capacity:>5} MB: serial {base.makespan:.3f}s, "
            f"prefetch {prefetched.makespan:.3f}s ({gain:+.1f}%)"
        )
    print(
        "\nWith headroom the prefetch hides swap latency behind compute;\n"
        "under tight memory it degrades gracefully to serial execution\n"
        "(the working sets of two tasks cannot be resident together)."
    )


if __name__ == "__main__":
    main()
