#!/usr/bin/env python3
"""The paper's motivating scenario: a long-tail researcher training a
1.5 B-parameter GPT-2 XL on a commodity 4x 11 GB server.

GPT-2 XL's training state (weights + gradients + Adam moments) is
~25 GB — more than two of these GPUs hold together — so every scheme
must swap.  The script compares all five schedules head-to-head and
then lets the performance tuner pick Harmony's task granularity.

Run:
    python examples/large_model_on_commodity.py
"""

from repro import BatchConfig, HarmonyConfig, HarmonySession, compare_runs
from repro.hardware import presets
from repro.models.transformer import gpt2_xl
from repro.tuner.search import tune
from repro.units import GB

SCHEMES = ["single", "dp-baseline", "harmony-dp", "pp-baseline", "harmony-pp"]


def main() -> None:
    model = gpt2_xl(seq_len=1024)
    server = presets.gtx1080ti_server(num_gpus=4)
    state = model.param_bytes + model.grad_bytes + model.optimizer_bytes
    print(model.describe())
    print(
        f"training state: {state / GB:.1f} GB vs "
        f"{len(server.gpus())} x {server.gpus()[0].memory_bytes / GB:.1f} GB GPUs"
    )
    print()

    batch = BatchConfig(microbatch_size=1, num_microbatches=4)
    results = []
    for scheme in SCHEMES:
        session = HarmonySession(model, server, HarmonyConfig(scheme, batch=batch))
        results.append(session.run())
    print(compare_runs(results))
    print()

    print("tuning Harmony-PP task granularity (pack x microbatch search)...")
    outcome = tune(model, server, minibatch_per_replica=4, refine=True)
    print(outcome.table())
    best = outcome.best
    print()
    print(
        f"tuner pick: {best.label} -> {best.throughput:.3f} samples/s "
        f"({best.swap_out_bytes / GB:.1f} GB swapped out per iteration)"
    )


if __name__ == "__main__":
    main()
