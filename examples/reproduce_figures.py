#!/usr/bin/env python3
"""Regenerate every figure and quantitative claim in the paper.

Prints, in order: Fig. 1 (model growth), Fig. 2(a) (DP swap bottleneck),
Fig. 2(b) (interconnect contention), Fig. 2(c) (PP imbalance), Fig. 4
(the Harmony-PP schedule, as an ASCII timeline), Fig. 5 / section-3
(weight swap volumes, analytic vs simulated), and the section-4
feasibility arithmetic.

Run:
    python examples/reproduce_figures.py
"""

from repro.experiments import (
    fig1_growth,
    fig2a_dp_swap,
    fig2b_interconnect,
    fig2c_pp_imbalance,
    fig4_schedule,
    fig5_swap_volumes,
    sec4_feasibility,
)


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("Fig. 1: model size growth")
    print(fig1_growth.table())

    banner("Fig. 2(a): DP + per-GPU swapping (BERT, per-GPU batch 5)")
    print(fig2a_dp_swap.table())

    banner("Fig. 2(b): intra-server interconnects")
    print(fig2b_interconnect.table())

    banner("Fig. 2(c): PP + per-GPU swapping (BERT, 1F1B)")
    print(fig2c_pp_imbalance.table())

    banner("Fig. 4: Harmony-PP schedule (4 layers, 2 GPUs, 2 microbatches)")
    print(fig4_schedule.describe())

    banner("Fig. 5 / section 3: weight swap volumes, analytic vs simulated")
    print(fig5_swap_volumes.table())

    banner("Section 4: end-to-end training feasibility")
    print(sec4_feasibility.run().table)


if __name__ == "__main__":
    main()
