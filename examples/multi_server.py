#!/usr/bin/env python3
"""Scaling out: two commodity servers, operation decomposition, and a
CPU-offloaded optimizer (paper section 4's future directions, working).

Four ways to train GPT-2 XL (24.9 GB of training state) beyond a single
4x 11 GB box:

1. one server, harmony-pp            — the baseline Harmony setup;
2. one server, harmony-tp            — split every matmul 4 ways so
   per-GPU state drops to 6.2 GB (paper key idea #2);
3. one server, CPU-offloaded Adam    — optimizer state lives in host
   DRAM (the ZeRO-Offload design the paper cites);
4. two servers over 100 GbE          — section 4's multi-machine
   extension: more aggregate memory, hierarchical interconnects.

Run:
    python examples/multi_server.py
"""

from repro import BatchConfig, HarmonyConfig, HarmonyOptions, HarmonySession, compare_runs
from repro.hardware.presets import gtx1080ti_server, multi_server_cluster
from repro.models.transformer import gpt2_xl
from repro.tensors.tensor import TensorKind
from repro.units import GB


def main() -> None:
    model = gpt2_xl(seq_len=1024)
    state = model.param_bytes + model.grad_bytes + model.optimizer_bytes
    print(f"{model.describe()}; training state {state / GB:.1f} GB")
    print()

    batch = BatchConfig(microbatch_size=1, num_microbatches=4)
    configurations = [
        (
            "1 server / harmony-dp (replicated)",
            gtx1080ti_server(4),
            HarmonyConfig("harmony-dp", batch=batch),
        ),
        (
            "1 server / harmony-pp",
            gtx1080ti_server(4),
            HarmonyConfig("harmony-pp", batch=batch),
        ),
        (
            "1 server / harmony-tp (sharded ops)",
            gtx1080ti_server(4),
            HarmonyConfig("harmony-tp", batch=batch),
        ),
        (
            "1 server / harmony-pp + CPU optimizer",
            gtx1080ti_server(4),
            HarmonyConfig(
                "harmony-pp", batch=batch,
                options=HarmonyOptions(cpu_optimizer=True),
            ),
        ),
        (
            "2 servers (100GbE) / harmony-pp",
            multi_server_cluster(2, 4, network="100gbe"),
            HarmonyConfig("harmony-pp", batch=batch),
        ),
    ]

    results = []
    for label, topo, config in configurations:
        session = HarmonySession(model, topo, config)
        result = session.run()
        results.append(result)
        w = result.stats.kind_swap_volume(TensorKind.WEIGHT)
        k = result.stats.kind_swap_volume(TensorKind.OPT_STATE)
        print(
            f"{label:40s} {result.throughput:5.3f} seq/s   "
            f"W traffic {w / GB:5.1f} GB   K traffic {k / GB:5.1f} GB"
        )

    print()
    print(compare_runs(results))
    print()
    print(
        "Observations: partitioning state (pp/tp) slashes the weight\n"
        "traffic that replication (dp) pays; offloading Adam removes\n"
        "optimizer-state traffic entirely; a second server doubles\n"
        "aggregate GPU memory, which relieves swap pressure even across\n"
        "a network an order of magnitude slower than PCIe."
    )


if __name__ == "__main__":
    main()
