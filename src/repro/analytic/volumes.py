"""Closed-form per-iteration swap volumes (paper §3).

The headline result the paper derives for model weights, training an
R-layer model with ``m`` microbatches per GPU on ``N`` GPUs:

* DP with per-GPU virtualization:  ``(4m + 2) * N * |W|``
* Harmony-DP:                      ``3 * N * |W|``
* Harmony-PP:                      ``3 * |W|``

This module implements those formulas plus the "complete analytical
model that covers all tensors shown in Fig. 5(a)" that the paper omits
for brevity: per-kind volumes under the same idealized assumptions
(uniform layers, capacity = one layer-level operation's working set,
no reuse window in the baseline swapper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.models.graph import ModelGraph
from repro.units import fmt_bytes
from repro.util.tables import Table


def _check(m: int, n: int) -> None:
    if m < 1:
        raise ConfigError("need at least one microbatch")
    if n < 1:
        raise ConfigError("need at least one GPU")


# -- headline weight formulas -----------------------------------------------


def weight_volume_baseline_dp(model: ModelGraph, m: int, n: int) -> float:
    """``(4m + 2) N |W|``: per microbatch, each GPU swaps W in and out
    for forward and again for backward (4m), plus in/out once for the
    update (2)."""
    _check(m, n)
    return (4 * m + 2) * n * model.param_bytes


def weight_volume_harmony_dp(model: ModelGraph, m: int, n: int) -> float:
    """``3 N |W|``: input-batch grouping means one swap-in per pass
    (forward + backward = 2), and jit update writes W back once."""
    _check(m, n)
    return 3 * n * model.param_bytes


def weight_volume_harmony_pp(model: ModelGraph, m: int, n: int) -> float:
    """``3 |W|``: as Harmony-DP, but weights are partitioned (not
    replicated), so the volume does not scale with N."""
    _check(m, n)
    return 3 * model.param_bytes


# -- the complete per-kind model ------------------------------------------------


@dataclass(frozen=True)
class SchemeVolumes:
    """Per-tensor-kind host-crossing volume for one scheme, one
    iteration.  ``p2p`` is device-to-device volume (free of the host
    uplink); everything else crosses the host link."""

    scheme: str
    weights: float
    weight_grads: float
    optimizer: float
    stash: float
    activations: float
    p2p: float = 0.0

    @property
    def host_total(self) -> float:
        return (
            self.weights
            + self.weight_grads
            + self.optimizer
            + self.stash
            + self.activations
        )

    def as_row(self) -> list[str]:
        return [
            self.scheme,
            fmt_bytes(self.weights),
            fmt_bytes(self.weight_grads),
            fmt_bytes(self.optimizer),
            fmt_bytes(self.stash),
            fmt_bytes(self.activations),
            fmt_bytes(self.p2p),
            fmt_bytes(self.host_total),
        ]


def _boundary_bytes(model: ModelGraph, microbatch_size: int) -> float:
    """Sum over layers of (|X_l| + |Y_l|) for one microbatch: every
    activation boundary is counted once as a consumer input and once as
    a producer output, which is how the per-task swap model charges it."""
    return sum(
        layer.in_bytes(microbatch_size) + layer.out_bytes(microbatch_size)
        for layer in model
    )


def baseline_dp_volumes(
    model: ModelGraph, m: int, n: int, microbatch_size: int = 1
) -> SchemeVolumes:
    """Idealized per-GPU-virtualization DP: every task swaps its full
    Fig. 5(a) in-set in and out-set out."""
    _check(m, n)
    stash = model.stash_bytes(microbatch_size)
    return SchemeVolumes(
        scheme="dp-baseline",
        weights=(4 * m + 2) * n * model.param_bytes,
        weight_grads=(2 * m + 2) * n * model.grad_bytes,
        optimizer=2 * n * model.optimizer_bytes,
        stash=2 * m * n * stash,
        activations=2 * m * n * _boundary_bytes(model, microbatch_size),
    )


def harmony_dp_volumes(
    model: ModelGraph, m: int, n: int, microbatch_size: int = 1
) -> SchemeVolumes:
    """Harmony-DP: grouping collapses per-microbatch weight/grad swaps
    into per-pass swaps; jit update reuses resident W/dW; clean weights
    drop for free after the forward pass."""
    _check(m, n)
    stash = model.stash_bytes(microbatch_size)
    return SchemeVolumes(
        scheme="harmony-dp",
        weights=3 * n * model.param_bytes,
        weight_grads=2 * n * model.grad_bytes,
        optimizer=2 * n * model.optimizer_bytes,
        stash=2 * m * n * stash,
        activations=2 * m * n * _boundary_bytes(model, microbatch_size),
    )


def harmony_pp_volumes(
    model: ModelGraph, m: int, n: int, microbatch_size: int = 1
) -> SchemeVolumes:
    """Harmony-PP: weights partitioned across GPUs (volume independent
    of N) and boundary activations travel peer-to-peer instead of over
    the host link."""
    _check(m, n)
    stash = model.stash_bytes(microbatch_size)
    boundary = _boundary_bytes(model, microbatch_size)
    return SchemeVolumes(
        scheme="harmony-pp",
        weights=3 * model.param_bytes,
        weight_grads=2 * model.grad_bytes,
        optimizer=2 * model.optimizer_bytes,
        stash=2 * m * stash,
        activations=0.0,
        p2p=2 * m * boundary,
    )


def harmony_tp_volumes(
    model: ModelGraph, m: int, n: int, microbatch_size: int = 1
) -> SchemeVolumes:
    """Harmony with operation decomposition (sharded matmuls): weights,
    gradients, optimizer state, and stashes are partitioned N ways, so
    their host-crossing volumes match Harmony-PP's (3|W|, 2|dW|, 2|K|,
    2m|S| in total across shards).  Activations never ride the host
    link: partial outputs are combined on-device by collectives whose
    total wire volume is ``m * sum_b 3(N-1)|Y_b|`` (an all-gather at
    (N-1)/N x |Y| per participant plus a gradient all-reduce at
    2(N-1)/N x |Y| per participant, times N participants)."""
    _check(m, n)
    stash = model.stash_bytes(microbatch_size)
    boundary_out = sum(layer.out_bytes(microbatch_size) for layer in model)
    return SchemeVolumes(
        scheme="harmony-tp",
        weights=3 * model.param_bytes,
        weight_grads=2 * model.grad_bytes,
        optimizer=2 * model.optimizer_bytes,
        stash=2 * m * stash,
        activations=0.0,
        p2p=3 * (n - 1) * m * boundary_out,
    )


def comparison_table(
    model: ModelGraph, m: int, n: int, microbatch_size: int = 1
) -> Table:
    """The complete analytical comparison the paper summarizes in §3."""
    table = Table(
        ["scheme", "W", "dW", "K", "stash", "acts", "p2p", "host total"],
        title=(
            f"per-iteration swap volume, {model.name}: R={len(model)} layers, "
            f"m={m} microbatches x {microbatch_size} samples, N={n} GPUs"
        ),
    )
    for volumes in (
        baseline_dp_volumes(model, m, n, microbatch_size),
        harmony_dp_volumes(model, m, n, microbatch_size),
        harmony_pp_volumes(model, m, n, microbatch_size),
        harmony_tp_volumes(model, m, n, microbatch_size),
    ):
        table.add_row(volumes.as_row())
    return table
