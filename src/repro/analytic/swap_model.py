"""The per-phase swap model of the paper's Fig. 5(a).

Each training phase of a layer swaps in a fixed set of tensors and
swaps out another:

=========  ==============================  ===============================
phase      swap-in                         swap-out
=========  ==============================  ===============================
forward    input X, weight W               output Y, stashed X, weight W
backward   output grad dY, weight grad     input grad dX, accumulated dW,
           dW, stashed input X, weight W   weight W
update     weight grad dW, weight W,       reset dW', updated W',
           optimizer state K               updated K'
=========  ==============================  ===============================

(The paper's footnote: running-state tensors such as batch-norm
mean/std are omitted.)
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.models.layer import LayerSpec
from repro.models.phases import Phase
from repro.util.tables import Table


def phase_swap_in(layer: LayerSpec, phase: Phase, microbatch_size: int) -> dict[str, float]:
    """Bytes swapped in per Fig. 5(a), keyed by tensor role."""
    m = microbatch_size
    if phase is Phase.FORWARD:
        return {"X": layer.in_bytes(m), "W": layer.param_bytes}
    if phase is Phase.BACKWARD:
        return {
            "dY": layer.out_bytes(m),
            "dW": layer.grad_bytes,
            "stash_X": layer.stash_bytes(m),
            "W": layer.param_bytes,
        }
    if phase is Phase.UPDATE:
        return {
            "dW": layer.grad_bytes,
            "W": layer.param_bytes,
            "K": layer.optimizer_bytes,
        }
    raise ModelError(f"unknown phase {phase!r}")


def phase_swap_out(layer: LayerSpec, phase: Phase, microbatch_size: int) -> dict[str, float]:
    """Bytes swapped out per Fig. 5(a), keyed by tensor role."""
    m = microbatch_size
    if phase is Phase.FORWARD:
        return {
            "Y": layer.out_bytes(m),
            "stash_X": layer.stash_bytes(m),
            "W": layer.param_bytes,
        }
    if phase is Phase.BACKWARD:
        return {
            "dX": layer.in_bytes(m),
            "acc_dW": layer.grad_bytes,
            "W": layer.param_bytes,
        }
    if phase is Phase.UPDATE:
        return {
            "reset_dW": layer.grad_bytes,
            "W'": layer.param_bytes,
            "K'": layer.optimizer_bytes,
        }
    raise ModelError(f"unknown phase {phase!r}")


def phase_total(layer: LayerSpec, phase: Phase, microbatch_size: int) -> float:
    """Total bytes moved (both directions) for one phase of one layer on
    one microbatch under the idealized no-reuse swapper."""
    return sum(phase_swap_in(layer, phase, microbatch_size).values()) + sum(
        phase_swap_out(layer, phase, microbatch_size).values()
    )


def swap_model_table(layer: LayerSpec, microbatch_size: int) -> Table:
    """Render Fig. 5(a) for a concrete layer."""
    table = Table(
        ["phase", "swap-in", "swap-out"],
        title=f"Fig. 5(a) swap model for {layer.name} (microbatch={microbatch_size})",
    )
    for phase in Phase:
        ins = phase_swap_in(layer, phase, microbatch_size)
        outs = phase_swap_out(layer, phase, microbatch_size)
        table.add_row(
            [
                phase.value,
                ", ".join(ins),
                ", ".join(outs),
            ]
        )
    return table
