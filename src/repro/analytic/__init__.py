"""Closed-form analytical models from the paper's §3 and §4.

Implemented independently of the simulator so the two can cross-check
each other: the Fig. 5 benchmark asserts that the simulator, configured
with the paper's idealized assumptions, reproduces these formulas
byte-for-byte.
"""

from repro.analytic.swap_model import phase_swap_in, phase_swap_out, swap_model_table
from repro.analytic.volumes import (
    SchemeVolumes,
    baseline_dp_volumes,
    harmony_dp_volumes,
    harmony_pp_volumes,
    harmony_tp_volumes,
    weight_volume_baseline_dp,
    weight_volume_harmony_dp,
    weight_volume_harmony_pp,
)
from repro.analytic.feasibility import (
    pretraining_flops,
    training_days,
    feasibility_report,
)

__all__ = [
    "phase_swap_in",
    "phase_swap_out",
    "swap_model_table",
    "SchemeVolumes",
    "baseline_dp_volumes",
    "harmony_dp_volumes",
    "harmony_pp_volumes",
    "harmony_tp_volumes",
    "weight_volume_baseline_dp",
    "weight_volume_harmony_dp",
    "weight_volume_harmony_pp",
    "pretraining_flops",
    "training_days",
    "feasibility_report",
]
