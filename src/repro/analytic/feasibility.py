"""End-to-end training feasibility (paper §4, "Feasibility of
end-to-end training").

The paper's quantitative claims:

* pre-training GPT-3 took 314 ZettaFLOPs (3.14e23 FLOPs) — months on
  thousands of cutting-edge GPUs, *years* on tens of GPUs;
* fine-tuning large models needs < 10s of exaFLOPs (1e19), which clocks
  in at *days* on modest small-scale deployments.

This module computes both from first principles (the standard
``6 * parameters * tokens`` training-FLOPs rule) so the benchmark can
check the paper's arithmetic rather than restate it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import EFLOP, TFLOP, ZFLOP, fmt_flops
from repro.util.tables import Table

#: Training cost per parameter per token: 2 FLOPs/MAC x (1 fwd + 2 bwd).
FLOPS_PER_PARAM_PER_TOKEN = 6.0

#: GPT-3's training corpus (Brown et al. '20): ~300 B tokens.
GPT3_TRAINING_TOKENS = 300e9


def pretraining_flops(params: float, tokens: float) -> float:
    """Total training FLOPs by the 6 * params * tokens rule."""
    if params <= 0 or tokens <= 0:
        raise ConfigError("params and tokens must be positive")
    return FLOPS_PER_PARAM_PER_TOKEN * params * tokens


def training_days(
    total_flops: float,
    num_gpus: int,
    flops_per_gpu: float = 50 * TFLOP,
    efficiency: float = 0.5,
) -> float:
    """Wall-clock days to retire ``total_flops`` on ``num_gpus`` devices
    sustaining ``efficiency`` of ``flops_per_gpu``."""
    if num_gpus < 1:
        raise ConfigError("need at least one GPU")
    if not 0 < efficiency <= 1:
        raise ConfigError("efficiency must be in (0, 1]")
    per_second = num_gpus * flops_per_gpu * efficiency
    return total_flops / per_second / 86_400


@dataclass(frozen=True)
class FeasibilityCase:
    label: str
    total_flops: float
    num_gpus: int
    days: float

    @property
    def years(self) -> float:
        return self.days / 365.25


def feasibility_report(
    gpt3_params: float = 175e9,
    finetune_flops: float = 10 * EFLOP,
    flops_per_gpu: float = 50 * TFLOP,
    efficiency: float = 0.5,
) -> tuple[list[FeasibilityCase], Table]:
    """Reproduce the paper's §4 feasibility arithmetic.

    Returns the cases and a printable table: GPT-3 pre-training on a
    large cluster vs. tens of GPUs, and fine-tuning on a modest server.
    """
    pretrain = pretraining_flops(gpt3_params, GPT3_TRAINING_TOKENS)
    cases = [
        FeasibilityCase(
            "GPT-3 pre-train, 1000 GPUs",
            pretrain,
            1000,
            training_days(pretrain, 1000, flops_per_gpu, efficiency),
        ),
        FeasibilityCase(
            "GPT-3 pre-train, 32 GPUs (tens)",
            pretrain,
            32,
            training_days(pretrain, 32, flops_per_gpu, efficiency),
        ),
        FeasibilityCase(
            "fine-tune (10 EFLOPs), 4 GPUs",
            finetune_flops,
            4,
            training_days(finetune_flops, 4, flops_per_gpu, efficiency),
        ),
    ]
    table = Table(
        ["case", "FLOPs", "GPUs", "days", "years"],
        title=(
            f"paper-section-4 feasibility (GPT-3 pre-train = "
            f"{fmt_flops(pretrain)}; paper cites 314 ZFLOPs = "
            f"{fmt_flops(314 * ZFLOP)})"
        ),
    )
    for case in cases:
        table.add_row(
            [case.label, fmt_flops(case.total_flops), case.num_gpus,
             f"{case.days:.1f}", f"{case.years:.2f}"]
        )
    return cases, table
