"""Minimal ASCII table rendering for benchmark and report output.

The benchmark harness prints the same rows/series the paper's figures
report; this module gives those printouts a consistent, aligned format
without pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """An append-only table of stringifiable cells, rendered with aligned
    columns.

    >>> t = Table(["gpus", "throughput"])
    >>> t.add_row([1, 0.52])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    gpus | throughput
    -----+-----------
    1    | 0.52
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        row = [self._fmt(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
