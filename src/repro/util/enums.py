"""Enum base with identity hashing for hot dictionary keys.

``enum.Enum.__hash__`` is a Python-level method (``hash(self._name_)``),
and the simulator keys its hottest dictionaries — the swap-volume
ledger, the tensor state-machine transition table, the memory-op
category map — by enum members.  Enum members are singletons, so
identity hashing is exactly as correct and dispatches through the C
``object.__hash__`` slot instead, which removes one of the largest flat
costs in the simulator profile.

Hash values are only stable within a process, which is all a dict needs
(pickling rebuilds dicts by rehashing on load).
"""

from __future__ import annotations

import enum


class FastEnum(enum.Enum):
    """Enum whose members hash by identity (C slot, no Python frame)."""

    __hash__ = object.__hash__
