"""Pausing the cyclic GC around allocation-heavy simulator phases.

Planning and simulating a large fleet allocates millions of short-lived,
acyclic objects (tasks, heap entries, partials, trace tuples) that
CPython's reference counting reclaims on its own.  With the cyclic
collector left at its defaults, every allocation burst also triggers
generational passes whose gen-2 sweeps rescan the *entire live* plan and
topology graph — an O(fleet) cost paid O(fleet) times, which turned
both planning and the event loop superlinear at 1024+ devices.  Pausing
collection for the bounded duration of one plan/run keeps per-event cost
size-independent; any true cycles created meanwhile are collected when
the guard re-enables the collector.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager


@contextmanager
def paused_gc():
    """Disable cyclic collection inside the block.

    Nesting-safe: when the collector is already off (an enclosing guard,
    or the embedding application's choice), the guard is a no-op and the
    outermost holder re-enables.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
