"""A lock-free cached property.

``functools.cached_property`` acquires an RLock on every first access
on Python 3.11 and older; tensor metadata and routes pay that cost once
per attribute per instance, and a simulation creates thousands of such
instances.  This descriptor does the same instance-``__dict__`` caching
with no locking — safe here because the simulator is single-threaded
(and the computed values are deterministic, so even a race would only
recompute the same value).
"""

from __future__ import annotations


class lazy_attr:
    """Compute once on first access, then read straight from the
    instance ``__dict__`` (works on frozen dataclasses, which only
    block ``__setattr__``)."""

    __slots__ = ("fn", "name")

    def __init__(self, fn):
        self.fn = fn
        self.name = fn.__name__

    def __set_name__(self, owner, name) -> None:
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        value = self.fn(obj)
        obj.__dict__[self.name] = value
        return value
