"""Deterministic monotonically-increasing id allocation.

The simulator and task system never use wall-clock time or randomness;
every entity gets an id from an :class:`IdAllocator` so runs are exactly
reproducible and ties in the event heap break deterministically.
"""

from __future__ import annotations

import itertools


class IdAllocator:
    """Hands out consecutive integers, optionally rendered with a prefix.

    >>> ids = IdAllocator("task")
    >>> ids.next()
    0
    >>> ids.label(0)
    'task-0'
    """

    def __init__(self, prefix: str = "id"):
        self.prefix = prefix
        self._counter = itertools.count()

    def next(self) -> int:
        return next(self._counter)

    def label(self, ident: int) -> str:
        return f"{self.prefix}-{ident}"
