"""Shared utilities: ASCII tables, timeline rendering, deterministic ids."""

from repro.util.tables import Table
from repro.util.ids import IdAllocator

__all__ = ["Table", "IdAllocator"]
