"""Steady-state periodicity layer over the discrete-event simulator.

Everything the paper measures is periodic: each training iteration
replays the same task DAG, so after a short warm-up every iteration is
a pure time-translation of the previous one (the same regularity
PipeDream's 1F1B steady state and KARMA's out-of-core swap schedule
exploit).  This package detects that fixed point and fast-forwards the
remaining iterations analytically:

* :class:`SteadyMode` / :func:`resolve_mode` — the ``auto``/``off``/
  ``force`` knob wired through ``ExecOptions.steady_state``,
  ``HarmonyConfig.steady_state`` and the CLI's ``--steady-state``.
* :mod:`repro.steady.fold` — bitwise-exact repeated-fold arithmetic.
* :mod:`repro.steady.cycle` — entry-state fingerprints, per-iteration
  ledgers, and the fast-forward application used by the executor.
* :class:`SteadyReport` — what happened, attached to
  ``RunResult.steady``.

Fault-injected runs (:mod:`repro.faults`) never fast-forward: any
injector — device loss, link flaps, transients, stragglers, memory
pressure — vetoes the cycle path wholesale and the run is bit-for-bit
identical to the pre-steady-state simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.steady.fold import fold_repeat

__all__ = [
    "SteadyMode",
    "SteadyReport",
    "fold_repeat",
    "default_mode",
    "resolve_mode",
    "set_default_mode",
]


class SteadyMode(enum.Enum):
    """How aggressively a run may fast-forward proven-periodic iterations.

    AUTO
        Detect periodicity and fast-forward when proven; results are
        guaranteed equal to ``OFF`` (the equivalence is asserted in the
        test suite and the benchmark harness, not assumed).
    OFF
        Full-fidelity simulation of every iteration.
    FORCE
        Like ``AUTO`` but raising
        :class:`~repro.errors.SteadyStateError` if the run finishes
        without ever fast-forwarding — for sweeps whose cost budget
        *depends* on the fast path engaging.
    """

    AUTO = "auto"
    OFF = "off"
    FORCE = "force"

    @staticmethod
    def parse(value: "SteadyMode | str") -> "SteadyMode":
        if isinstance(value, SteadyMode):
            return value
        try:
            return SteadyMode(value)
        except ValueError:
            raise ConfigError(
                f"unknown steady-state mode {value!r}; choose from "
                f"{[m.value for m in SteadyMode]}"
            ) from None


#: Process-wide default for runs that leave ``steady_state=None`` — the
#: CLI's ``--steady-state`` sets this so figure sections that build
#: their configs internally still honor the flag.
_DEFAULT_MODE = SteadyMode.AUTO


def set_default_mode(mode: SteadyMode | str) -> None:
    global _DEFAULT_MODE
    _DEFAULT_MODE = SteadyMode.parse(mode)


def default_mode() -> SteadyMode:
    return _DEFAULT_MODE


def resolve_mode(value: "SteadyMode | str | None") -> SteadyMode:
    """The effective mode for a config value (``None`` = process default)."""
    return _DEFAULT_MODE if value is None else SteadyMode.parse(value)


@dataclass(frozen=True)
class SteadyReport:
    """What the steady-state layer did for one run (``RunResult.steady``).

    ``detected_at`` is the 1-based iteration proven to replay its
    predecessor bit-for-bit; ``skipped`` of the following iterations
    were fast-forwarded analytically (the final iteration always runs
    live so the end-of-run flush proceeds from a naturally-arising
    state).  ``vetoes`` names the conditions that disabled detection —
    ``fault-injection`` covers every :mod:`repro.faults` plan.
    """

    mode: str
    detected_at: int | None = None
    skipped: int = 0
    period: float | None = None
    live_iterations: int = 0
    vetoes: tuple[str, ...] = ()

    @property
    def fast_forwarded(self) -> bool:
        return self.skipped > 0

    def describe(self) -> str:
        if self.fast_forwarded:
            return (
                f"steady state at iteration {self.detected_at} "
                f"(period {self.period:.6g}s): {self.skipped} iterations "
                f"fast-forwarded, {self.live_iterations} simulated live"
            )
        if self.vetoes:
            return f"steady-state fast-forward vetoed ({', '.join(self.vetoes)})"
        return f"steady-state {self.mode}: no cycle detected"
