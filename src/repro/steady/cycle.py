"""Cycle detection and analytic fast-forward over a live executor.

The executor's steady-state loop (see ``Executor._run_cycles``) rebases
its clock at every iteration boundary: each iteration runs from local
``t=0`` with every resource timeline free, and the events it traced are
committed to absolute time by adding the run's ``epoch`` afterwards.
That makes an iteration a *pure function of its entry state* — two
iterations entered in bitwise-identical state produce bitwise-identical
event streams — so periodicity detection reduces to comparing entry
fingerprints, with no float-translation noise to tolerate.

The entry fingerprint covers exactly the state that can influence
execution:

* every tensor runtime: lifetime state, device, dirty/pinned flags,
  host placement, and the manager's home assignment;
* the LRU *rank order* of ``last_use`` sequence numbers (the absolute
  values grow forever; only their order drives victim selection);
* every device pool: used/peak bytes, demand, pressure, and the
  reservation table *in insertion order* (victim scans iterate it).

Monotone observers — the trace, the swap ledger, ``usage_log``,
``events_processed`` — are deliberately excluded: they are outputs, and
the fast-forward advances them by folding per-iteration deltas captured
from journaling hooks (:class:`CycleLedger`) through
:func:`repro.steady.fold.fold_repeat`, which is bit-for-bit equal to
running the iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.steady.fold import fold_repeat

if TYPE_CHECKING:
    from repro.sim.executor import Executor
    from repro.sim.trace import TraceEvent


@dataclass(frozen=True)
class CycleLedger:
    """Per-iteration deltas of one proven-steady iteration — everything
    the fast-forward must replay for each skipped iteration."""

    #: Local makespan of the iteration: the epoch advance per cycle.
    period: float
    #: Swap-ledger record sequence per (device, kind, direction) key, in
    #: recording order — folded record-by-record, not as a per-key
    #: total, because float addition from a different base rounds
    #: differently.
    stats_records: dict[tuple, list[float]]
    #: Acquire durations per resource timeline, in acquisition order.
    busy: dict[str, list[float]]
    #: The iteration's trace events in local (rebased) time.
    trace_cycle: "tuple[TraceEvent, ...]"
    #: Engine events executed by the iteration.
    events_delta: int
    #: Samples finished by the iteration.
    samples_delta: int


def entry_fingerprint(ex: "Executor") -> tuple:
    """Bitwise fingerprint of the executor's iteration-entry state."""
    manager = ex.manager
    runtimes = manager.runtimes
    home = manager._home
    tensors = tuple(
        (tid, rt.state, rt.device, rt.dirty, rt.pinned, rt.host_device,
         home.get(tid))
        for tid, rt in sorted(runtimes.items())
    )
    lru_rank = tuple(
        tid
        for tid, _ in sorted(
            runtimes.items(), key=lambda kv: (kv[1].last_use, kv[0])
        )
    )
    pools = tuple(
        (name, pool.used, pool.peak_used, pool.demand, pool.peak_demand,
         pool.pressure, tuple(pool._reservations.items()))
        for name, pool in sorted(manager.pools.items())
    )
    return (tensors, lru_rank, pools)


def start_journals(ex: "Executor") -> None:
    """Arm the per-iteration delta capture (swap records and timeline
    acquire durations) for one live iteration."""
    ex.stats._journal = []
    for tl in ex._all_timelines:
        tl.journal = []


def stop_journals(ex: "Executor") -> None:
    ex.stats._journal = None
    for tl in ex._all_timelines:
        tl.journal = None


def capture_ledger(
    ex: "Executor",
    mark: int,
    events_before: int,
    samples_before: int,
    period: float,
) -> CycleLedger:
    """Read the just-finished iteration's deltas off the journals.

    Must run *before* the boundary commit shifts ``trace.events[mark:]``
    to absolute time — the cycle is stored in local time.
    """
    stats_records: dict[tuple, list[float]] = {}
    for key, nbytes in ex.stats._journal:
        stats_records.setdefault(key, []).append(nbytes)
    busy = {
        tl.name: list(tl.journal)
        for tl in ex._all_timelines
        if tl.journal
    }
    return CycleLedger(
        period=period,
        stats_records=stats_records,
        busy=busy,
        trace_cycle=tuple(ex.trace.events[mark:]),
        events_delta=ex.engine.events_processed - events_before,
        samples_delta=ex._samples - samples_before,
    )


def apply_fast_forward(ex: "Executor", ledger: CycleLedger, skip: int) -> None:
    """Advance the executor past ``skip`` proven-identical iterations.

    Called at an iteration boundary (entry state is the fixed point):
    the simulation state itself needs no change — only the monotone
    outputs move, each folded exactly as ``skip`` live iterations would
    have moved it.  The trace gains one run-length
    :class:`~repro.sim.trace.PeriodicSegment` instead of
    ``skip * len(cycle)`` events.
    """
    from repro.sim.trace import PeriodicSegment

    start_offset = ex._epoch
    ex._epoch = fold_repeat(ex._epoch, (ledger.period,), skip)
    ex.trace.add_segment(
        PeriodicSegment(
            insert_at=len(ex.trace.events),
            start_offset=start_offset,
            period=ledger.period,
            count=skip,
            end_offset=ex._epoch,
            events=ledger.trace_cycle,
        )
    )
    volume = ex.stats._volume
    events = ex.stats._events
    for key, records in ledger.stats_records.items():
        volume[key] = fold_repeat(volume[key], records, skip)
        events[key] += len(records) * skip
    timelines = {tl.name: tl for tl in ex._all_timelines}
    for name, durations in ledger.busy.items():
        tl = timelines[name]
        tl.busy_seconds = fold_repeat(tl.busy_seconds, durations, skip)
    ex.engine.events_processed += ledger.events_delta * skip
    ex._samples += ledger.samples_delta * skip
