"""Exact repeated-fold arithmetic for the steady-state fast-forward.

Fast-forwarding N skipped iterations must produce totals *bit-for-bit
equal* to running them, so the fold below never uses a closed form that
could round differently from the naive accumulation loop:

* Integer-valued ledgers (bytes moved, event counts, samples) use a
  true closed form: IEEE-754 doubles add integers exactly while every
  partial sum stays below 2**53, so ``value + n * sum(incs)`` equals
  the loop exactly and costs O(1).
* Everything else (the iteration clock, busy-seconds ledgers) replays
  the additions — but through :func:`itertools.accumulate` at C speed,
  one add per increment with no Python-level loop body.  That keeps a
  million-iteration fast-forward in milliseconds while remaining
  bitwise-faithful to full simulation.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Sequence

_EXACT_INT = 2**53


def fold_repeat(value: float, increments: Sequence[float], n: int) -> float:
    """The result of ``for _ in range(n): for x in increments: value += x``,
    bit-for-bit, without the Python loop.
    """
    if n <= 0 or not increments:
        return value
    if value >= 0 and float(value).is_integer():
        per_cycle = 0
        for x in increments:
            if x < 0 or not float(x).is_integer():
                break
            per_cycle += int(x)
        else:
            total = int(value) + n * per_cycle
            # Non-negative integer increments keep every partial sum
            # between ``value`` and ``total``; if the total is exactly
            # representable, so was every intermediate, and each float
            # add along the way was exact.
            if total < _EXACT_INT:
                return float(total)
    chain = itertools.chain.from_iterable(
        itertools.repeat(tuple(increments), n)
    )
    # deque(maxlen=1) drains the accumulator in C, keeping only the
    # final partial sum.
    return deque(itertools.accumulate(chain, initial=value), maxlen=1)[0]
