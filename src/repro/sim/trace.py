"""Execution traces and timeline rendering.

Every compute task and transfer becomes a :class:`TraceEvent`; the
collected :class:`Trace` backs the metrics report and the ASCII Gantt
chart used to reproduce the paper's Fig. 4 schedule diagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from repro.errors import SimulationError
from repro.steady.fold import fold_repeat

CATEGORIES = ("compute", "swap_in", "swap_out", "p2p", "allreduce")
_CATEGORY_SET = frozenset(CATEGORIES)

_GLYPH = {
    "compute": "#",
    "swap_in": "v",
    "swap_out": "^",
    "p2p": ">",
    "allreduce": "=",
}


class TraceEvent(NamedTuple):
    """One timed event.  A NamedTuple rather than a dataclass: traces
    collect thousands of these per run and tuple construction is a
    single C call, where a frozen dataclass pays one ``object.__setattr__``
    per field."""

    device: str
    start: float
    end: float
    category: str
    label: str
    #: Bytes moved by the event (transfers and collectives; 0 for
    #: compute).  The audit layer reconciles these against the
    #: :class:`~repro.memory.stats.SwapStats` ledger.
    nbytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class PeriodicSegment:
    """Run-length record of ``count`` proven-identical iterations.

    Steady-state fast-forward (see :mod:`repro.steady`) stores one copy
    of the repeating iteration's events in *local* time plus the fold
    parameters; :meth:`expand` reproduces the events full simulation
    would have traced, bit-for-bit: the k-th repetition's events are the
    stored cycle shifted by ``start_offset`` advanced k times by
    ``period`` — the exact arithmetic the executor's epoch commit uses.
    """

    #: Index into ``Trace.events`` where the expansion splices in.
    insert_at: int
    #: Absolute epoch of the first compressed iteration.
    start_offset: float
    #: Epoch advance per iteration (the cycle's local makespan).
    period: float
    #: Number of compressed iterations.
    count: int
    #: Absolute epoch after the segment (``start_offset`` folded
    #: ``count`` times by ``period``) — where live simulation resumed.
    end_offset: float
    #: One cycle's events in local (epoch-relative) time.
    events: tuple[TraceEvent, ...]

    def expand(self) -> Iterator[TraceEvent]:
        offset = self.start_offset
        for _ in range(self.count):
            for e in self.events:
                yield TraceEvent(
                    e.device, offset + e.start, offset + e.end,
                    e.category, e.label, e.nbytes,
                )
            offset += self.period

    @property
    def expanded_len(self) -> int:
        return self.count * len(self.events)


@dataclass
class Trace:
    events: list[TraceEvent] = field(default_factory=list)
    #: Run-length compressed spans (steady-state fast-forward); empty
    #: for full-fidelity traces.  Logical event order is ``events`` with
    #: each segment spliced in at its ``insert_at`` — use
    #: :meth:`iter_events` / :meth:`expanded` for the full view.
    segments: list[PeriodicSegment] = field(default_factory=list)

    @property
    def is_compressed(self) -> bool:
        return bool(self.segments)

    def add_segment(self, segment: PeriodicSegment) -> None:
        if segment.count < 1:
            raise SimulationError("periodic segment must repeat at least once")
        if segment.period < 0:
            raise SimulationError("periodic segment has negative period")
        if not 0 <= segment.insert_at <= len(self.events):
            raise SimulationError(
                f"periodic segment splices at {segment.insert_at} but the "
                f"trace holds {len(self.events)} events"
            )
        self.segments.append(segment)

    def iter_events(self) -> Iterator[TraceEvent]:
        """All events in logical order, expanding compressed segments."""
        if not self.segments:
            yield from self.events
            return
        pos = 0
        for seg in sorted(self.segments, key=lambda s: s.insert_at):
            yield from self.events[pos:seg.insert_at]
            pos = seg.insert_at
            yield from seg.expand()
        yield from self.events[pos:]

    def expanded(self) -> "Trace":
        """A full-fidelity copy (self when nothing is compressed)."""
        if not self.segments:
            return self
        return Trace(events=list(self.iter_events()))

    def total_events(self) -> int:
        """Logical event count, without expanding."""
        return len(self.events) + sum(s.expanded_len for s in self.segments)

    def add(
        self,
        device: str,
        start: float,
        end: float,
        category: str,
        label: str,
        nbytes: float = 0.0,
    ) -> None:
        if category not in _CATEGORY_SET:
            raise ValueError(f"unknown trace category {category!r}")
        if end < start:
            raise SimulationError(
                f"trace event {label!r} on {device} has negative duration "
                f"(start={start}, end={end})"
            )
        if nbytes < 0:
            raise SimulationError(
                f"trace event {label!r} on {device} moves negative bytes ({nbytes})"
            )
        self.events.append(TraceEvent(device, start, end, category, label, nbytes))

    def for_device(self, device: str) -> list[TraceEvent]:
        return sorted(
            (e for e in self.iter_events() if e.device == device),
            key=lambda e: (e.start, e.end),
        )

    def by_category(self, category: str) -> list[TraceEvent]:
        return [e for e in self.iter_events() if e.category == category]

    def devices(self) -> list[str]:
        names = {e.device for e in self.events}
        for seg in self.segments:
            names.update(e.device for e in seg.events)
        return sorted(names)

    def makespan(self) -> float:
        span = max((e.end for e in self.events), default=0.0)
        for seg in self.segments:
            # Exact, not estimated: replay the offset fold to the final
            # repetition (O(count) single adds) so a compressed trace
            # reports the same makespan its expansion would.
            offset = fold_repeat(seg.start_offset, (seg.period,), seg.count - 1)
            for e in seg.events:
                end = offset + e.end
                if end > span:
                    span = end
        return span

    def busy_seconds(self, device: str, category: str | None = None) -> float:
        return sum(
            e.duration
            for e in self.iter_events()
            if e.device == device and (category is None or e.category == category)
        )

    def busy_seconds_by_device(self, category: str | None = None) -> dict:
        """Every device's busy time in one pass — bitwise equal to
        calling :meth:`busy_seconds` per device (same events in the same
        order feed each per-device sum), without rescanning the trace
        once per device.  Devices with no matching events are absent."""
        totals: dict[str, float] = {}
        get = totals.get
        for e in self.iter_events():
            if category is None or e.category == category:
                totals[e.device] = get(e.device, 0) + e.duration
        return totals

    def compute_sequence(self, device: str) -> list[str]:
        """Labels of compute tasks on a device, in execution order —
        the structure tests assert against (Fig. 4's schedule shape)."""
        return [
            e.label
            for e in self.for_device(device)
            if e.category in ("compute", "allreduce")
        ]


def to_chrome_trace(trace: Trace) -> dict:
    """Export as Chrome trace-event JSON (load in ``chrome://tracing``
    or Perfetto): one row per device, compute and transfer events as
    complete ('X') events with microsecond timestamps."""
    events = []
    pids = {device: i for i, device in enumerate(trace.devices())}
    for device, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": device},
            }
        )
    for event in trace.iter_events():
        record = {
            "name": event.label,
            "cat": event.category,
            "ph": "X",
            "pid": pids[event.device],
            "tid": 0 if event.category == "compute" else 1,
            "ts": event.start * 1e6,
            "dur": event.duration * 1e6,
        }
        if event.nbytes:
            record["args"] = {"bytes": event.nbytes}
        events.append(record)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_timeline(trace: Trace, width: int = 100) -> str:
    """ASCII Gantt chart: one row per device, one glyph class per event
    category (``#`` compute, ``v`` swap-in, ``^`` swap-out, ``>`` p2p,
    ``=`` allreduce).  The reproduction of the paper's Fig. 4 prints
    this for the 4-layer / 2-GPU / 2-microbatch example."""
    makespan = trace.makespan()
    if makespan <= 0:
        return "(empty trace)"
    scale = width / makespan
    lines = [f"timeline ({makespan:.4g}s total, 1 col = {makespan / width:.3g}s)"]
    for device in trace.devices():
        row = [" "] * width
        for event in trace.for_device(device):
            lo = int(event.start * scale)
            hi = max(lo + 1, int(event.end * scale))
            for i in range(lo, min(hi, width)):
                row[i] = _GLYPH[event.category]
        lines.append(f"{device:>8} |{''.join(row)}|")
    legend = "  ".join(f"{g}={c}" for c, g in _GLYPH.items())
    lines.append(f"{'':>8}  {legend}")
    return "\n".join(lines)
