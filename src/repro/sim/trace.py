"""Execution traces and timeline rendering.

Every compute task and transfer becomes a :class:`TraceEvent`; the
collected :class:`Trace` backs the metrics report and the ASCII Gantt
chart used to reproduce the paper's Fig. 4 schedule diagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.errors import SimulationError

CATEGORIES = ("compute", "swap_in", "swap_out", "p2p", "allreduce")
_CATEGORY_SET = frozenset(CATEGORIES)

_GLYPH = {
    "compute": "#",
    "swap_in": "v",
    "swap_out": "^",
    "p2p": ">",
    "allreduce": "=",
}


class TraceEvent(NamedTuple):
    """One timed event.  A NamedTuple rather than a dataclass: traces
    collect thousands of these per run and tuple construction is a
    single C call, where a frozen dataclass pays one ``object.__setattr__``
    per field."""

    device: str
    start: float
    end: float
    category: str
    label: str
    #: Bytes moved by the event (transfers and collectives; 0 for
    #: compute).  The audit layer reconciles these against the
    #: :class:`~repro.memory.stats.SwapStats` ledger.
    nbytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    events: list[TraceEvent] = field(default_factory=list)

    def add(
        self,
        device: str,
        start: float,
        end: float,
        category: str,
        label: str,
        nbytes: float = 0.0,
    ) -> None:
        if category not in _CATEGORY_SET:
            raise ValueError(f"unknown trace category {category!r}")
        if end < start:
            raise SimulationError(
                f"trace event {label!r} on {device} has negative duration "
                f"(start={start}, end={end})"
            )
        if nbytes < 0:
            raise SimulationError(
                f"trace event {label!r} on {device} moves negative bytes ({nbytes})"
            )
        self.events.append(TraceEvent(device, start, end, category, label, nbytes))

    def for_device(self, device: str) -> list[TraceEvent]:
        return sorted(
            (e for e in self.events if e.device == device),
            key=lambda e: (e.start, e.end),
        )

    def by_category(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def devices(self) -> list[str]:
        return sorted({e.device for e in self.events})

    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def busy_seconds(self, device: str, category: str | None = None) -> float:
        return sum(
            e.duration
            for e in self.events
            if e.device == device and (category is None or e.category == category)
        )

    def compute_sequence(self, device: str) -> list[str]:
        """Labels of compute tasks on a device, in execution order —
        the structure tests assert against (Fig. 4's schedule shape)."""
        return [
            e.label
            for e in self.for_device(device)
            if e.category in ("compute", "allreduce")
        ]


def to_chrome_trace(trace: Trace) -> dict:
    """Export as Chrome trace-event JSON (load in ``chrome://tracing``
    or Perfetto): one row per device, compute and transfer events as
    complete ('X') events with microsecond timestamps."""
    events = []
    pids = {device: i for i, device in enumerate(trace.devices())}
    for device, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": device},
            }
        )
    for event in trace.events:
        record = {
            "name": event.label,
            "cat": event.category,
            "ph": "X",
            "pid": pids[event.device],
            "tid": 0 if event.category == "compute" else 1,
            "ts": event.start * 1e6,
            "dur": event.duration * 1e6,
        }
        if event.nbytes:
            record["args"] = {"bytes": event.nbytes}
        events.append(record)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_timeline(trace: Trace, width: int = 100) -> str:
    """ASCII Gantt chart: one row per device, one glyph class per event
    category (``#`` compute, ``v`` swap-in, ``^`` swap-out, ``>`` p2p,
    ``=`` allreduce).  The reproduction of the paper's Fig. 4 prints
    this for the 4-layer / 2-GPU / 2-microbatch example."""
    makespan = trace.makespan()
    if makespan <= 0:
        return "(empty trace)"
    scale = width / makespan
    lines = [f"timeline ({makespan:.4g}s total, 1 col = {makespan / width:.3g}s)"]
    for device in trace.devices():
        row = [" "] * width
        for event in trace.for_device(device):
            lo = int(event.start * scale)
            hi = max(lo + 1, int(event.end * scale))
            for i in range(lo, min(hi, width)):
                row[i] = _GLYPH[event.category]
        lines.append(f"{device:>8} |{''.join(row)}|")
    legend = "  ".join(f"{g}={c}" for c, g in _GLYPH.items())
    lines.append(f"{'':>8}  {legend}")
    return "\n".join(lines)
