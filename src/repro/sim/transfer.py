"""Transfer execution: memory operations -> timed link occupancy.

Each transfer occupies every link on its route (cut-through, bottleneck
bandwidth) via :class:`ResourceTimeline` FIFO queues.  Swap-ins ride
the host->device route, swap-outs the device->host route — both cross
the shared host uplink — while p2p moves ride switch-local routes and
therefore bypass the bottleneck, which is the entire point of
Harmony's optimization #3.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import FaultError, SimulationError
from repro.hardware.topology import Route, Topology
from repro.memory.manager import MemOp, MemOpKind, MemoryManager
from repro.memory.stats import Direction
from repro.sim.engine import Engine, ResourceTimeline
from repro.sim.trace import Trace
from repro.tensors.state import TensorState

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

_CATEGORY = {
    MemOpKind.SWAP_IN: "swap_in",
    MemOpKind.SWAP_OUT: "swap_out",
    MemOpKind.P2P: "p2p",
}


class TransferEngine:
    """Executes memory-op chains, one op at a time, over shared links.

    With a :class:`~repro.faults.injector.FaultInjector` attached,
    transfer timing honors link degradation and flaps, and each
    point-to-point attempt may fail transiently: the failed attempt
    still occupies every link on the route (the wire time really was
    spent), its bytes are ledgered as retries, and the transfer is
    re-attempted after exponential backoff until the policy's retry
    budget is exhausted.
    """

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        manager: MemoryManager,
        trace: Trace,
        links: dict[str, ResourceTimeline],
        injector: "FaultInjector | None" = None,
    ):
        self.engine = engine
        self.topology = topology
        self.manager = manager
        self.trace = trace
        self.links = links
        self.injector = injector
        # Route -> timelines, keyed by route identity: the topology's
        # route cache keeps every Route alive and unique per (src, dst),
        # and each transfer over it needs the same timeline list.
        self._route_timelines: dict[int, list[ResourceTimeline]] = {}

    # -- routes -------------------------------------------------------------

    def _route_for(self, op: MemOp) -> Route:
        if op.kind is MemOpKind.SWAP_IN:
            # Fetch from the host that actually holds the copy: on a
            # multi-server topology a tensor written back on server A
            # and fetched by server B crosses the inter-server network.
            manager = self.manager
            tid = op.tensor.tid
            rt = manager.runtimes.get(tid) or manager.runtime(tid)
            src_host = rt.host_device or self.topology.host_of(op.dst).name
            return self.topology.route(src_host, op.dst)
        if op.kind is MemOpKind.SWAP_OUT:
            return self.topology.route(op.src, self.topology.host_of(op.src).name)
        if op.kind is MemOpKind.P2P:
            return self.topology.route(op.src, op.dst)
        raise SimulationError(f"no route for op {op}")

    def _timelines(self, route: Route) -> list[ResourceTimeline]:
        cached = self._route_timelines.get(id(route))
        if cached is None:
            cached = [self.links[link.name] for link in route.links]
            self._route_timelines[id(route)] = cached
        return cached

    # -- execution -------------------------------------------------------------

    def execute_chain(self, ops: Sequence[MemOp], done: Callable[[], None]) -> None:
        """Run ``ops`` strictly in order, then call ``done``.

        Synchronous ops (waits that need no wait, allocations, drops,
        satisfied transfers) are consumed in a loop rather than through
        continuation recursion — most ops in a chain complete instantly,
        and the loop spends one iteration where the recursive form spent
        three frames.  ``step`` may re-enter itself through a nested
        substitute chain; the shared cursor keeps every op exactly-once.
        """
        n = len(ops)
        cursor = 0
        execute = self._execute_op

        def step() -> None:
            nonlocal cursor
            while cursor < n:
                op = ops[cursor]
                cursor += 1
                if not execute(op, step):
                    return  # async: step re-runs when the op completes
            done()

        step()

    def execute_op(self, op: MemOp, done: Callable[[], None]) -> None:
        """Run one op; ``done`` fires when it completes (possibly now)."""
        if self._execute_op(op, done):
            done()

    def _execute_op(self, op: MemOp, cont: Callable[[], None]) -> bool:
        """Start one op.  Returns True if it completed synchronously;
        otherwise ``cont`` has been registered to fire on completion."""
        manager = self.manager
        kind = op.kind
        tid = op.tensor.tid
        swapping_in = TensorState.SWAPPING_IN
        swapping_out = TensorState.SWAPPING_OUT
        if kind is MemOpKind.WAIT:
            rt = manager.runtimes.get(tid) or manager.runtime(tid)
            state = rt.state
            if state is swapping_in or state is swapping_out:
                manager.add_waiter(tid, cont)
                return False
            return True
        if kind is MemOpKind.ALLOC:
            manager.op_begin(op)
            return True
        # Eviction ops can race with a concurrent task on another device
        # pinning the victim: substitute another victim, or wait for the
        # pin to release if nothing else is evictable.
        if (kind is MemOpKind.DROP or kind is MemOpKind.SWAP_OUT) and not op.forced:
            rt = manager.runtimes.get(tid) or manager.runtime(tid)
            if rt.pinned > 0 and rt.resident_on == op.src:
                substitutes = manager.substitute_victims(op)
                if substitutes is None:
                    manager.add_waiter(tid, lambda: self.execute_op(op, cont))
                else:
                    self.execute_chain(substitutes, cont)
                return False
        if kind is MemOpKind.DROP:
            manager.op_begin(op)
            if op.kind is MemOpKind.DROP:  # not degraded to a write-back
                return True
            # op_begin degraded the drop to a SWAP_OUT (the tensor was
            # dirtied since planning); fall through to transfer it.
            self._schedule_transfer(op, cont)
            return False
        # Transfer op: if the tensor is mid-flight elsewhere (e.g. a peer
        # is still writing it back to host), retry when that completes.
        rt = manager.runtimes.get(tid) or manager.runtime(tid)
        state = rt.state
        if state is swapping_in or state is swapping_out:
            manager.add_waiter(tid, lambda: self.execute_op(op, cont))
            return False
        if not manager.op_begin(op):
            return True  # state already satisfied; nothing to move
        self._schedule_transfer(op, cont)
        return False

    def _schedule_transfer(
        self, op: MemOp, done: Callable[[], None], attempt: int = 0
    ) -> None:
        # op_begin may have degraded a planned P2P into a SWAP_IN.
        route = self._route_for(op)
        engine = self.engine
        injector = self.injector
        size = op.tensor.size_bytes
        if injector is None:
            ready = engine.now
            duration = route.transfer_time(size)
        else:
            ready, duration = injector.transfer_timing(route, size, engine.now)
        timelines = self._timelines(route)
        if timelines:
            start, end = ResourceTimeline.acquire_all(timelines, ready, duration)
        else:
            # A zero-hop route (host-local materialization) occupies no
            # link; acquire_all rejects empty lists, so the window is
            # explicit here.
            start, end = ready, ready + duration
        kind = op.kind
        category = _CATEGORY[kind]
        device = op.src if kind is MemOpKind.SWAP_OUT else op.dst

        if (
            injector is not None
            and duration > 0
            and injector.transfer_fails(route, start)
        ):
            self._schedule_failed_attempt(
                op, route, device, category, start, end, attempt, done
            )
            return

        # A ``partial`` on a bound method, not a closure: this runs once
        # per transfer and a closure would allocate a cell per captured
        # variable each time.
        engine.at(
            end,
            partial(self._finish_transfer, op, device, category, start, end,
                    duration, done),
        )

    def _finish_transfer(
        self,
        op: MemOp,
        device: str,
        category: str,
        start: float,
        end: float,
        duration: float,
        done: Callable[[], None],
    ) -> None:
        self.manager.op_finish(op)
        if duration > 0:
            self.trace.add(
                device, start, end, category, op.tensor.label,
                nbytes=op.tensor.size_bytes,
            )
        done()

    def _schedule_failed_attempt(
        self,
        op: MemOp,
        route: Route,
        device: str,
        category: str,
        start: float,
        end: float,
        attempt: int,
        done: Callable[[], None],
    ) -> None:
        """A transient transfer failure: the attempt holds the links for
        its full duration, its bytes are ledgered as retried, and the
        op re-runs after exponential backoff."""
        injector = self.injector
        if attempt >= injector.max_retries:
            label = op.tensor.label

            def exhausted() -> None:
                raise FaultError(
                    f"transfer of {label} over {route.src}->{route.dst} "
                    f"failed {attempt + 1} time(s); retry budget "
                    f"({injector.max_retries}) exhausted"
                )

            self.engine.at(end, exhausted)
            return

        meta = op.tensor
        stats = self.manager.stats

        def failed() -> None:
            if op.kind is MemOpKind.P2P:
                stats.record_retry(op.dst, meta.kind, Direction.P2P_IN, meta.size_bytes)
                stats.record(op.src, meta.kind, Direction.P2P_OUT, meta.size_bytes)
            else:
                direction = (
                    Direction.SWAP_OUT
                    if op.kind is MemOpKind.SWAP_OUT
                    else Direction.SWAP_IN
                )
                stats.record_retry(device, meta.kind, direction, meta.size_bytes)
            self.trace.add(
                device, start, end, category, meta.label, nbytes=meta.size_bytes
            )
            self.engine.after(
                injector.backoff_delay(attempt),
                lambda: self._schedule_transfer(op, done, attempt=attempt + 1),
            )

        self.engine.at(end, failed)

    # -- collectives -------------------------------------------------------------

    def execute_allreduce(
        self,
        participants: Sequence[str],
        comm_bytes: float,
        done: Callable[[float, float], None],
    ) -> None:
        """Ring all-reduce across ``participants``: occupies the links of
        every ring hop for the transfer duration; ``comm_bytes`` is the
        per-participant wire volume (2(N-1)/N x payload, precomputed by
        the decomposer)."""
        if len(participants) < 2:
            done(self.engine.now, self.engine.now)
            return
        routes = [
            self.topology.route(a, participants[(i + 1) % len(participants)])
            for i, a in enumerate(participants)
        ]
        involved: dict[str, ResourceTimeline] = {}
        for route in routes:
            for link in route.links:
                involved[link.name] = self.links[link.name]
        if self.injector is None:
            ready = self.engine.now
            bottleneck = min(route.bottleneck_bandwidth for route in routes)
            latency = max(route.total_latency for route in routes)
            duration = latency + comm_bytes / bottleneck
        else:
            # The ring runs at the pace of its slowest hop under the
            # currently-active link faults; a flapped hop defers the
            # whole collective.
            timings = [
                self.injector.transfer_timing(route, comm_bytes, self.engine.now)
                for route in routes
            ]
            ready = max(t for t, _ in timings)
            duration = max(d for _, d in timings)
        timelines = list(involved.values())
        if timelines:
            start, end = ResourceTimeline.acquire_all(timelines, ready, duration)
        else:
            start, end = ready, ready + duration
        self.engine.at(end, lambda: done(start, end))
