"""Transfer execution: memory operations -> timed link occupancy.

Each transfer occupies every link on its route (cut-through, bottleneck
bandwidth) via :class:`ResourceTimeline` FIFO queues.  Swap-ins ride
the host->device route, swap-outs the device->host route — both cross
the shared host uplink — while p2p moves ride switch-local routes and
therefore bypass the bottleneck, which is the entire point of
Harmony's optimization #3.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import FaultError, SimulationError
from repro.hardware.topology import Route, Topology
from repro.memory.manager import MemOp, MemOpKind, MemoryManager
from repro.memory.stats import Direction
from repro.sim.collective import CollectiveOp, ring_collective
from repro.sim.engine import Engine, ResourceTimeline
from repro.sim.trace import Trace
from repro.tensors.state import TensorState

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

_CATEGORY = {
    MemOpKind.SWAP_IN: "swap_in",
    MemOpKind.SWAP_OUT: "swap_out",
    MemOpKind.P2P: "p2p",
}


class TransferEngine:
    """Executes memory-op chains, one op at a time, over shared links.

    With a :class:`~repro.faults.injector.FaultInjector` attached,
    transfer timing honors link degradation and flaps, and each
    point-to-point attempt may fail transiently: the failed attempt
    still occupies every link on the route (the wire time really was
    spent), its bytes are ledgered as retries, and the transfer is
    re-attempted after exponential backoff until the policy's retry
    budget is exhausted.
    """

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        manager: MemoryManager,
        trace: Trace,
        links: dict[str, ResourceTimeline],
        injector: "FaultInjector | None" = None,
        collective_mode: str = "analytic",
    ):
        self.engine = engine
        self.topology = topology
        self.manager = manager
        self.trace = trace
        self.links = links
        self.injector = injector
        self.collective_mode = collective_mode
        # Route -> timelines, keyed by route identity: the topology's
        # route cache keeps every Route alive and unique per (src, dst),
        # and each transfer over it needs the same timeline list.
        self._route_timelines: dict[int, list[ResourceTimeline]] = {}
        # Participant tuple -> resolved ring + its timeline list.  Ring
        # resolution walks O(world) routes; caching it makes every
        # collective after the first O(1) in fleet size.
        self._collectives: dict[
            tuple[str, ...], tuple[CollectiveOp, list[ResourceTimeline]]
        ] = {}

    # -- routes -------------------------------------------------------------

    def _route_for(self, op: MemOp) -> Route:
        if op.kind is MemOpKind.SWAP_IN:
            # Fetch from the host that actually holds the copy: on a
            # multi-server topology a tensor written back on server A
            # and fetched by server B crosses the inter-server network.
            manager = self.manager
            tid = op.tensor.tid
            rt = manager.runtimes.get(tid) or manager.runtime(tid)
            src_host = rt.host_device or self.topology.host_of(op.dst).name
            return self.topology.route(src_host, op.dst)
        if op.kind is MemOpKind.SWAP_OUT:
            # The manager picks the receiving host (the local one unless
            # remote_swap spills to a neighbor server); the choice sticks
            # to the op so fault retries re-ride the same route and
            # op_finish lands the copy where the bytes actually went.
            if op.host is None:
                op.host = self.manager.swap_host_for(op.src, op.tensor.size_bytes)
            return self.topology.route(op.src, op.host)
        if op.kind is MemOpKind.P2P:
            return self.topology.route(op.src, op.dst)
        raise SimulationError(f"no route for op {op}")

    def _timelines(self, route: Route) -> list[ResourceTimeline]:
        cached = self._route_timelines.get(id(route))
        if cached is None:
            cached = [self.links[link.name] for link in route.links]
            self._route_timelines[id(route)] = cached
        return cached

    # -- execution -------------------------------------------------------------

    def execute_chain(self, ops: Sequence[MemOp], done: Callable[[], None]) -> None:
        """Run ``ops`` strictly in order, then call ``done``.

        Synchronous ops (waits that need no wait, allocations, drops,
        satisfied transfers) are consumed in a loop rather than through
        continuation recursion — most ops in a chain complete instantly,
        and the loop spends one iteration where the recursive form spent
        three frames.  ``step`` may re-enter itself through a nested
        substitute chain; the shared cursor keeps every op exactly-once.
        """
        n = len(ops)
        cursor = 0
        execute = self._execute_op

        def step() -> None:
            nonlocal cursor
            while cursor < n:
                op = ops[cursor]
                cursor += 1
                if not execute(op, step):
                    return  # async: step re-runs when the op completes
            done()

        step()

    def execute_op(self, op: MemOp, done: Callable[[], None]) -> None:
        """Run one op; ``done`` fires when it completes (possibly now)."""
        if self._execute_op(op, done):
            done()

    def _execute_op(self, op: MemOp, cont: Callable[[], None]) -> bool:
        """Start one op.  Returns True if it completed synchronously;
        otherwise ``cont`` has been registered to fire on completion."""
        manager = self.manager
        kind = op.kind
        tid = op.tensor.tid
        swapping_in = TensorState.SWAPPING_IN
        swapping_out = TensorState.SWAPPING_OUT
        if kind is MemOpKind.WAIT:
            rt = manager.runtimes.get(tid) or manager.runtime(tid)
            state = rt.state
            if state is swapping_in or state is swapping_out:
                manager.add_waiter(tid, cont)
                return False
            return True
        if kind is MemOpKind.ALLOC:
            manager.op_begin(op)
            return True
        # Eviction ops can race with a concurrent task on another device
        # pinning the victim: substitute another victim, or wait for the
        # pin to release if nothing else is evictable.
        if (kind is MemOpKind.DROP or kind is MemOpKind.SWAP_OUT) and not op.forced:
            rt = manager.runtimes.get(tid) or manager.runtime(tid)
            if rt.pinned > 0 and rt.resident_on == op.src:
                substitutes = manager.substitute_victims(op)
                if substitutes is None:
                    manager.add_waiter(tid, lambda: self.execute_op(op, cont))
                else:
                    self.execute_chain(substitutes, cont)
                return False
        if kind is MemOpKind.DROP:
            manager.op_begin(op)
            if op.kind is MemOpKind.DROP:  # not degraded to a write-back
                return True
            # op_begin degraded the drop to a SWAP_OUT (the tensor was
            # dirtied since planning); fall through to transfer it.
            self._schedule_transfer(op, cont)
            return False
        # Transfer op: if the tensor is mid-flight elsewhere (e.g. a peer
        # is still writing it back to host), retry when that completes.
        rt = manager.runtimes.get(tid) or manager.runtime(tid)
        state = rt.state
        if state is swapping_in or state is swapping_out:
            manager.add_waiter(tid, lambda: self.execute_op(op, cont))
            return False
        if not manager.op_begin(op):
            return True  # state already satisfied; nothing to move
        self._schedule_transfer(op, cont)
        return False

    def _schedule_transfer(
        self, op: MemOp, done: Callable[[], None], attempt: int = 0
    ) -> None:
        # op_begin may have degraded a planned P2P into a SWAP_IN.
        route = self._route_for(op)
        engine = self.engine
        injector = self.injector
        size = op.tensor.size_bytes
        if injector is None:
            ready = engine.now
            duration = route.transfer_time(size)
        else:
            ready, duration = injector.transfer_timing(route, size, engine.now)
        timelines = self._timelines(route)
        if timelines:
            start, end = ResourceTimeline.acquire_all(timelines, ready, duration)
        else:
            # A zero-hop route (host-local materialization) occupies no
            # link; acquire_all rejects empty lists, so the window is
            # explicit here.
            start, end = ready, ready + duration
        kind = op.kind
        category = _CATEGORY[kind]
        device = op.src if kind is MemOpKind.SWAP_OUT else op.dst

        if (
            injector is not None
            and duration > 0
            and injector.transfer_fails(route, start)
        ):
            self._schedule_failed_attempt(
                op, route, device, category, start, end, attempt, done
            )
            return

        # A ``partial`` on a bound method, not a closure: this runs once
        # per transfer and a closure would allocate a cell per captured
        # variable each time.
        engine.at(
            end,
            partial(self._finish_transfer, op, device, category, start, end,
                    duration, done),
        )

    def _finish_transfer(
        self,
        op: MemOp,
        device: str,
        category: str,
        start: float,
        end: float,
        duration: float,
        done: Callable[[], None],
    ) -> None:
        self.manager.op_finish(op)
        if duration > 0:
            self.trace.add(
                device, start, end, category, op.tensor.label,
                nbytes=op.tensor.size_bytes,
            )
        done()

    def _schedule_failed_attempt(
        self,
        op: MemOp,
        route: Route,
        device: str,
        category: str,
        start: float,
        end: float,
        attempt: int,
        done: Callable[[], None],
    ) -> None:
        """A transient transfer failure: the attempt holds the links for
        its full duration, its bytes are ledgered as retried, and the
        op re-runs after exponential backoff."""
        injector = self.injector
        if attempt >= injector.max_retries:
            label = op.tensor.label

            def exhausted() -> None:
                raise FaultError(
                    f"transfer of {label} over {route.src}->{route.dst} "
                    f"failed {attempt + 1} time(s); retry budget "
                    f"({injector.max_retries}) exhausted"
                )

            self.engine.at(end, exhausted)
            return

        meta = op.tensor
        stats = self.manager.stats

        def failed() -> None:
            if op.kind is MemOpKind.P2P:
                stats.record_retry(op.dst, meta.kind, Direction.P2P_IN, meta.size_bytes)
                stats.record(op.src, meta.kind, Direction.P2P_OUT, meta.size_bytes)
            else:
                direction = (
                    Direction.SWAP_OUT
                    if op.kind is MemOpKind.SWAP_OUT
                    else Direction.SWAP_IN
                )
                stats.record_retry(device, meta.kind, direction, meta.size_bytes)
            self.trace.add(
                device, start, end, category, meta.label, nbytes=meta.size_bytes
            )
            self.engine.after(
                injector.backoff_delay(attempt),
                lambda: self._schedule_transfer(op, done, attempt=attempt + 1),
            )

        self.engine.at(end, failed)

    # -- collectives -------------------------------------------------------------

    def collective_for(self, participants: Sequence[str]) -> CollectiveOp:
        """The cached :class:`CollectiveOp` for ``participants``
        (resolved on first use)."""
        key = tuple(participants)
        cached = self._collectives.get(key)
        if cached is None:
            spec = ring_collective(self.topology, key)
            timelines = [self.links[name] for name in spec.link_names]
            cached = (spec, timelines)
            self._collectives[key] = cached
        return cached[0]

    def execute_allreduce(
        self,
        participants: Sequence[str],
        comm_bytes: float,
        done: Callable[[float, float], None],
        label: str = "collective",
    ) -> None:
        """Ring all-reduce across ``participants``: one timed event that
        occupies the links of every ring hop for the closed-form
        duration; ``comm_bytes`` is the per-participant wire volume
        (2(N-1)/N x payload, precomputed by the decomposer).  The ring's
        routes, bottleneck, and involved-link set are resolved once per
        participant set and cached (:meth:`collective_for`), so repeat
        collectives cost O(1) in fleet size.  ``collective_mode ==
        "per-hop"`` expands the same window into traced ring rounds
        (see :mod:`repro.sim.collective`)."""
        if len(participants) < 2:
            done(self.engine.now, self.engine.now)
            return
        key = tuple(participants)
        cached = self._collectives.get(key)
        if cached is None:
            spec = ring_collective(self.topology, key)
            cached = (spec, [self.links[name] for name in spec.link_names])
            self._collectives[key] = cached
        spec, timelines = cached
        if self.injector is None:
            ready = self.engine.now
            duration = spec.duration(comm_bytes)
        else:
            # The ring runs at the pace of its slowest hop under the
            # currently-active link faults; a flapped hop defers the
            # whole collective.
            timings = [
                self.injector.transfer_timing(route, comm_bytes, self.engine.now)
                for route in spec.routes
            ]
            ready = max(t for t, _ in timings)
            duration = max(d for _, d in timings)
        if timelines:
            start, end = ResourceTimeline.acquire_all(timelines, ready, duration)
        else:
            start, end = ready, ready + duration
        if self.collective_mode == "per-hop":
            self._expand_per_hop(spec, label, start, duration, end, done)
            return
        self.engine.at(end, lambda: done(start, end))

    def _expand_per_hop(
        self,
        spec: CollectiveOp,
        label: str,
        start: float,
        duration: float,
        end: float,
        done: Callable[[float, float], None],
    ) -> None:
        """Audit-mode expansion: the analytic window subdivided into the
        2(N-1) ring rounds, each traced per participant.  Round ``k`` of
        ``R`` ends at ``start + duration * (k / R)``; for ``k == R`` the
        factor is exactly 1.0, so the final round's boundary — and the
        completion callback — land bitwise on the analytic ``end``.  The
        round markers carry zero bytes: the collective's wire volume is
        ledgered once by the executor against the single allreduce trace
        event, and the markers exist to expose the hop schedule to the
        bit-identity audit, not to double-count traffic."""
        engine = self.engine
        trace = self.trace
        rounds = spec.rounds
        participants = spec.participants
        prev = start

        def round_boundary(k: int, round_start: float, round_end: float) -> None:
            for dev in participants:
                trace.add(
                    dev, round_start, round_end, "p2p",
                    f"{label}.round{k}/{rounds}",
                )
            if k == rounds:
                done(start, end)

        for k in range(1, rounds + 1):
            boundary = start + duration * (k / rounds) if k < rounds else end
            engine.at(boundary, partial(round_boundary, k, prev, boundary))
            prev = boundary
