"""Execution plans: the scheduler's contract with the executor.

A :class:`Plan` is a fully-placed, per-device-ordered task graph plus
the memory policy to run it under.  Every scheduler in
:mod:`repro.schedulers` — baseline or Harmony — produces exactly this
structure, which is what makes optimizations individually toggleable:
the executor has no idea which scheme it is running.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.memory.policy import MemoryPolicy
from repro.tasks.graph import TaskGraph
from repro.tasks.task import TaskKind
from repro.tensors.registry import TensorRegistry


@dataclass
class Plan:
    """Scheduler output.

    Attributes
    ----------
    label:
        Human-readable scheme name (e.g. ``"harmony-pp"``).
    graph / registry:
        The task graph and its tensor registry.
    device_order:
        For each device, the exact order in which it executes its
        tasks.  ALLREDUCE tasks appear in *every* participant's order
        (they are synchronization points).
    replica_device:
        Which device hosts each data-parallel replica.
    policy:
        Memory-management policy for the run.
    samples_per_iteration:
        For throughput reporting.
    """

    label: str
    graph: TaskGraph
    registry: TensorRegistry
    device_order: dict[str, list[int]]
    replica_device: dict[int, str]
    policy: MemoryPolicy
    samples_per_iteration: int
    microbatch_size: int = 1
    notes: dict[str, object] = field(default_factory=dict)
    #: For collectives whose participants are not one-device replicas
    #: (a pipeline replica spans several devices): allreduce tid ->
    #: {participant device -> tensor ids it contributes}.  Empty for
    #: the one-device-per-replica schedulers, where the executor infers
    #: the mapping from ``replica_device``.
    collective_subsets: dict[int, dict[str, tuple[int, ...]]] = field(
        default_factory=dict
    )

    def validate(self) -> None:
        """Every task appears in device orders the right number of times
        and placements are consistent."""
        seen: dict[int, int] = {}
        for device, order in self.device_order.items():
            for tid in order:
                task = self.graph.task(tid)
                seen[tid] = seen.get(tid, 0) + 1
                if task.kind is TaskKind.COMPUTE:
                    if task.device != device:
                        raise SchedulingError(
                            f"task {task.label} ordered on {device} but placed "
                            f"on {task.device}"
                        )
                elif device not in task.participants:
                    raise SchedulingError(
                        f"allreduce {task.label} ordered on non-participant {device}"
                    )
        for task in self.graph:
            expected = (
                1 if task.kind is TaskKind.COMPUTE else len(task.participants)
            )
            if seen.get(task.tid, 0) != expected:
                raise SchedulingError(
                    f"task {task.label} appears {seen.get(task.tid, 0)} times in "
                    f"device orders, expected {expected}"
                )
        self.graph.validate(require_placement=False)

    def device_of_replica(self, replica: int) -> str:
        try:
            return self.replica_device[replica]
        except KeyError:
            raise SchedulingError(f"no device for replica {replica}") from None

    def task_counts(self) -> dict[str, int]:
        """Tasks by phase/kind (fwd/bwd/upd/allreduce) — the shape of
        the decomposition."""
        counts: dict[str, int] = {}
        for task in self.graph:
            if task.kind is TaskKind.COMPUTE:
                key = str(task.phase)
            else:
                key = "allreduce"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def total_collective_bytes(self) -> float:
        """Per-participant wire volume summed over all collectives."""
        return sum(
            t.comm_bytes for t in self.graph if t.kind is TaskKind.ALLREDUCE
        )

    def describe(self) -> str:
        counts = self.task_counts()
        count_text = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        lines = [
            f"plan {self.label!r}: {len(self.graph)} tasks ({count_text}), "
            f"{len(self.registry)} tensors",
            f"  policy: {self.policy}",
        ]
        for device in sorted(self.device_order):
            lines.append(
                f"  {device}: {len(self.device_order[device])} tasks in order"
            )
        return "\n".join(lines)
