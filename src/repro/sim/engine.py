"""Event heap and serially-shared resources.

:class:`Engine` is a minimal discrete-event core: callbacks scheduled
at absolute times, executed in (time, insertion-sequence) order.
:class:`ResourceTimeline` models a serially-shared resource — a PCIe
link or a GPU compute stream — as "next free at" bookkeeping: work
submitted while the resource is busy queues FIFO behind it.  This
serialization is deliberately simple and is exactly the mechanism that
surfaces the paper's Fig. 2(a) bottleneck: all GPUs' swap traffic
queues on the one host uplink.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class Engine:
    """Deterministic event loop."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._now = 0.0
        self._seq = 0

    @property
    def now(self) -> float:
        return self._now

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < {self._now})"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self._now + delay, callback)

    def run(self, max_events: int = 100_000_000) -> None:
        """Drain the event heap."""
        events = 0
        while self._heap:
            time, __, callback = heapq.heappop(self._heap)
            self._now = max(self._now, time)
            callback()
            events += 1
            if events > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")

    @property
    def pending_events(self) -> int:
        return len(self._heap)


class ResourceTimeline:
    """A serially-shared resource: FIFO occupancy with busy accounting."""

    def __init__(self, name: str):
        self.name = name
        self.free_at = 0.0
        self.busy_seconds = 0.0

    def acquire(self, now: float, duration: float) -> tuple[float, float]:
        """Queue ``duration`` of exclusive use; returns (start, end)."""
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration")
        start = max(now, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_seconds += duration
        return start, end

    @staticmethod
    def acquire_all(
        resources: list["ResourceTimeline"], now: float, duration: float
    ) -> tuple[float, float]:
        """Occupy several resources together (a multi-link route or a
        collective): starts when the last becomes free."""
        if not resources:
            return now, now + duration
        start = max(now, max(r.free_at for r in resources))
        end = start + duration
        for r in resources:
            r.free_at = end
            r.busy_seconds += duration
        return start, end

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / horizon)
