"""Event calendar and serially-shared resources.

:class:`Engine` is a minimal discrete-event core: callbacks scheduled
at absolute times, executed in (time, insertion-sequence) order.
:class:`ResourceTimeline` models a serially-shared resource — a PCIe
link or a GPU compute stream — as "next free at" bookkeeping: work
submitted while the resource is busy queues FIFO behind it.  This
serialization is deliberately simple and is exactly the mechanism that
surfaces the paper's Fig. 2(a) bottleneck: all GPUs' swap traffic
queues on the one host uplink.

Both classes sit on the simulator's innermost loop, so they use
``__slots__`` and a *bucketed* calendar: one heap entry per distinct
timestamp, with a FIFO list of ``(daemon, callback)`` pairs per bucket.
Simulated clusters produce heavy timestamp collisions (every microbatch
boundary wakes many devices at once), so bucketing replaces per-event
4-tuple heap churn with a list append, while FIFO drain preserves the
exact (time, insertion-sequence) order of the old one-tuple-per-event
heap (see ``docs/INTERNALS.md`` §Performance).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class Engine:
    """Deterministic event loop.

    Events scheduled with ``daemon=True`` (fault injections, pressure
    windows) only execute while non-daemon work remains: once the last
    real event has run, :meth:`run` returns without draining trailing
    daemon events, so a fault scheduled past the end of the run neither
    strikes nor inflates the clock.
    """

    __slots__ = (
        "_times", "_buckets", "now", "_live", "_pending", "events_processed"
    )

    def __init__(self) -> None:
        #: Min-heap of distinct timestamps with a pending bucket.
        self._times: list[float] = []
        #: time -> FIFO of (daemon, callback) pairs scheduled at it.
        self._buckets: dict[float, list[tuple[bool, Callable[[], None]]]] = {}
        #: Current simulated time.  A plain attribute (not a property):
        #: it is read on every schedule/log call in the inner loop.
        self.now = 0.0
        self._live = 0  # non-daemon events pending
        self._pending = 0  # all events pending (daemons included)
        #: Total events executed over the engine's lifetime — the
        #: denominator-free counter behind the benchmark harness's
        #: events/sec metric.
        self.events_processed = 0

    def at(
        self, time: float, callback: Callable[[], None], daemon: bool = False
    ) -> None:
        """Schedule ``callback`` at absolute simulated ``time``."""
        now = self.now
        # The past-event tolerance is *relative* to the clock: at large
        # simulated times (exactly the regime steady-state fast-forward
        # creates) a ulp of float error on ``start + duration`` dwarfs
        # any absolute epsilon — 1e-12 absolute would reject legitimate
        # events at t ~ 1e9 where one ulp is ~1.2e-7.  The tolerance
        # math only runs on the rare ``time < now`` path; almost every
        # schedule is at-or-after the clock and takes one compare.
        if time < now and time < now - 1e-12 * (now if now > 1.0 else 1.0):
            raise SimulationError(
                f"cannot schedule event in the past ({time} < {now})"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(daemon, callback)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((daemon, callback))
        self._pending += 1
        if not daemon:
            self._live += 1

    def after(
        self, delay: float, callback: Callable[[], None], daemon: bool = False
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, callback, daemon=daemon)

    def run(self, max_events: int = 100_000_000) -> None:
        """Drain the event calendar (down to trailing daemon events).

        The loop sets ``self.now`` once per *bucket* rather than once
        per event — same-time batches skip the redundant clock compare —
        and drains each bucket by index so that same-time events a
        callback schedules mid-drain land behind the bucket's remaining
        entries, exactly where the old per-event heap would have put
        them (larger insertion sequence, same timestamp).
        """
        times = self._times
        buckets = self._buckets
        pop = heapq.heappop
        push = heapq.heappush
        events = 0
        while times and self._live > 0:
            time = pop(times)
            bucket = buckets[time]
            if time > self.now:
                self.now = time
            i = 0
            while i < len(bucket):
                if events >= max_events:
                    # Stash the remainder so pending counts stay honest
                    # for the diagnostic (and any post-mortem).
                    buckets[time] = bucket[i:]
                    push(times, time)
                    self._pending -= i
                    raise SimulationError(
                        f"exceeded {max_events} events at t={self.now} with "
                        f"{self._pending} event(s) still pending; likely "
                        "livelock"
                    )
                daemon, callback = bucket[i]
                i += 1
                if not daemon:
                    self._live -= 1
                callback()
                events += 1
                if self._live == 0 or (times and times[0] < time):
                    # _live == 0: trailing daemons stay pending, like the
                    # old heap.  times[0] < time: a callback scheduled an
                    # event slightly in the past (within the relative
                    # tolerance above); the old heap ran it before the
                    # rest of this batch, so stash the remainder and let
                    # the outer loop pop the earlier bucket first.
                    break
            self._pending -= i
            if i < len(bucket):
                buckets[time] = bucket[i:]
                push(times, time)
            else:
                del buckets[time]
        self.events_processed += events

    @property
    def pending_events(self) -> int:
        return self._pending


class ResourceTimeline:
    """A serially-shared resource: FIFO occupancy with busy accounting."""

    __slots__ = ("name", "free_at", "busy_seconds", "journal")

    def __init__(self, name: str):
        self.name = name
        self.free_at = 0.0
        self.busy_seconds = 0.0
        #: When set (a list), every acquire appends its duration — the
        #: per-iteration delta capture behind steady-state fast-forward
        #: (see :mod:`repro.steady.cycle`).  ``None`` costs one branch.
        self.journal: list[float] | None = None

    def acquire(self, now: float, duration: float) -> tuple[float, float]:
        """Queue ``duration`` of exclusive use; returns (start, end)."""
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration")
        start = now if now > self.free_at else self.free_at
        end = start + duration
        self.free_at = end
        self.busy_seconds += duration
        if self.journal is not None:
            self.journal.append(duration)
        return start, end

    @staticmethod
    def acquire_all(
        resources: list["ResourceTimeline"], now: float, duration: float
    ) -> tuple[float, float]:
        """Occupy several resources together (a multi-link route or a
        collective): starts when the last becomes free."""
        if duration < 0:
            names = ", ".join(r.name for r in resources) or "no resources"
            raise SimulationError(f"{names}: negative duration")
        if not resources:
            # An empty acquisition used to hand back a phantom
            # ``(now, now + duration)`` window that occupied nothing —
            # invisible to the audit layer's exclusivity cross-checks.
            raise SimulationError(
                "acquire_all on an empty resource list (a transfer must "
                "occupy at least one timeline; local moves bypass "
                "acquisition explicitly)"
            )
        start = now
        for r in resources:
            if r.free_at > start:
                start = r.free_at
        end = start + duration
        for r in resources:
            r.free_at = end
            r.busy_seconds += duration
            if r.journal is not None:
                r.journal.append(duration)
        return start, end

    def utilization(self, horizon: float) -> float:
        """Raw busy/horizon ratio — deliberately *not* clamped to 1.0:
        a value above 1.0 means double-booked busy accounting, which
        the audit layer flags (``LINK_BUSY_EXCEEDS_MAKESPAN``) rather
        than this accessor masking it."""
        if horizon <= 0:
            return 0.0
        return self.busy_seconds / horizon
