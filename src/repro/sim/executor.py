"""The executor: runs a placed plan to completion on the event engine.

Per-device execution is *strictly ordered*: each device runs its plan's
task sequence in order, mirroring how CUDA streams execute work in
issue order.  A task goes through two stages — memory preparation (the
manager's op chain: evictions, swap-ins, p2p moves) and compute.  With
``prefetch`` enabled the executor overlaps the *next* task's
preparation with the current task's compute (double buffering) when
memory headroom allows, degrading gracefully to serial behaviour when
it does not — the "memory–performance tango" of the paper's §4.

ALLREDUCE tasks are synchronization points: every participant parks at
the task, per-replica gradients are made resident on each participant,
the ring transfer occupies the involved links, and all participants
resume together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import CapacityError, SimulationError, SteadyStateError

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.perf.incremental import CheckpointStore
from repro.hardware.topology import Topology
from repro.memory.manager import MemoryManager
from repro.memory.stats import Direction, SwapStats
from repro.models.costmodel import CostModel
from repro.sim.engine import Engine, ResourceTimeline
from repro.sim.plan import Plan
from repro.sim.result import DeviceReport, RunResult
from repro.sim.trace import Trace, TraceEvent
from repro.sim.transfer import TransferEngine
from repro.steady import SteadyMode, SteadyReport, resolve_mode
from repro.tasks.task import Task, TaskKind
from repro.util.gcpause import paused_gc


@dataclass(frozen=True)
class ExecOptions:
    """Executor knobs.

    prefetch:
        Overlap next-task memory preparation with current compute
        (double buffering).  Off by default; the prefetch ablation
        benchmark measures its effect.
    flush_at_end:
        Write back dirty persistent state when all tasks finish, so a
        one-iteration run reports steady-state swap volume (the
        write-backs the next iteration would otherwise trigger).
    iterations:
        Replay the plan this many times back-to-back.  Persistent state
        (weights, gradients, optimizer moments) keeps its residency
        across iterations — the true steady state — while per-microbatch
        tensors are reborn each iteration.  The flush (if enabled) runs
        only after the last iteration.
    audit:
        Run the :mod:`repro.validate` physical-consistency audit on the
        finished run.  The report is attached to ``RunResult.audit``;
        any violation raises :class:`~repro.errors.AuditError`.
    injector:
        Fault injector (:mod:`repro.faults`) for this run: stretches
        compute under stragglers, degrades/defers/fails transfers, and
        arms device-loss and memory-pressure events on the engine.
        ``None`` simulates a healthy machine.
    steady_state:
        Steady-state fast-forward mode (``"auto"``/``"off"``/``"force"``
        or a :class:`~repro.steady.SteadyMode`); ``None`` inherits the
        process default (see :func:`repro.steady.resolve_mode`).  Any
        injector vetoes fast-forward wholesale, keeping fault-injected
        runs bit-for-bit identical to the pre-steady-state simulator.
    checkpoints:
        Prefix-checkpoint store (:mod:`repro.perf.incremental`).  On the
        cycle path the executor restores the deepest stored boundary
        ``<= iterations - 1`` before simulating, and writes throttled
        boundary snapshots as it runs — byte-identical results either
        way.  Requires ``checkpoint_key`` (the hierarchical prefix key);
        ignored on the legacy path (single iteration or faults).
    checkpoint_key:
        The :func:`repro.perf.fingerprint.base_fingerprint` of this run
        — the session layer computes it (and leaves it ``None`` for
        unfingerprintable specs, which then run cold).
    collective_mode:
        ``"analytic"`` (default) costs each collective as one closed-form
        timed event; ``"per-hop"`` expands the same window into traced
        ring rounds — the audit mode the bit-identity tests run on small
        fleets (see :mod:`repro.sim.collective`).
    """

    prefetch: bool = False
    flush_at_end: bool = True
    iterations: int = 1
    audit: bool = False
    injector: "FaultInjector | None" = None
    steady_state: "SteadyMode | str | None" = None
    checkpoints: "CheckpointStore | None" = None
    checkpoint_key: str | None = None
    collective_mode: str = "analytic"

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise SimulationError("iterations must be >= 1")
        if self.steady_state is not None:
            SteadyMode.parse(self.steady_state)  # validate eagerly
        if self.collective_mode not in ("analytic", "per-hop"):
            raise SimulationError(
                f"unknown collective_mode {self.collective_mode!r}; "
                "choose 'analytic' or 'per-hop'"
            )


@dataclass(slots=True)
class _DeviceState:
    name: str
    order: list[int]
    run_idx: int = 0
    computing: int | None = None
    prep_inflight: int | None = None
    ready: set[int] = field(default_factory=set)


class Executor:
    def __init__(
        self,
        topology: Topology,
        plan: Plan,
        cost_model: CostModel | None = None,
        options: ExecOptions | None = None,
    ):
        plan.validate()
        self.topology = topology
        self.plan = plan
        self.cost = cost_model if cost_model is not None else CostModel()
        self.options = options if options is not None else ExecOptions()
        self.engine = Engine()
        self.stats = SwapStats()
        self.trace = Trace()
        # Clock for usage-log timestamps: epoch-rebased runs report
        # absolute time (``_epoch`` stays 0.0 on the legacy path, and
        # ``0.0 + now`` is bitwise ``now``).
        self.manager = MemoryManager(
            topology, plan.registry, plan.policy, self.stats,
            clock=lambda: self._epoch + self.engine.now,
        )
        self.links = {name: ResourceTimeline(name) for name in topology.links}
        self.compute_streams = {
            device.name: ResourceTimeline(f"compute:{device.name}")
            for device in (*topology.gpus(), *topology.hosts())
        }
        self.injector = self.options.injector
        self.transfers = TransferEngine(
            self.engine, topology, self.manager, self.trace, self.links,
            injector=self.injector,
            collective_mode=self.options.collective_mode,
        )
        if self.injector is not None:
            self.injector.arm(self.engine, self.manager.pools)
        self.devstates = {
            dev: _DeviceState(dev, list(order))
            for dev, order in plan.device_order.items()
        }
        # Frozen sorted view: _advance_all runs after every task, and the
        # device set never changes mid-run.
        self._device_names = tuple(sorted(self.devstates))
        self._tasks = plan.graph.tasks  # validated: every ordered tid exists
        # Targeted wake-up state.  The scheduling loop used to rescan
        # every device after every completion (O(devices) per task, with
        # an O(deps) subset check per device) — quadratic on wide
        # fleets.  Instead: a per-task countdown of unfinished direct
        # deps (checked in O(1) by _advance), a reverse-dependency map,
        # and a task -> hosting-devices map.  A completion then advances
        # exactly the devices that could have been unblocked: the
        # completed task's own device(s) — its order continues, and a
        # serially-deferred prepare retries — plus the devices of every
        # dependent whose countdown just hit zero.  Any other device's
        # head task saw none of its gates change, so the old full scan
        # would have no-opped on it; wakes stay in sorted device order,
        # so the event stream is bit-identical.
        self._dep_template = {
            tid: len(t.all_deps) for tid, t in self._tasks.items()
        }
        self._dep_missing = dict(self._dep_template)
        rdeps: dict[int, list[int]] = {}
        hosts: dict[int, set[str]] = {}
        for tid, t in self._tasks.items():
            for dep in t.all_deps:
                rdeps.setdefault(dep, []).append(tid)
        for dev in self._device_names:
            for tid in self.devstates[dev].order:
                hosts.setdefault(tid, set()).add(dev)
        self._rdeps = {tid: tuple(ts) for tid, ts in rdeps.items()}
        self._task_devices = {
            tid: tuple(sorted(devs)) for tid, devs in hosts.items()
        }
        self._device_of_replica = dict(plan.replica_device)
        self.done: set[int] = set()
        self._arrivals: dict[int, set[str]] = {}
        self._started_collectives: set[int] = set()
        self._samples = 0
        self.steady_mode = resolve_mode(self.options.steady_state)
        if self.injector is not None and self.steady_mode is SteadyMode.FORCE:
            raise SimulationError(
                "steady-state 'force' is incompatible with fault injection: "
                "any injector vetoes fast-forward"
            )
        # The cycle path rebases the clock at iteration boundaries so
        # that steady iterations are bitwise-identical and detectable
        # (see _run_cycles).  Single-iteration and fault-injected runs
        # keep the legacy continuous clock: their event streams are
        # bit-for-bit identical to the pre-steady-state simulator.
        self._cycle_path = (
            self.injector is None and self.options.iterations > 1
        )
        #: Absolute time of the current iteration's local t=0 on the
        #: cycle path; stays 0.0 on the legacy path.
        self._epoch = 0.0
        self._all_timelines = (
            *self.links.values(), *self.compute_streams.values()
        )
        self.steady_report: SteadyReport | None = None
        #: Boundary index a prefix checkpoint restored this run from
        #: (``None`` = cold).  Deliberately *not* part of RunResult:
        #: restored and cold results must compare equal byte-for-byte,
        #: so reuse accounting lives here and on the store's counters.
        self.restored_from: int | None = None

    # -- public ------------------------------------------------------------

    def run(self) -> RunResult:
        # The event loop's garbage is acyclic and refcount-reclaimed;
        # gen-2 GC passes rescanning the O(fleet) live plan graph are
        # what made per-event cost grow with fleet size (see
        # :mod:`repro.util.gcpause`).
        with paused_gc():
            if self._cycle_path:
                result = self._run_cycles()
            else:
                result = self._run_legacy()
        if self.options.audit:
            # Imported lazily: repro.validate pulls in the session layer
            # for its differential checker, which imports this module.
            from repro.validate.audit import audit_run

            result.audit = audit_run(
                result, self.topology, self.plan,
                iterations=self.options.iterations,
            )
            result.audit.raise_if_failed()
        return result

    def _run_legacy(self) -> RunResult:
        """Continuous-clock loop: single-iteration and fault-injected
        runs, byte-identical to the simulator before the steady-state
        layer existed."""
        self.manager.materialize_initial()
        for iteration in range(self.options.iterations):
            if iteration > 0:
                self._reset_iteration()
            for dev in self._device_names:
                self._advance(dev)
            self.engine.run()
            self._check_complete()
        if self.options.flush_at_end:
            self._flush()
            self.engine.run()
        return self._result()

    def _run_cycles(self) -> RunResult:
        """Rebased-clock loop for healthy multi-iteration runs.

        Every iteration starts at local ``t=0`` with every resource
        timeline free (the engine fully drains between iterations, so
        zeroing loses nothing); the iteration's trace events are
        committed to absolute time by adding ``self._epoch`` at the
        boundary.  An iteration is therefore a pure function of its
        entry state, and once two consecutive entry fingerprints match
        bitwise, every remaining iteration is proven identical:
        ``auto``/``force`` fast-forward all but the last analytically
        (:mod:`repro.steady.cycle`), while ``off`` simply keeps
        simulating — both arms produce bit-for-bit equal results, which
        is what the equivalence tests and the bench assert.
        """
        from repro.steady.cycle import (
            apply_fast_forward,
            capture_ledger,
            entry_fingerprint,
            start_journals,
            stop_journals,
        )

        mode = self.steady_mode
        n = self.options.iterations
        engine = self.engine
        detecting = mode is not SteadyMode.OFF
        detected_at: int | None = None
        skipped = 0
        period: float | None = None

        store = self.options.checkpoints
        store_key = self.options.checkpoint_key
        if store_key is None:
            store = None  # unfingerprintable spec: run cold, write nothing
        snap = store.best(store_key, n - 1) if store is not None else None
        if snap is not None:
            # Resume from the donor's deepest shared boundary: install
            # the carried-across state, then replay the cycle-detection
            # decision a cold run would have made at this boundary
            # against *our* iteration count (the donor's fingerprints
            # and ledger are the detection inputs; skip depends on n).
            from repro.perf.incremental import install_snapshot

            install_snapshot(self, snap)
            it = self.restored_from = snap.iteration
            mark = len(self.trace.events)
            prev_fp = snap.fp
            detecting = detecting and snap.detecting
            if (
                detecting
                and snap.ledger is not None
                and snap.fp == snap.prev_fp
            ):
                skip = n - 1 - it
                if skip > 0:
                    detected_at = it + 1
                    period = snap.ledger.period
                    skipped = skip
                    apply_fast_forward(self, snap.ledger, skip)
                    mark = len(self.trace.events)
                    detecting = False
                    it = n - 1
            it += 1
        else:
            self.manager.materialize_initial()
            prev_fp = entry_fingerprint(self) if detecting else None
            it = 1
            mark = 0  # first trace-event index of the current iteration
        while True:
            if detecting:
                start_journals(self)
                events_before = engine.events_processed
                samples_before = self._samples
            for dev in self._device_names:
                self._advance(dev)
            engine.run()
            self._check_complete()
            local_makespan = engine.now
            if it == n:
                if detecting:
                    stop_journals(self)
                break
            ledger = None
            if detecting:
                # Capture before the commit below shifts events[mark:]
                # to absolute time: the cycle is stored in local time.
                ledger = capture_ledger(
                    self, mark, events_before, samples_before, local_makespan
                )
                stop_journals(self)
            # -- iteration boundary: commit and rebase ----------------
            self._commit_trace(mark)
            self._epoch += local_makespan
            mark = len(self.trace.events)
            self._reset_iteration()
            if engine.pending_events:
                raise SimulationError(
                    "steady-state loop: events pending across an iteration "
                    "boundary (only fault daemons linger, and injectors "
                    "take the legacy path)"
                )
            engine.now = 0.0
            for tl in self._all_timelines:
                tl.free_at = 0.0
            fp = entry_fingerprint(self) if detecting else None
            if store is not None and (detecting or mode is SteadyMode.OFF):
                # Donor-side prefix checkpoint: captured mid-boundary —
                # after the entry fingerprint, before the detection
                # branch — so a restoring run can replay the detection
                # decision itself.  Post-detection boundaries are never
                # reached here (detection jumps straight to the final
                # iteration), so snapshots never carry compressed
                # segments.  Throttled to O(log n) boundaries.
                from repro.perf.incremental import (
                    capture_snapshot,
                    snapshot_boundary,
                )

                if snapshot_boundary(it, n) and not store.has(store_key, it):
                    store.put(
                        store_key,
                        capture_snapshot(
                            self, it, prev_fp, fp, ledger, detecting
                        ),
                    )
            if detecting:
                skip = n - 1 - it  # iterations to fast-forward; the
                # final iteration always runs live so the flush departs
                # from a naturally-arising state.
                if fp == prev_fp and skip > 0:
                    detected_at = it + 1
                    period = ledger.period
                    skipped = skip
                    apply_fast_forward(self, ledger, skip)
                    mark = len(self.trace.events)
                    detecting = False
                    it = n - 1
                prev_fp = fp
            it += 1
        if self.options.flush_at_end:
            self._flush()
            engine.run()
        self._commit_trace(mark)
        if mode is SteadyMode.FORCE and skipped == 0:
            raise SteadyStateError(
                f"steady-state 'force': no cycle proven over {n} iterations "
                "(detection needs a warm-up, a matching entry, and at least "
                "one skippable iteration before the final live one)"
            )
        result = self._result()
        result.steady = SteadyReport(
            mode=mode.value,
            detected_at=detected_at,
            skipped=skipped,
            period=period,
            live_iterations=n - skipped,
        )
        return result

    def _commit_trace(self, mark: int) -> None:
        """Shift ``trace.events[mark:]`` from local to absolute time."""
        epoch = self._epoch
        if epoch == 0.0:
            return
        events = self.trace.events
        for i in range(mark, len(events)):
            e = events[i]
            events[i] = TraceEvent(
                e[0], epoch + e[1], epoch + e[2], e[3], e[4], e[5]
            )

    def _reset_iteration(self) -> None:
        """Rewind the plan for a replay: every device starts its order
        over, per-microbatch tensors are reborn (fresh inputs arrive on
        the host), and persistent state keeps whatever residency the
        previous iteration left it — the steady-state carry-over."""
        from repro.tensors.state import TensorRuntime
        from repro.tensors.tensor import TensorKind

        self.done.clear()
        self._dep_missing = dict(self._dep_template)
        self._arrivals.clear()
        self._started_collectives.clear()
        self.manager._waiters.clear()  # nothing is in flight between iterations
        for st in self.devstates.values():
            st.run_idx = 0
            st.computing = None
            st.prep_inflight = None
            st.ready.clear()
        for tid, rt in list(self.manager.runtimes.items()):
            if rt.meta.persistent:
                continue
            fresh = TensorRuntime(rt.meta)
            self.manager.runtimes[tid] = fresh
            self.manager._home[tid] = None
            if rt.meta.kind is TensorKind.ACTIVATION and rt.meta.layer == -1:
                fresh.materialize_on_host()

    # -- scheduling loop ------------------------------------------------------

    def _advance_all(self) -> None:
        for dev in self._device_names:
            self._advance(dev)

    def _advance_wakers(self, tid: int) -> None:
        """Advance exactly the devices whose head task may have been
        unblocked by ``tid`` completing (see the wake-up maps in
        ``__init__``); also retires ``tid`` from its dependents'
        countdowns — call exactly once per completion."""
        task_devices = self._task_devices
        woken = set(task_devices.get(tid, ()))
        dep_missing = self._dep_missing
        for dependent in self._rdeps.get(tid, ()):
            left = dep_missing[dependent] - 1
            dep_missing[dependent] = left
            if left == 0:
                woken.update(task_devices.get(dependent, ()))
        advance = self._advance
        for dev in sorted(woken):
            advance(dev)

    def _advance(self, dev: str) -> None:
        st = self.devstates[dev]
        if st.run_idx >= len(st.order):
            return
        tid = st.order[st.run_idx]
        task = self._tasks[tid]
        if task.kind is TaskKind.ALLREDUCE:
            self._advance_allreduce(dev, task)
            return
        if tid in st.ready:
            if st.computing is None:
                self._start_compute(dev, task)
            return
        if st.prep_inflight is not None:
            return
        if st.computing is not None and not self.options.prefetch:
            return
        if self._dep_missing[task.tid]:
            return
        self._start_prepare(dev, task)

    # -- compute tasks -----------------------------------------------------------

    def _start_prepare(self, dev: str, task: Task) -> None:
        st = self.devstates[dev]
        st.prep_inflight = task.tid
        prefetching = st.computing is not None
        try:
            ops = self.manager.prepare(task, dev)
        except CapacityError:
            st.prep_inflight = None
            if prefetching:
                return  # retry serially once the current task releases its pins
            raise

        def prepared() -> None:
            st.prep_inflight = None
            st.ready.add(task.tid)
            self._advance(dev)

        self.transfers.execute_chain(ops, prepared)

    def _start_compute(self, dev: str, task: Task) -> None:
        st = self.devstates[dev]
        st.ready.discard(task.tid)
        st.computing = task.tid
        st.run_idx += 1
        device_spec = self.topology.device(dev)
        duration = self.cost.task_time(task.flops, device_spec)
        if self.injector is not None:
            duration = self.injector.compute_duration(dev, duration, self.engine.now)
        start, end = self.compute_streams[dev].acquire(self.engine.now, duration)

        def complete() -> None:
            self.trace.add(dev, start, end, "compute", task.label)
            self.manager.task_finished(task)
            self.done.add(task.tid)
            self._samples += task.samples
            st.computing = None
            self._advance_wakers(task.tid)

        self.engine.at(end, complete)
        if self.options.prefetch:
            self._advance(dev)  # start preparing the next task right away

    # -- allreduce ----------------------------------------------------------------

    def _tensors_on_device(self, task: Task, dev: str) -> list[int]:
        subsets = self.plan.collective_subsets.get(task.tid)
        if subsets is not None:
            return list(subsets.get(dev, ()))
        reg = self.plan.registry
        return [
            tid
            for tid in task.touched
            if self._device_of_replica.get(reg.by_id(tid).replica) == dev
        ]

    def _tensors_by_device(
        self, task: Task, participants: list[str]
    ) -> dict[str, list[int]]:
        """Every participant's :meth:`_tensors_on_device` in one pass
        over ``task.touched`` instead of one scan per participant —
        identical lists (each keeps its device's tids in touch order)."""
        subsets = self.plan.collective_subsets.get(task.tid)
        if subsets is not None:
            return {dev: list(subsets.get(dev, ())) for dev in participants}
        reg = self.plan.registry
        dev_of = self._device_of_replica.get
        out: dict[str, list[int]] = {dev: [] for dev in participants}
        for tid in task.touched:
            dev = dev_of(reg.by_id(tid).replica)
            bucket = out.get(dev)
            if bucket is not None:
                bucket.append(tid)
        return out

    def _advance_allreduce(self, dev: str, task: Task) -> None:
        st = self.devstates[dev]
        if st.computing is not None or st.prep_inflight is not None:
            return
        if self._dep_missing[task.tid]:
            return
        arrivals = self._arrivals.setdefault(task.tid, set())
        arrivals.add(dev)
        if len(arrivals) != len(task.participants):
            return
        if task.tid in self._started_collectives:
            return
        self._started_collectives.add(task.tid)
        self._start_allreduce(task)

    def _start_allreduce(self, task: Task) -> None:
        participants = sorted(task.participants)
        for dev in participants:
            st = self.devstates[dev]
            st.computing = task.tid
            st.run_idx += 1
        pending = {"chains": len(participants)}
        subsets = self._tensors_by_device(task, participants)

        def chain_done() -> None:
            pending["chains"] -= 1
            if pending["chains"] == 0:
                self.transfers.execute_allreduce(
                    participants, task.comm_bytes, collective_done,
                    label=task.label,
                )

        def collective_done(start: float, end: float) -> None:
            comm_kind = (
                self.plan.registry.by_id(task.reads[0]).kind
                if task.reads
                else None
            )
            for dev in participants:
                if end > start:
                    self.trace.add(
                        dev, start, end, "allreduce", task.label,
                        nbytes=task.comm_bytes,
                    )
                if comm_kind is not None and task.comm_bytes:
                    # Collectives ride the device-to-device links; account
                    # their wire volume alongside p2p moves.
                    self.stats.record(
                        dev, comm_kind, Direction.P2P_IN, task.comm_bytes
                    )
                self.manager.task_finished(task, tensors=subsets[dev])
                self.devstates[dev].computing = None
            self.done.add(task.tid)
            self._advance_wakers(task.tid)

        for dev in participants:
            ops = self.manager.prepare(task, dev, tensors=subsets[dev])
            self.transfers.execute_chain(ops, chain_done)

    # -- completion --------------------------------------------------------------

    def _check_complete(self) -> None:
        if len(self.done) == len(self.plan.graph):
            return
        diagnostics = []
        for dev in self._device_names:
            st = self.devstates[dev]
            if st.run_idx < len(st.order):
                task = self.plan.graph.task(st.order[st.run_idx])
                missing = sorted(task.all_deps - self.done)
                diagnostics.append(
                    f"{dev}: stuck at {task.label} (missing deps {missing[:6]})"
                )
        raise SimulationError(
            "deadlock: "
            f"{len(self.plan.graph) - len(self.done)} tasks never ran; "
            + "; ".join(diagnostics)
        )

    def _flush(self) -> None:
        ops = self.manager.plan_flush()
        by_device: dict[str, list] = {}
        for op in ops:
            by_device.setdefault(op.src, []).append(op)
        for device in sorted(by_device):
            self.transfers.execute_chain(by_device[device], lambda: None)

    # -- results ------------------------------------------------------------------

    def partial_result(self) -> RunResult:
        """Best-effort result for an interrupted run (a device loss
        aborted the event loop): whatever the trace and ledgers saw up
        to the interruption, with only the actually-finished samples.
        The resilient runner audits and accounts lost work from this."""
        result = self._result()
        result.samples = self._samples
        return result

    def _result(self) -> RunResult:
        makespan = max(self.trace.makespan(), self._epoch + self.engine.now)
        devices = {}
        compute_busy_by_dev = (
            None if self._cycle_path
            else self.trace.busy_seconds_by_device("compute")
        )
        swap_in_by_dev = self.stats.volume_by_device(Direction.SWAP_IN)
        swap_out_by_dev = self.stats.volume_by_device(Direction.SWAP_OUT)
        for gpu in self.topology.gpus():
            pool = self.manager.pools[gpu.name]
            if self._cycle_path:
                # Foldable source: the compute stream's busy ledger —
                # O(live iterations) under fast-forward where summing
                # the expanded trace would be O(events x N).  Identical
                # between off/auto arms (both fold the same additions).
                compute_busy = self.compute_streams[gpu.name].busy_seconds
            else:
                # sum() over no events is int 0; match it for devices
                # absent from the one-pass map.
                compute_busy = compute_busy_by_dev.get(gpu.name, 0)
            devices[gpu.name] = DeviceReport(
                name=gpu.name,
                capacity=pool.capacity,
                peak_used=pool.peak_used,
                peak_demand=pool.peak_demand,
                compute_busy=compute_busy,
                swap_in_bytes=swap_in_by_dev.get(gpu.name, 0),
                swap_out_bytes=swap_out_by_dev.get(gpu.name, 0),
                peak_activation=self.manager.activation_peak.get(gpu.name, 0.0),
            )
        return RunResult(
            label=self.plan.label,
            makespan=makespan,
            samples=self._samples or self.plan.samples_per_iteration,
            stats=self.stats,
            trace=self.trace,
            devices=devices,
            link_busy={name: tl.busy_seconds for name, tl in self.links.items()},
            num_tasks=len(self.plan.graph),
            events_processed=self.engine.events_processed,
            memory_profile={
                dev: list(log) for dev, log in self.manager.usage_log.items()
            },
        )
