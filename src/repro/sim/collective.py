"""Analytic collective operations: ring topology costed in closed form.

A gradient all-reduce over N participants is physically 2(N-1) ring
rounds of chunk exchanges, but simulating every hop of every round is
O(world) events per collective — the cost that made large-fleet runs
quadratic-ish.  :class:`CollectiveOp` resolves the ring *once* per
participant set (the device subsets come from
``Plan.collective_subsets`` / the wired participants): each ring hop's
route through the link hierarchy, the bottleneck bandwidth across all
hops, and the worst-case hop latency.  A collective then becomes one
timed event whose duration is the closed form

    max_hop_latency + comm_bytes / bottleneck_bandwidth

with ``comm_bytes`` the per-participant wire volume the decomposer
precomputed (``2(N-1)/N x payload`` for all-reduce, ``(N-1)/N x
payload`` for the ZeRO all-gather).  The cut-through assumption matches
:meth:`Route.transfer_time`: rounds pipeline, so latency is paid once.

The *expanded per-hop* audit mode (``ExecOptions.collective_mode =
"per-hop"``) subdivides the same closed-form window into the 2(N-1)
ring rounds, tracing each round on every participant.  Round ``k`` of
``R`` ends at ``start + duration * (k / R)`` — for ``k == R`` the
factor is exactly 1.0, so the expansion's final event lands bitwise on
the analytic end time: the bit-identity tests assert equal makespans on
small fleets across every scheduler scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.hardware.topology import Route, Topology


@dataclass(frozen=True)
class CollectiveOp:
    """One resolved ring collective over a fixed participant set.

    Immutable and cached per participant tuple by the transfer engine,
    so per-collective cost is independent of fleet size after the first
    resolution (the resolution itself is O(participants x path length)
    thanks to the topology's cached route table).
    """

    participants: tuple[str, ...]
    #: Ring hop i: participants[i] -> participants[(i+1) % N].
    routes: tuple[Route, ...]
    #: Slowest link on any ring hop — the ring runs at its pace.
    bottleneck_bandwidth: float
    #: Worst single-hop latency, paid once (cut-through pipelining).
    max_latency: float
    #: Every distinct link the ring occupies, in first-use order
    #: (hop order, then link order along each hop's route).
    link_names: tuple[str, ...]

    @property
    def world(self) -> int:
        return len(self.participants)

    @property
    def rounds(self) -> int:
        """Ring rounds the analytic window stands in for: N-1 reduce-
        scatter + N-1 all-gather steps."""
        return 2 * (len(self.participants) - 1)

    def duration(self, comm_bytes: float) -> float:
        """Closed-form collective duration for one participant's wire
        volume — the same float expression the pre-analytic simulator
        evaluated per call, so cached specs change nothing bitwise."""
        return self.max_latency + comm_bytes / self.bottleneck_bandwidth


def ring_collective(topology: Topology, participants: tuple[str, ...]) -> CollectiveOp:
    """Resolve the ring for ``participants`` against ``topology``."""
    if len(participants) < 2:
        raise SimulationError(
            f"a collective needs at least two participants, got "
            f"{participants!r}"
        )
    n = len(participants)
    routes = tuple(
        topology.route(a, participants[(i + 1) % n])
        for i, a in enumerate(participants)
    )
    seen: dict[str, None] = {}
    for route in routes:
        for link in route.links:
            seen[link.name] = None
    return CollectiveOp(
        participants=tuple(participants),
        routes=routes,
        bottleneck_bandwidth=min(r.bottleneck_bandwidth for r in routes),
        max_latency=max(r.total_latency for r in routes),
        link_names=tuple(seen),
    )
