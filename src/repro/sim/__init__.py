"""Deterministic discrete-event simulator.

The engine executes a *placed, ordered* task plan (the scheduler's
output) over a hardware topology, with every byte of data movement
brokered by the memory manager and every transfer occupying the links
on its route.  Determinism is absolute: the event heap breaks time ties
by insertion sequence and nothing consults a clock or RNG, so every
run of the same plan produces byte-identical results.
"""

from repro.sim.engine import Engine, ResourceTimeline
from repro.sim.plan import Plan
from repro.sim.trace import Trace, TraceEvent, render_timeline
from repro.sim.result import RunResult, DeviceReport
from repro.sim.executor import Executor, ExecOptions

__all__ = [
    "Engine",
    "ResourceTimeline",
    "Plan",
    "Trace",
    "TraceEvent",
    "render_timeline",
    "RunResult",
    "DeviceReport",
    "Executor",
    "ExecOptions",
]
