"""Run results: the metrics every experiment reads off a simulation.

A :class:`RunResult` carries the three quantities the paper's figures
plot — throughput (Fig. 2(a)), swap volume (Fig. 2(a), §3 analysis),
and per-device memory footprint (Fig. 2(c)) — plus the trace and link
utilizations for diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.memory.stats import SwapStats

if TYPE_CHECKING:
    from repro.faults.report import FaultReport
    from repro.steady import SteadyReport
    from repro.validate.violations import AuditReport
from repro.sim.trace import Trace
from repro.units import GB, fmt_bytes, fmt_time
from repro.util.tables import Table


@dataclass(frozen=True)
class DeviceReport:
    """Per-device outcome of a run."""

    name: str
    capacity: float
    peak_used: float
    peak_demand: float
    compute_busy: float
    swap_in_bytes: float
    swap_out_bytes: float
    #: High-water mark of non-persistent (activation-class) bytes
    #: resident on the device — the per-stage footprint pipeline
    #: schedules bound (1F1B's in-flight cap, DAPPLE's early backward).
    peak_activation: float = 0.0

    @property
    def overflow_bytes(self) -> float:
        """How far the device's live footprint exceeded its capacity —
        the amount that *must* swap (Fig. 2(c)'s above-the-line bars)."""
        return max(0.0, self.peak_demand - self.capacity)

    @property
    def swap_pressure(self) -> str:
        """Qualitative label matching Fig. 2(c)'s annotations."""
        if self.overflow_bytes <= 0:
            return "no swap"
        if self.overflow_bytes < 0.25 * self.capacity:
            return "light swap"
        return "heavy swap"


@dataclass
class RunResult:
    label: str
    makespan: float
    samples: int
    stats: SwapStats
    trace: Trace
    devices: dict[str, DeviceReport]
    link_busy: dict[str, float] = field(default_factory=dict)
    num_tasks: int = 0
    #: Engine events executed to produce this result — the numerator of
    #: the benchmark harness's events/sec metric (see ``repro.perf``).
    events_processed: int = 0
    #: Per-device (time, bytes-resident) samples taken at every
    #: allocation/eviction — the memory-usage-over-time curve.
    memory_profile: dict[str, list[tuple[float, float]]] = field(
        default_factory=dict
    )
    #: Physical-consistency audit outcome, set when the run executed
    #: with ``ExecOptions.audit`` (see :mod:`repro.validate`).
    audit: "AuditReport | None" = None
    #: Fault-injection accounting, set when the run executed under a
    #: :class:`~repro.faults.model.FaultPlan` (see :mod:`repro.faults`).
    #: For a resilient run this is the aggregate over all segments and
    #: the other fields describe the final executed segment.
    faults: "FaultReport | None" = None
    #: Steady-state fast-forward accounting (see :mod:`repro.steady`),
    #: set by multi-iteration healthy runs; fault-injected and
    #: single-iteration runs leave it ``None`` (session-level fault
    #: runs record the veto instead).
    steady: "SteadyReport | None" = None

    @property
    def throughput(self) -> float:
        """Samples per second (the paper's seqs/sec for BERT)."""
        if self.makespan <= 0:
            return 0.0
        return self.samples / self.makespan

    @property
    def goodput(self) -> float:
        """*Credited* samples per second of end-to-end wall-clock.  For
        a fault-injected run this excludes rolled-back work and counts
        checkpoint, detection, recovery, and stall time in the
        denominator (the MTTR sweep's quality axis); for a healthy run
        goodput equals throughput."""
        if self.faults is not None:
            return self.faults.goodput
        return self.throughput

    def activation_peaks(self) -> dict[str, float]:
        """Per-device peak activation-class residency, sorted by device
        name — the per-stage memory axis of the schedule-zoo figure."""
        return {
            name: self.devices[name].peak_activation
            for name in sorted(self.devices)
        }

    @property
    def swap_out_volume(self) -> float:
        """Global swap-out volume per iteration — Fig. 2(a)'s right axis."""
        return self.stats.swap_out_volume()

    @property
    def host_traffic(self) -> float:
        return self.stats.host_traffic()

    def bottleneck_link(self) -> tuple[str, float]:
        """The busiest link and its utilization over the makespan."""
        if not self.link_busy or self.makespan <= 0:
            return ("none", 0.0)
        name = max(self.link_busy, key=lambda k: self.link_busy[k])
        return name, min(1.0, self.link_busy[name] / self.makespan)

    def memory_sparkline(self, device: str, width: int = 80) -> str:
        """Render one device's memory usage over time as an ASCII
        sparkline (8 levels, scaled to device capacity)."""
        samples = self.memory_profile.get(device, [])
        if not samples:
            return "(no memory samples)"
        capacity = self.devices[device].capacity if device in self.devices else 0.0
        if capacity <= 0:
            # CPU/host pseudo-devices report zero capacity; scale to the
            # observed peak instead (or a flat line if nothing was used).
            capacity = max(used for _, used in samples)
        if capacity <= 0:
            capacity = 1.0
        glyphs = " .:-=+*#"
        if self.makespan <= 0:
            # A zero-length run (e.g. everything was free): the profile
            # is a single instant; render it as a flat line.
            buckets = [samples[-1][1]] * width
        else:
            buckets = [0.0] * width
            # Carry the last-seen level forward across buckets.
            level = 0.0
            idx = 0
            for i in range(width):
                t_hi = (i + 1) / width * self.makespan
                while idx < len(samples) and samples[idx][0] <= t_hi:
                    level = samples[idx][1]
                    idx += 1
                buckets[i] = level
        line = "".join(
            glyphs[min(len(glyphs) - 1, int(b / capacity * (len(glyphs) - 1)))]
            for b in buckets
        )
        return f"{device} mem |{line}| 0..{fmt_bytes(capacity)}"

    def summary(self) -> str:
        table = Table(
            ["device", "cap", "peak used", "peak demand", "pressure",
             "swap in", "swap out", "busy%"],
            title=(
                f"{self.label}: {fmt_time(self.makespan)}/iter, "
                f"{self.throughput:.3g} samples/s, "
                f"swap-out {self.swap_out_volume / GB:.2f} GB"
            ),
        )
        for name in sorted(self.devices):
            d = self.devices[name]
            busy = 100 * d.compute_busy / self.makespan if self.makespan else 0
            table.add_row(
                [
                    name,
                    fmt_bytes(d.capacity),
                    fmt_bytes(d.peak_used),
                    fmt_bytes(d.peak_demand),
                    d.swap_pressure,
                    fmt_bytes(d.swap_in_bytes),
                    fmt_bytes(d.swap_out_bytes),
                    f"{busy:.0f}",
                ]
            )
        return table.render()
