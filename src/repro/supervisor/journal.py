"""The write-ahead sweep journal: an append-only, fsync'd JSONL ledger.

Every supervised sweep can carry a journal (``--journal PATH``).  The
supervisor appends one record per event:

* ``header`` — written once, when the file is created: the schema
  version and the CLI argv that started the sweep (how ``python -m
  repro resume`` knows what to re-invoke);
* ``attempt`` — before each submission: the spec's key and its 1-based
  attempt number, so a resumed sweep inherits the quarantine budget
  already spent;
* ``outcome`` — a terminal result for a key: ``done`` (payload is the
  base64-pickled result), ``failed`` (payload is the deterministic
  :class:`~repro.errors.ReproError`), or ``poisoned`` (payload is the
  :class:`~repro.errors.PoisonedSpecError`).

Durability contract: each record is one JSON line, flushed and
``fsync``'d before the write returns.  A crash can therefore tear at
most the final line; :func:`load_journal` skips any unparseable line
(counting it in ``torn_records``) instead of failing, and
:class:`JournalWriter` newline-terminates a torn tail before appending,
so a journal survives any interleaving of crashes and resumes.

A journal is a *resume artifact for one interrupted invocation*, not a
cache: replayed payloads are served exactly as recorded, with no
staleness check beyond the key match.  (The run cache, with its
scheduler-version salt, is the staleness-aware tier.)
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, IO

from repro.errors import JournalError

#: Journal schema version; bump on incompatible record changes.
JOURNAL_SCHEMA = 1

#: Terminal outcome statuses.
DONE = "done"
FAILED = "failed"
POISONED = "poisoned"

_TERMINAL = frozenset({DONE, FAILED, POISONED})


def _encode_payload(payload: Any) -> str | None:
    """Base64-pickled ``payload``, or ``None`` when it cannot be
    serialized (the outcome is then recorded without a replayable
    payload and the spec re-executes on resume)."""
    try:
        return base64.b64encode(pickle.dumps(payload)).decode("ascii")
    except Exception:
        return None


@dataclass
class Outcome:
    """One terminal journal record, payload decoded lazily."""

    key: str
    status: str
    attempts: int
    payload_b64: str | None = None

    @property
    def replayable(self) -> bool:
        return self.payload_b64 is not None

    def payload(self) -> Any:
        """The recorded result object (a fresh deserialization per
        call — the same no-shared-mutable-state rule as a cache hit)."""
        if self.payload_b64 is None:
            raise JournalError(f"journal outcome for {self.key} has no payload")
        return pickle.loads(base64.b64decode(self.payload_b64))


@dataclass
class JournalState:
    """Everything :func:`load_journal` recovers from a journal file."""

    path: str
    command: list[str] | None = None
    outcomes: dict[str, Outcome] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    records: int = 0
    torn_records: int = 0

    def describe(self) -> str:
        torn = (
            f", {self.torn_records} torn record(s) skipped"
            if self.torn_records
            else ""
        )
        return (
            f"journal {self.path}: {len(self.outcomes)} outcome(s) over "
            f"{self.records} record(s){torn}"
        )


def load_journal(path: str | os.PathLike) -> JournalState:
    """Parse a journal, tolerating a torn tail.

    Unparseable lines are skipped and counted — a crash mid-``write``
    tears exactly one line, and a resume after that tear appends a
    newline first, so a torn fragment can sit mid-file after several
    crash/resume cycles.  For duplicate outcome records (a replayed key
    journaled again) the *first* wins: it is the record whose payload
    every earlier reader already served.
    """
    path = os.fspath(path)
    state = JournalState(path=path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return state
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc

    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            kind = record["type"]
        except (ValueError, KeyError, TypeError):
            state.torn_records += 1
            continue
        state.records += 1
        if kind == "header":
            command = record.get("command")
            if isinstance(command, list) and all(
                isinstance(part, str) for part in command
            ):
                state.command = command
        elif kind == "attempt":
            key, attempt = record.get("key"), record.get("attempt", 0)
            if isinstance(key, str) and isinstance(attempt, int):
                state.attempts[key] = max(state.attempts.get(key, 0), attempt)
        elif kind == "outcome":
            key, status = record.get("key"), record.get("status")
            if (
                isinstance(key, str)
                and status in _TERMINAL
                and key not in state.outcomes
            ):
                state.outcomes[key] = Outcome(
                    key=key,
                    status=status,
                    attempts=int(record.get("attempts", 0)),
                    payload_b64=record.get("payload"),
                )
        # Unknown record types from a newer writer are skipped silently.
    return state


class JournalWriter:
    """Appends fsync'd records to a journal file.

    Opening an existing journal never rewrites history: if the file
    ends in a torn fragment the writer first terminates it with a
    newline, then appends.  The header is written only when the file is
    empty (a resumed sweep keeps the original header and argv).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._fh: IO[bytes] = open(self.path, "ab")
        if existed:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    self._append(b"\n")
        self._fresh = not existed

    # -- plumbing --------------------------------------------------------

    def _append(self, data: bytes) -> None:
        self._fh.write(data)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _record(self, record: dict) -> None:
        self._append(json.dumps(record, sort_keys=True).encode() + b"\n")

    # -- records ---------------------------------------------------------

    def header(self, command: list[str] | None) -> None:
        """Write the header iff this writer created the journal."""
        if not self._fresh:
            return
        self._fresh = False
        self._record(
            {
                "type": "header",
                "schema": JOURNAL_SCHEMA,
                "command": list(command) if command is not None else None,
            }
        )

    def attempt(self, key: str, attempt: int) -> None:
        self._record({"type": "attempt", "key": key, "attempt": attempt})

    def outcome(
        self, key: str, status: str, attempts: int, payload: Any
    ) -> Outcome:
        """Record a terminal outcome; returns the in-memory record."""
        if status not in _TERMINAL:
            raise JournalError(f"not a terminal status: {status!r}")
        encoded = _encode_payload(payload)
        self._record(
            {
                "type": "outcome",
                "key": key,
                "status": status,
                "attempts": attempts,
                "payload": encoded,
            }
        )
        return Outcome(
            key=key, status=status, attempts=attempts, payload_b64=encoded
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
