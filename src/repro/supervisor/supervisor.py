"""Crash-safe sweep supervision: the durable execution layer.

:class:`Supervisor` runs a list of :class:`Task` (or
:class:`~repro.perf.runner.RunSpec`) to completion *no matter what the
workers do*:

* a worker that segfaults or is OOM-killed breaks the process pool —
  the supervisor respawns the pool and re-submits every in-flight task
  instead of raising ``BrokenProcessPool`` out of the sweep;
* a worker that hangs trips the per-task watchdog
  (:class:`~repro.supervisor.policy.RetryPolicy.timeout`); reclaiming a
  hung process requires recycling the pool, so the timed-out task is
  charged an attempt and every innocent in-flight task is re-submitted
  with its attempt refunded;
* transient failures retry under exponential backoff with
  deterministic jitter;
* a task that keeps failing is **quarantined** after
  ``max_attempts`` — its result slot carries a structured
  :class:`~repro.errors.PoisonedSpecError` and the rest of the sweep
  completes normally;
* deterministic domain failures (a returned or raised
  :class:`~repro.errors.ReproError` that is not a
  :class:`~repro.errors.WorkerError`) are *results*, never retried —
  exactly the contract of :class:`~repro.perf.runner.SweepRunner`.

With a journal (see :mod:`repro.supervisor.journal`) every terminal
outcome is fsync'd as it lands, so a crash or Ctrl-C loses at most the
attempts currently in flight; re-running the same invocation with the
same ``--journal`` replays completed tasks and executes only the
remainder, byte-identical to an uninterrupted run (payloads round-trip
through pickle exactly like run-cache hits).

Results always come back in submission order, regardless of
completion, retry, or replay order — the same determinism rule the
rest of :mod:`repro.perf` lives by.
"""

from __future__ import annotations

import contextlib
import os
import signal as _signal
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import (
    ConfigError,
    DrainedError,
    PoisonedSpecError,
    ReproError,
    WorkerError,
)
from repro.perf.cache import RunCache
from repro.supervisor.journal import (
    DONE,
    FAILED,
    POISONED,
    JournalState,
    JournalWriter,
    load_journal,
)
from repro.supervisor.policy import RetryPolicy
from repro.supervisor.report import SupervisorReport

_MISS = RunCache.MISS
_UNSET = object()


@dataclass
class Task:
    """One unit of supervised work.

    ``fn`` must be a module-level callable (it crosses the process
    boundary by reference) taking ``payload`` and returning the
    outcome; returning a :class:`~repro.errors.ReproError` marks a
    deterministic failure, raising anything else marks a retryable one.
    ``key`` is the task's durable identity — journal replay and cache
    lookups match on it, so it must be stable across processes.
    """

    key: str
    fn: Callable[[Any], Any]
    payload: Any
    label: str = ""
    cacheable: bool = False

    @property
    def display(self) -> str:
        return self.label or self.key


class Supervisor:
    """Durable, watchdogged, resumable executor for sweep-shaped work.

    Parameters
    ----------
    jobs:
        Worker processes (>= 1).  Even ``jobs=1`` runs tasks in a
        child process — crash isolation is the point; inline execution
        is only a fallback for platforms without multiprocessing.
    cache:
        Optional :class:`~repro.perf.cache.RunCache` consulted before
        execution and updated after, for tasks with ``cacheable=True``.
    policy:
        :class:`~repro.supervisor.policy.RetryPolicy`; default retries
        twice with backoff and no watchdog.
    journal:
        Path to the write-ahead journal.  If the file already holds
        outcomes they are replayed; new outcomes are appended.
    command:
        CLI argv recorded in a fresh journal's header so ``python -m
        repro resume`` can re-invoke the sweep.
    mp_context:
        Optional ``multiprocessing`` context for the pool (tests pin
        ``fork``).
    sleep, clock:
        Injectable time sources (tests stub them).
    on_outcome:
        Optional callback ``(index, outcome)`` fired after each task
        *executed this process* reaches a terminal outcome.
    inline:
        Execute tasks in this process instead of a worker pool.  No
        crash isolation and no watchdog, but no pool-spawn cost either
        — the job server's light-isolation mode.  Retry, backoff,
        quarantine, journaling, and drain all still apply.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | None = None,
        policy: RetryPolicy | None = None,
        journal: str | os.PathLike | None = None,
        command: list[str] | None = None,
        mp_context=None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_outcome: Callable[[int, Any], None] | None = None,
        inline: bool = False,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.policy = policy if policy is not None else RetryPolicy()
        self.journal_path = os.fspath(journal) if journal is not None else None
        self.command = list(command) if command is not None else None
        self.mp_context = mp_context
        self._sleep = sleep
        self._clock = clock
        self.on_outcome = on_outcome
        self.inline = inline
        self._drain = threading.Event()
        self._state: JournalState = (
            load_journal(self.journal_path)
            if self.journal_path is not None
            else JournalState(path="")
        )
        self._writer: JournalWriter | None = None
        self._counters = {
            "tasks": 0,
            "replayed": 0,
            "cache_hits": 0,
            "executed": 0,
            "attempts": 0,
            "retries": 0,
            "respawns": 0,
            "timeouts": 0,
            "failures": 0,
            "drained": 0,
        }
        self._quarantined: list[str] = []
        self._history: dict[str, tuple[str, ...]] = {}
        self._recovery_wall = 0.0

    # -- reporting -------------------------------------------------------

    @property
    def report(self) -> SupervisorReport:
        """Cumulative accounting across every ``run_*`` call so far."""
        return SupervisorReport(
            tasks=self._counters["tasks"],
            replayed=self._counters["replayed"],
            cache_hits=self._counters["cache_hits"],
            executed=self._counters["executed"],
            attempts=self._counters["attempts"],
            retries=self._counters["retries"],
            respawns=self._counters["respawns"],
            timeouts=self._counters["timeouts"],
            failures=self._counters["failures"],
            drained=self._counters["drained"],
            quarantined=tuple(self._quarantined),
            recovery_wall_sec=self._recovery_wall,
            journal_path=self.journal_path,
            history=dict(self._history),
        )

    def describe(self) -> str:
        journal = f"; journal={self.journal_path}" if self.journal_path else ""
        return (
            f"supervisor: jobs={self.jobs}; {self.policy.describe()}{journal}"
        )

    # -- graceful drain --------------------------------------------------

    def request_drain(self) -> None:
        """Ask the supervisor to wind down: stop submitting queued
        tasks, let in-flight attempts settle (their outcomes are still
        journaled/cached), and return with every unstarted slot holding
        a :class:`~repro.errors.DrainedError`.

        Thread-safe and idempotent — the job server calls this from its
        event loop while ``run_tasks`` blocks in a worker thread, and
        :func:`drain_on_signals` calls it from a signal handler.  Drained
        tasks are *not* journaled, so re-running with the same journal
        (or ``repro resume``) replays the settled outcomes and executes
        only what the drain skipped.
        """
        self._drain.set()

    @property
    def draining(self) -> bool:
        """True once :meth:`request_drain` has been called."""
        return self._drain.is_set()

    # -- entry points ----------------------------------------------------

    def run_specs(self, specs, return_exceptions: bool = False) -> list:
        """Supervised analogue of
        :meth:`repro.perf.runner.SweepRunner.run_all`: cache-first,
        results in spec order, domain errors in-slot or re-raised."""
        from repro.perf.runner import _execute_spec, spec_key

        tasks = []
        for i, spec in enumerate(specs):
            key = spec_key(spec)
            cacheable = key is not None
            if key is None:
                key = f"spec:{i}:{spec.label or 'unlabelled'}"
            tasks.append(
                Task(
                    key=key,
                    fn=_execute_spec,
                    payload=spec,
                    label=spec.label or f"spec {i}",
                    cacheable=cacheable,
                )
            )
        return self.run_tasks(tasks, return_exceptions=return_exceptions)

    def run_tasks(self, tasks: list[Task], return_exceptions: bool = False) -> list:
        """All tasks' outcomes, index-aligned with ``tasks``.

        Slots hold the task's return value, a deterministic
        :class:`~repro.errors.ReproError`, or a
        :class:`~repro.errors.PoisonedSpecError` for quarantined tasks.
        Without ``return_exceptions`` the first error (in task order)
        is raised after the sweep drains.
        """
        self._counters["tasks"] += len(tasks)
        if self.journal_path is not None and self._writer is None:
            self._writer = JournalWriter(self.journal_path)
            self._writer.header(self.command)

        results: list[Any] = [_UNSET] * len(tasks)
        attempts: dict[int, int] = {}
        pending: list[int] = []
        for i, task in enumerate(tasks):
            recorded = self._state.outcomes.get(task.key)
            if recorded is not None and recorded.replayable:
                try:
                    results[i] = recorded.payload()
                except Exception:
                    recorded = None  # undecodable payload: re-execute
                else:
                    self._counters["replayed"] += 1
                    continue
            if task.cacheable and self.cache is not None:
                hit = self.cache.get(task.key, _MISS)
                if hit is not _MISS:
                    results[i] = hit
                    self._counters["cache_hits"] += 1
                    self._journal_outcome(task, DONE, 0, hit)
                    continue
            # Journal attempt records survive crashes the outcome did
            # not: inherit the spent budget, but always leave at least
            # one fresh attempt (an interrupted attempt is not evidence
            # of poison — the interruption may have been the user's).
            attempts[i] = min(
                self._state.attempts.get(task.key, 0),
                self.policy.max_attempts - 1,
            )
            pending.append(i)

        if pending:
            self._counters["executed"] += len(pending)
            self._drive(tasks, pending, attempts, results)

        for i, value in enumerate(results):
            if value is _UNSET:
                # A drain stopped the sweep before this task started:
                # hand back a structured marker, journal nothing (the
                # task never ran), and let a resume execute it.
                results[i] = DrainedError(tasks[i].display)
                self._counters["drained"] += 1
                self._counters["executed"] -= 1
                if self.on_outcome is not None:
                    self.on_outcome(i, results[i])

        assert all(value is not _UNSET for value in results)
        if not return_exceptions:
            for value in results:
                if isinstance(value, ReproError):
                    raise value
        return results

    # -- journal ---------------------------------------------------------

    def _journal_outcome(
        self, task: Task, status: str, attempt_count: int, payload: Any
    ) -> None:
        if self._writer is None or task.key in self._state.outcomes:
            return
        self._state.outcomes[task.key] = self._writer.outcome(
            task.key, status, attempt_count, payload
        )

    # -- the drive loop --------------------------------------------------

    def _new_pool(self, workers: int) -> ProcessPoolExecutor | None:
        """A fresh pool, or ``None`` when this platform cannot run
        worker processes at all (inline fallback, no watchdog)."""
        try:
            return ProcessPoolExecutor(
                max_workers=workers, mp_context=self.mp_context
            )
        except (OSError, NotImplementedError, ImportError):
            return None

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even if its workers are hung: cancel what
        can be cancelled, then SIGTERM (and as a last resort SIGKILL)
        every worker process."""
        t0 = self._clock()
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass
        for proc in processes:
            try:
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=2.0)
            except Exception:
                pass
        self._recovery_wall += self._clock() - t0

    def _drive(
        self,
        tasks: list[Task],
        pending: list[int],
        attempts: dict[int, int],
        results: list[Any],
    ) -> None:
        workers = max(1, min(self.jobs, len(pending)))
        queue: deque[int] = deque(pending)
        ready_at: dict[int, float] = {}
        histories: dict[int, list[str]] = {i: [] for i in pending}
        inflight: dict[Any, int] = {}
        deadlines: dict[Any, float | None] = {}
        started: dict[Any, float] = {}
        watchdog = self.policy.timeout
        pool: ProcessPoolExecutor | None = None

        def settle(i: int, value: Any, t0: float | None) -> None:
            task = tasks[i]
            if isinstance(value, WorkerError):
                retryable(
                    i,
                    f"worker error: {value.exc_type}: {value.exc_message}",
                    t0,
                )
                return
            results[i] = value
            if isinstance(value, ReproError):
                self._counters["failures"] += 1
                self._journal_outcome(task, FAILED, attempts[i], value)
            else:
                if task.cacheable and self.cache is not None:
                    self.cache.put(task.key, value)
                self._journal_outcome(task, DONE, attempts[i], value)
            if self.on_outcome is not None:
                self.on_outcome(i, value)

        def retryable(i: int, reason: str, t0: float | None) -> None:
            now = self._clock()
            if t0 is not None:
                self._recovery_wall += max(0.0, now - t0)
            histories[i].append(f"attempt {attempts[i]}: {reason}")
            if attempts[i] >= self.policy.max_attempts:
                task = tasks[i]
                error = PoisonedSpecError(
                    task.display, attempts[i], histories[i]
                )
                results[i] = error
                self._quarantined.append(task.display)
                self._history[task.display] = tuple(histories[i])
                self._journal_outcome(task, POISONED, attempts[i], error)
                if self.on_outcome is not None:
                    self.on_outcome(i, error)
            else:
                self._counters["retries"] += 1
                ready_at[i] = now + self.policy.backoff_delay(
                    tasks[i].key, attempts[i]
                )
                queue.append(i)

        def recycle(culprit_reasons: dict[int, str], refund_victims: bool) -> None:
            """Tear down the pool, salvaging finished work and
            re-queueing everything else."""
            nonlocal pool
            for fut in list(inflight):
                i = inflight.pop(fut)
                deadlines.pop(fut, None)
                t0 = started.pop(fut, None)
                fut.cancel()
                finished = (
                    fut.done()
                    and not fut.cancelled()
                    and fut.exception() is None
                )
                if finished:
                    settle(i, fut.result(), t0)
                elif i in culprit_reasons:
                    retryable(i, culprit_reasons[i], t0)
                else:
                    # Collateral of the recycle, not this task's fault.
                    if refund_victims:
                        attempts[i] -= 1
                    if t0 is not None:
                        self._recovery_wall += max(0.0, self._clock() - t0)
                    ready_at[i] = 0.0
                    queue.append(i)
            if pool is not None:
                self._kill_pool(pool)
                pool = None

        def ensure_pool(i: int) -> None:
            """Create the pool if needed; on platforms without worker
            processes, put ``i`` back and fall to inline execution."""
            nonlocal pool
            if pool is None:
                pool = self._new_pool(workers)
                if pool is None:
                    queue.appendleft(i)
                    raise _InlineFallback()

        def submit(i: int) -> None:
            nonlocal pool
            ensure_pool(i)
            attempts[i] += 1
            self._counters["attempts"] += 1
            task = tasks[i]
            if self._writer is not None:
                self._writer.attempt(task.key, attempts[i])
            try:
                fut = pool.submit(task.fn, task.payload)
            except BrokenExecutor:
                # The pool died while idle (a worker crashed between
                # waits).  One respawn, then let a second break raise.
                self._counters["respawns"] += 1
                self._kill_pool(pool)
                pool = None
                ensure_pool(i)
                fut = pool.submit(task.fn, task.payload)
            now = self._clock()
            inflight[fut] = i
            started[fut] = now
            deadlines[fut] = now + watchdog if watchdog else None

        if self.inline:
            self._drive_inline(tasks, queue, ready_at, attempts, histories,
                               results, settle_retry=(settle, retryable))
            return

        try:
            while queue or inflight:
                if self._drain.is_set() and not inflight:
                    break  # unstarted tasks become DrainedError slots
                now = self._clock()
                if queue and len(inflight) < workers and not self._drain.is_set():
                    ready = [
                        i for i in queue if ready_at.get(i, 0.0) <= now
                    ]
                    for i in ready[: workers - len(inflight)]:
                        queue.remove(i)
                        submit(i)
                if not inflight:
                    if not queue:
                        break
                    soonest = min(ready_at.get(i, 0.0) for i in queue)
                    self._sleep(max(0.0, soonest - self._clock()))
                    continue

                wait_candidates = [
                    d - now for d in deadlines.values() if d is not None
                ]
                if queue and len(inflight) < workers and not self._drain.is_set():
                    wait_candidates += [
                        ready_at.get(i, 0.0) - now for i in queue
                    ]
                wait_timeout = (
                    max(0.0, min(wait_candidates)) if wait_candidates else None
                )
                done, _ = wait(
                    list(inflight),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )

                for fut in done:
                    if fut not in inflight:
                        continue  # consumed by an earlier recycle
                    exc = None if fut.cancelled() else fut.exception()
                    if isinstance(exc, BrokenExecutor):
                        self._counters["respawns"] += 1
                        reasons = {
                            i: "worker crashed (process pool broken)"
                            for i in inflight.values()
                        }
                        recycle(reasons, refund_victims=False)
                        break
                    i = inflight.pop(fut)
                    deadlines.pop(fut, None)
                    t0 = started.pop(fut, None)
                    if fut.cancelled():
                        retryable(i, "attempt cancelled", t0)
                    elif exc is None:
                        settle(i, fut.result(), t0)
                    elif isinstance(exc, ReproError):
                        # Deterministic domain failure raised (rather
                        # than returned) by an unhardened worker fn.
                        results[i] = exc
                        self._counters["failures"] += 1
                        self._journal_outcome(
                            tasks[i], FAILED, attempts[i], exc
                        )
                        if self.on_outcome is not None:
                            self.on_outcome(i, exc)
                    else:
                        retryable(
                            i,
                            f"worker raised {type(exc).__name__}: {exc}",
                            t0,
                        )

                if watchdog and inflight:
                    now = self._clock()
                    expired = {
                        inflight[fut]
                        for fut, dline in deadlines.items()
                        if dline is not None
                        and now >= dline
                        and fut in inflight
                        and not fut.done()
                    }
                    if expired:
                        self._counters["timeouts"] += len(expired)
                        self._counters["respawns"] += 1
                        reasons = {
                            i: (
                                f"timed out after {watchdog:g}s "
                                f"(watchdog killed the pool)"
                            )
                            for i in expired
                        }
                        recycle(reasons, refund_victims=True)
        except _InlineFallback:
            self._drive_inline(tasks, queue, ready_at, attempts, histories,
                               results, settle_retry=(settle, retryable))
        except BaseException:
            if pool is not None:
                self._kill_pool(pool)
                pool = None
            raise
        finally:
            if pool is not None:
                pool.shutdown()

    def _drive_inline(
        self, tasks, queue, ready_at, attempts, histories, results,
        settle_retry,
    ) -> None:
        """Sequential fallback when worker processes are unavailable.

        Retries and backoff still apply; the watchdog cannot (there is
        no process to kill), and a crash takes the whole run with it —
        the journal still bounds the loss to the current attempt.
        """
        settle, retryable = settle_retry
        while queue:
            if self._drain.is_set():
                break  # unstarted tasks become DrainedError slots
            i = queue.popleft()
            now = self._clock()
            not_before = ready_at.get(i, 0.0)
            if not_before > now:
                self._sleep(not_before - now)
            attempts[i] += 1
            self._counters["attempts"] += 1
            if self._writer is not None:
                self._writer.attempt(tasks[i].key, attempts[i])
            t0 = self._clock()
            try:
                value = tasks[i].fn(tasks[i].payload)
            except ReproError as exc:
                results[i] = exc
                self._counters["failures"] += 1
                self._journal_outcome(tasks[i], FAILED, attempts[i], exc)
                if self.on_outcome is not None:
                    self.on_outcome(i, exc)
            except Exception as exc:  # noqa: BLE001 — retry boundary
                retryable(i, f"raised {type(exc).__name__}: {exc}", t0)
            else:
                settle(i, value, t0)


class _InlineFallback(Exception):
    """Internal: signals that no worker pool can be created."""


@contextlib.contextmanager
def drain_on_signals(
    supervisor: Supervisor,
    signals: tuple[int, ...] = (_signal.SIGTERM, _signal.SIGINT),
) -> Iterator[None]:
    """Turn SIGTERM/SIGINT into a graceful supervisor drain.

    The first signal calls :meth:`Supervisor.request_drain` — queued
    specs stop being admitted, in-flight attempts settle and are
    journaled, and the sweep returns with the unstarted slots marked
    :class:`~repro.errors.DrainedError` — then restores that signal's
    previous handler, so a *second* signal behaves as before (for
    SIGINT: ``KeyboardInterrupt``), an escape hatch when an attempt is
    stuck.  Previous handlers are restored on exit either way.

    Signal handlers are main-thread-only; installing from any other
    thread is a silent no-op (the server drains by calling
    ``request_drain`` directly instead).
    """
    previous: dict[int, Any] = {}

    def on_signal(signum: int, frame: Any) -> None:
        supervisor.request_drain()
        old = previous.get(signum)
        if old is not None:
            try:
                _signal.signal(signum, old)
            except (ValueError, OSError):
                pass

    try:
        for sig in signals:
            previous[sig] = _signal.signal(sig, on_signal)
    except ValueError:
        # Not the main thread: leave whatever we did install in place
        # for the duration (it is restored below) and carry on.
        pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            try:
                if _signal.getsignal(sig) is on_signal:
                    _signal.signal(sig, old)
            except (ValueError, OSError):
                pass
