"""The supervisor's failure/recovery accounting.

A :class:`SupervisorReport` is attached to every supervised sweep
(``Supervisor.report``) and printed by the CLI after the sweep's own
output.  Every rendered line starts with ``supervisor:`` so callers
comparing sweep output for byte-identity (the resume determinism
check) can filter the report out with a prefix match — the report is
*about* the execution, not part of the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SupervisorReport:
    """Counters for one supervised sweep (cumulative across batches)."""

    #: Specs handed to the supervisor.
    tasks: int = 0
    #: Slots served by re-executing nothing: journal replays and run-
    #: cache hits.
    replayed: int = 0
    cache_hits: int = 0
    #: Specs that actually reached a worker at least once this process.
    executed: int = 0
    #: Submissions, including retries (``attempts - executed`` first
    #: submissions were free of any failure).
    attempts: int = 0
    #: Re-submissions after a retryable failure.
    retries: int = 0
    #: Process pools recycled (worker crash or watchdog kill).
    respawns: int = 0
    #: Watchdog expiries.
    timeouts: int = 0
    #: Deterministic domain failures (infeasible specs etc.) — these
    #: are results, not recovery events.
    failures: int = 0
    #: Tasks never started because the supervisor was drained
    #: (:meth:`~repro.supervisor.Supervisor.request_drain`); their
    #: slots carry :class:`~repro.errors.DrainedError` and they are not
    #: journaled, so a resume executes them.
    drained: int = 0
    #: Labels of quarantined specs, submission order.
    quarantined: tuple[str, ...] = ()
    #: Wall-clock seconds spent on attempts that had to be thrown away,
    #: plus pool teardown/respawn time.
    recovery_wall_sec: float = 0.0
    journal_path: str | None = None
    #: Per-spec failure history lines, for forensics.
    history: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no recovery machinery fired at all."""
        return (
            self.retries == 0
            and self.respawns == 0
            and self.timeouts == 0
            and not self.quarantined
        )

    def describe(self) -> str:
        return (
            f"supervisor: {self.tasks} task(s), {self.executed} executed, "
            f"{self.replayed} replayed, {self.cache_hits} cache hit(s), "
            f"{len(self.quarantined)} quarantined"
        )

    def render(self) -> str:
        lines = [
            (
                f"supervisor: {self.tasks} task(s): "
                f"{self.executed} executed, "
                f"{self.replayed} replayed from journal, "
                f"{self.cache_hits} cache hit(s), "
                f"{self.failures} failed, "
                f"{len(self.quarantined)} quarantined"
            ),
            (
                f"supervisor: {self.attempts} attempt(s), "
                f"{self.retries} retrie(s), "
                f"{self.respawns} pool respawn(s), "
                f"{self.timeouts} timeout(s); "
                f"{self.recovery_wall_sec:.2f}s lost to recovery"
            ),
        ]
        if self.drained:
            lines.append(
                f"supervisor: {self.drained} task(s) drained (not "
                f"started; a resume with the same journal executes them)"
            )
        for label in self.quarantined:
            history = self.history.get(label, ())
            tail = f" ({history[-1]})" if history else ""
            lines.append(f"supervisor: quarantined: {label}{tail}")
        if self.journal_path is not None:
            lines.append(f"supervisor: journal: {self.journal_path}")
        return "\n".join(lines)
