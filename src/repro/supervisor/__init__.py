"""Crash-safe sweep supervision (``repro.supervisor``).

The reproduction's host-side hot path — ``SweepRunner`` fanning
hundreds of simulations over a process pool — assumed a well-behaved
world: one segfaulted worker aborted the whole sweep with
``BrokenProcessPool``, one hung spec stalled it forever, and a Ctrl-C
threw away every uncached result.  This package is the durable
execution layer that removes those assumptions, the same
checkpoint/restart discipline the simulated cluster already practices
(``repro.faults``) applied to the harness itself:

* :class:`Supervisor` — watchdog timeouts, retry with exponential
  backoff + deterministic jitter, pool respawn on worker death, and
  poison-spec quarantine (:class:`~repro.errors.PoisonedSpecError`);
* :mod:`~repro.supervisor.journal` — the append-only, fsync'd JSONL
  write-ahead ledger behind ``--journal``, torn-tail tolerant;
* :class:`~repro.supervisor.policy.RetryPolicy` — the knobs;
* :class:`~repro.supervisor.report.SupervisorReport` — what happened,
  attached to every supervised sweep and printed by the CLI.

Quickstart::

    from repro.supervisor import Supervisor, RetryPolicy

    sup = Supervisor(jobs=4, journal="sweep.jsonl",
                     policy=RetryPolicy(max_attempts=3, timeout=120.0))
    results = sup.run_specs(specs, return_exceptions=True)
    print(sup.report.render())

Re-running the same sweep with the same journal replays completed
specs and executes only the remainder — byte-identical to an
uninterrupted run.  ``python -m repro resume --journal PATH`` does the
same from the command line.
"""

from repro.supervisor.journal import (
    DONE,
    FAILED,
    POISONED,
    JournalState,
    JournalWriter,
    Outcome,
    load_journal,
)
from repro.supervisor.policy import RetryPolicy
from repro.supervisor.report import SupervisorReport
from repro.supervisor.supervisor import Supervisor, Task, drain_on_signals

__all__ = [
    "Supervisor",
    "Task",
    "drain_on_signals",
    "RetryPolicy",
    "SupervisorReport",
    "JournalWriter",
    "JournalState",
    "Outcome",
    "load_journal",
    "DONE",
    "FAILED",
    "POISONED",
]
