"""Retry and watchdog policy for supervised sweeps.

One :class:`RetryPolicy` answers the three questions the supervisor
asks about every spec:

* how long may one attempt run before the watchdog declares it hung
  (``timeout``, wall-clock seconds, ``None`` = no limit);
* how many attempts does a spec get before it is quarantined as poison
  (``max_attempts``);
* how long to wait before re-submitting a failed attempt — exponential
  backoff (``backoff_base * backoff_factor ** (attempt - 1)``, capped
  at ``backoff_max``) plus *deterministic* jitter.

The jitter is a pure function of ``(key, attempt)`` — a hash, not a
random draw — so a resumed sweep schedules retries identically to an
uninterrupted one and tests never race a RNG.  Jitter still does its
usual job (de-synchronizing retries of *different* specs) because
different keys hash to different fractions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries, times out, and quarantines specs."""

    #: Attempts per spec before quarantine (1 = never retry).
    max_attempts: int = 3
    #: Per-attempt wall-clock budget in seconds; ``None`` disables the
    #: watchdog.  Reclaiming a hung worker requires recycling the whole
    #: pool, so a timeout costs every in-flight spec a resubmission.
    timeout: float | None = None
    #: First retry delay in seconds.
    backoff_base: float = 0.1
    #: Multiplier applied per subsequent attempt.
    backoff_factor: float = 2.0
    #: Ceiling on the un-jittered delay.
    backoff_max: float = 5.0
    #: Jitter fraction: the delay is scaled by up to ``1 + jitter``.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-submitting ``key``'s next attempt,
        given that ``attempt`` (1-based) just failed."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).hexdigest()
        fraction = int(digest[:8], 16) / 0xFFFFFFFF
        return base * (1.0 + self.jitter * fraction)

    def describe(self) -> str:
        watchdog = (
            f"{self.timeout:g}s watchdog" if self.timeout else "no watchdog"
        )
        return (
            f"retry policy: {self.max_attempts} attempt(s), {watchdog}, "
            f"backoff {self.backoff_base:g}s x{self.backoff_factor:g} "
            f"(cap {self.backoff_max:g}s, jitter {self.jitter:g})"
        )
