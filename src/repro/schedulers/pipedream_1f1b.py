"""PipeDream-style 1F1B pipeline schedule (PAPERS.md: "PipeDream: Fast
and Efficient Pipeline Parallel DNN Training").

The model is split into compute-balanced contiguous stages, one per
GPU.  Each stage runs the canonical 1F1B steady state: a warm-up of
``num_stages - stage - 1`` forwards, then strictly alternating
forward/backward pairs, then a cool-down of the remaining backwards.
The warm-up depth caps the number of in-flight microbatches per stage
at its pipeline depth (``num_stages - stage``), which is the schedule's
whole point — activation memory stays bounded by depth instead of by
the microbatch count, unlike GPipe.

This differs from :class:`~repro.schedulers.pp_baseline.PipelineBaseline`
in two ways: a one-shallower warm-up (forward-then-backward steady
pairs rather than backward-then-forward), and just-in-time per-stage
weight updates as soon as a stage's last backward retires — PipeDream
stages update independently rather than waiting for a synchronous
tail.  Memory is managed by the baseline per-GPU virtualization policy,
making this a faithful "contemporary system + swapping" comparison
point for the Harmony schedules.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.memory.policy import MemoryPolicy
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig, Scheduler
from repro.sim.plan import Plan
from repro.tasks.decomposer import Decomposer, IterationTasks
from repro.tasks.packing import partition_layers_balanced


class PipeDream1F1B(Scheduler):
    name = "pipedream-1f1b"

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        batch: BatchConfig,
        num_stages: int | None = None,
        policy: MemoryPolicy | None = None,
    ):
        super().__init__(model, topology, batch)
        self.num_stages = num_stages if num_stages is not None else len(self.gpus)
        if self.num_stages > len(self.gpus):
            raise ConfigError(
                f"{self.num_stages} stages but only {len(self.gpus)} GPUs"
            )
        self.policy = policy if policy is not None else MemoryPolicy.baseline()

    def in_flight_bound(self, stage: int) -> int:
        """The 1F1B invariant: stage ``s`` never holds more than
        ``num_stages - s`` microbatches' stashes at once (and never more
        than there are microbatches)."""
        return min(self.num_stages - stage, self.batch.num_microbatches)

    def plan(self) -> Plan:
        stages = partition_layers_balanced(self.model, self.num_stages)
        itasks = Decomposer(
            self.model,
            microbatch_size=self.batch.microbatch_size,
            num_microbatches=self.batch.num_microbatches,
            num_replicas=1,
            packs_fwd=stages,
            packs_bwd=stages,
            sync_gradients=False,
        ).decompose()
        device_order: dict[str, list[int]] = {}
        for s in range(self.num_stages):
            device = self.gpus[s]
            for mb in range(self.batch.num_microbatches):
                itasks.fwd[(0, s, mb)].place(device)
                itasks.bwd[(0, s, mb)].place(device)
            for pu in itasks.upd_packs_within(s):
                itasks.upd[(0, pu)].place(device)
            device_order[device] = self._stage_order(itasks, s)
        return self._finish_plan(
            itasks,
            device_order,
            {0: self.gpus[0]},
            self.policy,
            notes={
                "stages": stages,
                "schedule": "pipedream-1f1b",
                "in_flight_bound": {
                    s: self.in_flight_bound(s) for s in range(self.num_stages)
                },
            },
        )

    def _stage_order(self, itasks: IterationTasks, stage: int) -> list[int]:
        m = self.batch.num_microbatches
        warmup = min(self.num_stages - stage - 1, m)
        order = [itasks.fwd[(0, stage, mb)].tid for mb in range(warmup)]
        # Steady state: inject one more forward, retire one backward.
        for k in range(m - warmup):
            order.append(itasks.fwd[(0, stage, warmup + k)].tid)
            order.append(itasks.bwd[(0, stage, k)].tid)
        # Cool-down: drain the warm-up's outstanding backwards.
        order += [itasks.bwd[(0, stage, mb)].tid for mb in range(m - warmup, m)]
        # PipeDream stages update just-in-time, independently of one
        # another — no synchronous tail across the pipeline.
        order += [
            itasks.upd[(0, pu)].tid
            for pu in reversed(itasks.upd_packs_within(stage))
        ]
        return order
