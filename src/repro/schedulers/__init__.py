"""Schedulers: baseline and Harmony training schedules.

Every scheduler turns a model + topology + batching configuration into
a :class:`~repro.sim.Plan`.  The baselines reproduce how today's
frameworks behave with per-GPU memory virtualization bolted on
(the paper's Fig. 2 measurements); the Harmony schedulers implement the
paper's four optimizations — input-batch grouping, just-in-time
update scheduling, p2p transfers, and task packing — as individually
toggleable options, so the ablation benchmarks can attribute the win.
"""

from repro.schedulers.base import Scheduler, BatchConfig
from repro.schedulers.single import SingleGpuScheduler
from repro.schedulers.dp_baseline import DataParallelBaseline
from repro.schedulers.pp_baseline import PipelineBaseline
from repro.schedulers.harmony_dp import HarmonyDP
from repro.schedulers.harmony_pp import HarmonyPP
from repro.schedulers.harmony_tp import HarmonyTP
from repro.schedulers.options import HarmonyOptions


def build_scheduler(
    scheme: str,
    model,
    topology,
    batch: BatchConfig,
    options: HarmonyOptions | None = None,
) -> Scheduler:
    """Construct the scheduler for a scheme name (the single registry
    the session, CLI, and differential cross-checker all share).

    Baseline schemes honor only the ``pack_size`` option; Harmony
    schemes take the full :class:`HarmonyOptions`.
    """
    from repro.errors import ConfigError

    options = options if options is not None else HarmonyOptions()
    if scheme == "single":
        return SingleGpuScheduler(model, topology, batch, pack_size=options.pack_size)
    if scheme == "dp-baseline":
        return DataParallelBaseline(
            model, topology, batch, pack_size=options.pack_size
        )
    if scheme == "pp-baseline":
        return PipelineBaseline(model, topology, batch)
    if scheme == "harmony-dp":
        return HarmonyDP(model, topology, batch, options=options)
    if scheme == "harmony-pp":
        return HarmonyPP(model, topology, batch, options=options)
    if scheme == "harmony-tp":
        return HarmonyTP(model, topology, batch, options=options)
    raise ConfigError(f"unknown scheme {scheme!r}")


__all__ = [
    "Scheduler",
    "BatchConfig",
    "SingleGpuScheduler",
    "DataParallelBaseline",
    "PipelineBaseline",
    "HarmonyDP",
    "HarmonyPP",
    "HarmonyTP",
    "HarmonyOptions",
    "build_scheduler",
]
