"""Schedulers: baseline, Harmony, and contemporary training schedules.

Every scheduler turns a model + topology + batching configuration into
a :class:`~repro.sim.Plan`.  The baselines reproduce how today's
frameworks behave with per-GPU memory virtualization bolted on
(the paper's Fig. 2 measurements); the Harmony schedulers implement the
paper's four optimizations — input-batch grouping, just-in-time
update scheduling, p2p transfers, and task packing — as individually
toggleable options, so the ablation benchmarks can attribute the win.
The zoo also carries the paper's contemporaries as comparison points:
PipeDream's 1F1B schedule and DAPPLE's early-backward hybrid schedule.

The registry below is the single source of truth for scheme names:
the session, CLI, differential cross-checker, golden traces, and the
property/steady/fault test suites all enumerate it rather than keeping
their own lists, so a newly registered scheduler is exercised by the
whole stack for free.
"""

from typing import Callable

from repro.schedulers.base import Scheduler, BatchConfig
from repro.schedulers.single import SingleGpuScheduler
from repro.schedulers.dp_baseline import DataParallelBaseline
from repro.schedulers.pp_baseline import PipelineBaseline
from repro.schedulers.harmony_dp import HarmonyDP
from repro.schedulers.harmony_pp import HarmonyPP
from repro.schedulers.harmony_tp import HarmonyTP
from repro.schedulers.pipedream_1f1b import PipeDream1F1B
from repro.schedulers.dapple import DappleScheduler
from repro.schedulers.options import HarmonyOptions

#: scheme name -> factory(model, topology, batch, options).  Baseline
#: schemes honor only the ``pack_size`` option; Harmony schemes take the
#: full :class:`HarmonyOptions`; the contemporary pipeline schedules
#: (pipedream-1f1b, dapple) partition whole layers into stages and take
#: no options.  Insertion order is the canonical presentation order
#: (``compare`` tables, differential reports, golden-trace file sets).
SCHEDULER_REGISTRY: dict[str, Callable[..., Scheduler]] = {
    "single": lambda model, topology, batch, options: SingleGpuScheduler(
        model, topology, batch, pack_size=options.pack_size
    ),
    "dp-baseline": lambda model, topology, batch, options: DataParallelBaseline(
        model, topology, batch, pack_size=options.pack_size
    ),
    "pp-baseline": lambda model, topology, batch, options: PipelineBaseline(
        model, topology, batch
    ),
    "harmony-dp": lambda model, topology, batch, options: HarmonyDP(
        model, topology, batch, options=options
    ),
    "harmony-pp": lambda model, topology, batch, options: HarmonyPP(
        model, topology, batch, options=options
    ),
    "harmony-tp": lambda model, topology, batch, options: HarmonyTP(
        model, topology, batch, options=options
    ),
    "pipedream-1f1b": lambda model, topology, batch, options: PipeDream1F1B(
        model, topology, batch
    ),
    "dapple": lambda model, topology, batch, options: DappleScheduler(
        model, topology, batch
    ),
}


def scheme_names() -> tuple[str, ...]:
    """Every registered scheme name, in canonical presentation order."""
    return tuple(SCHEDULER_REGISTRY)


def build_scheduler(
    scheme: str,
    model,
    topology,
    batch: BatchConfig,
    options: HarmonyOptions | None = None,
) -> Scheduler:
    """Construct the scheduler for a scheme name (the single registry
    the session, CLI, and differential cross-checker all share)."""
    from repro.errors import ConfigError

    options = options if options is not None else HarmonyOptions()
    factory = SCHEDULER_REGISTRY.get(scheme)
    if factory is None:
        raise ConfigError(
            f"unknown scheme {scheme!r}; valid schemes: "
            + ", ".join(scheme_names())
        )
    return factory(model, topology, batch, options)


__all__ = [
    "Scheduler",
    "BatchConfig",
    "SingleGpuScheduler",
    "DataParallelBaseline",
    "PipelineBaseline",
    "HarmonyDP",
    "HarmonyPP",
    "HarmonyTP",
    "PipeDream1F1B",
    "DappleScheduler",
    "HarmonyOptions",
    "SCHEDULER_REGISTRY",
    "scheme_names",
    "build_scheduler",
]
