"""Schedulers: baseline and Harmony training schedules.

Every scheduler turns a model + topology + batching configuration into
a :class:`~repro.sim.Plan`.  The baselines reproduce how today's
frameworks behave with per-GPU memory virtualization bolted on
(the paper's Fig. 2 measurements); the Harmony schedulers implement the
paper's four optimizations — input-batch grouping, just-in-time
update scheduling, p2p transfers, and task packing — as individually
toggleable options, so the ablation benchmarks can attribute the win.
"""

from repro.schedulers.base import Scheduler, BatchConfig
from repro.schedulers.single import SingleGpuScheduler
from repro.schedulers.dp_baseline import DataParallelBaseline
from repro.schedulers.pp_baseline import PipelineBaseline
from repro.schedulers.harmony_dp import HarmonyDP
from repro.schedulers.harmony_pp import HarmonyPP
from repro.schedulers.harmony_tp import HarmonyTP
from repro.schedulers.options import HarmonyOptions

__all__ = [
    "Scheduler",
    "BatchConfig",
    "SingleGpuScheduler",
    "DataParallelBaseline",
    "PipelineBaseline",
    "HarmonyDP",
    "HarmonyPP",
    "HarmonyTP",
    "HarmonyOptions",
]
