"""Harmony-PP: virtualized pipeline parallelism (paper Fig. 4).

Layer packs are late-bound round-robin across GPUs (layer 1 on GPU 1,
layer 2 on GPU 2, layer 3 on GPU 1, ... in the Fig. 4 example), and
every pack's forward/backward runs across the whole microbatch group
back-to-back before the pipeline moves on.  Boundary activations and
gradients travel between GPUs over p2p links; each pack's update runs
just-in-time after its backward group.

Compared to classic pipeline stages this both (a) swaps each weight
tensor at most three times per iteration *globally* — ``3|W|`` vs the
baseline's ``(4m+2)N|W|`` — and (b) spreads the stash load that makes
classic pipelines memory-imbalanced, because consecutive layers live
on different GPUs (interleaved placement balances what 1F1B
concentrates on the head stage).
"""

from __future__ import annotations

from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig, Scheduler
from repro.schedulers.options import HarmonyOptions
from repro.sim.plan import Plan
from repro.tasks.decomposer import Decomposer, IterationTasks
from repro.tasks.packing import pack_layers


class HarmonyPP(Scheduler):
    name = "harmony-pp"

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        batch: BatchConfig,
        options: HarmonyOptions | None = None,
    ):
        super().__init__(model, topology, batch)
        self.options = options if options is not None else HarmonyOptions()

    def plan(self) -> Plan:
        opts = self.options
        n = len(self.model)
        packs = pack_layers(n, opts.pack_size)
        itasks = Decomposer(
            self.model,
            microbatch_size=self.batch.microbatch_size,
            num_microbatches=self.batch.num_microbatches,
            num_replicas=1,
            packs_fwd=packs,
            packs_bwd=packs,
            sync_gradients=False,
            recompute=opts.recompute,
        ).decompose()
        num_packs = len(packs)
        pack_device = {
            p: self.gpus[p % len(self.gpus)] for p in range(num_packs)
        }
        m = self.batch.num_microbatches
        for p in range(num_packs):
            device = pack_device[p]
            for mb in range(m):
                itasks.fwd[(0, p, mb)].place(device)
                itasks.bwd[(0, p, mb)].place(device)
            upd_device = (
                self.topology.host_of(device).name if opts.cpu_optimizer else device
            )
            for pu in itasks.upd_packs_within(p):
                itasks.upd[(0, pu)].place(upd_device)
        device_order = {
            dev: self._device_order(itasks, pack_device, dev)
            for dev in self.gpus[: min(len(self.gpus), num_packs)]
        }
        if opts.cpu_optimizer:
            self._append_host_orders(itasks, pack_device, device_order)
        return self._finish_plan(
            itasks,
            device_order,
            {0: self.gpus[0]},
            opts.memory_policy(),
            notes={"pack_device": pack_device},
        )

    def _append_host_orders(
        self,
        itasks: IterationTasks,
        pack_device: dict[int, str],
        device_order: dict[str, list[int]],
    ) -> None:
        """CPU-offloaded optimizer: each host runs the updates of its
        server's packs, in descending pack order (the order in which
        backward groups — and therefore the updates' dependencies —
        complete)."""
        for p in sorted(pack_device, reverse=True):
            host = self.topology.host_of(pack_device[p]).name
            for pu in reversed(itasks.upd_packs_within(p)):
                device_order.setdefault(host, []).append(
                    itasks.upd[(0, pu)].tid
                )

    def _device_order(
        self,
        itasks: IterationTasks,
        pack_device: dict[int, str],
        device: str,
    ) -> list[int]:
        opts = self.options
        m = self.batch.num_microbatches
        my_packs = [p for p, d in pack_device.items() if d == device]
        order: list[int] = []
        local_updates = not opts.cpu_optimizer
        if opts.grouping:
            for p in my_packs:
                order += [itasks.fwd[(0, p, mb)].tid for mb in range(m)]
            for p in reversed(my_packs):
                order += [itasks.bwd[(0, p, mb)].tid for mb in range(m)]
                if opts.jit_update and local_updates:
                    order += self._jit_updates(itasks, p)
        else:
            for mb in range(m):
                order += [itasks.fwd[(0, p, mb)].tid for p in my_packs]
            for mb in range(m):
                for p in reversed(my_packs):
                    order.append(itasks.bwd[(0, p, mb)].tid)
                    if opts.jit_update and local_updates and mb == m - 1:
                        order += self._jit_updates(itasks, p)
        if not opts.jit_update and local_updates:
            for p in my_packs:
                order += [itasks.upd[(0, pu)].tid for pu in itasks.upd_packs_within(p)]
        return order

    @staticmethod
    def _jit_updates(itasks: IterationTasks, bwd_pack: int) -> list[int]:
        return [
            itasks.upd[(0, pu)].tid
            for pu in reversed(itasks.upd_packs_within(bwd_pack))
        ]
