"""Pipeline-parallel training with per-GPU memory virtualization.

The baseline of the paper's Fig. 2(c): the model is split into
compute-balanced contiguous stages, one per GPU, run under a 1F1B
(PipeDream-style) or GPipe schedule.  Stages are compute-balanced but
*memory*-imbalanced — the head stage must hold stashed activations for
every in-flight microbatch while the tail holds one — so per-GPU
virtualization swaps heavily at the head and not at all at the tail,
creating the bottleneck stage the paper highlights.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.memory.policy import MemoryPolicy
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig, Scheduler
from repro.sim.plan import Plan
from repro.tasks.decomposer import Decomposer, IterationTasks
from repro.tasks.packing import partition_layers_balanced

_SCHEDULES = ("1f1b", "gpipe")


class PipelineBaseline(Scheduler):
    name = "pp-baseline"

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        batch: BatchConfig,
        num_stages: int | None = None,
        schedule: str = "1f1b",
        policy: MemoryPolicy | None = None,
        balance: str = "compute",
    ):
        super().__init__(model, topology, batch)
        self.num_stages = num_stages if num_stages is not None else len(self.gpus)
        if self.num_stages > len(self.gpus):
            raise ConfigError(
                f"{self.num_stages} stages but only {len(self.gpus)} GPUs"
            )
        if schedule not in _SCHEDULES:
            raise ConfigError(f"unknown pipeline schedule {schedule!r}")
        if balance not in ("compute", "memory"):
            raise ConfigError(f"unknown balance objective {balance!r}")
        self.schedule = schedule
        #: What the stage partition equalizes.  ``compute`` is what real
        #: pipeline systems do (and what creates the Fig. 2(c) memory
        #: imbalance); ``memory`` equalizes each stage's share of the
        #: *weighted* footprint — stash scaled by the stage's number of
        #: in-flight microbatches under 1F1B — a partial remediation
        #: that trades pipeline compute balance for memory balance.
        self.balance = balance
        self.policy = policy if policy is not None else MemoryPolicy.baseline()
        self.name = f"pp-baseline-{schedule}"

    def _stage_partition(self) -> list[tuple[int, ...]]:
        if self.balance == "compute":
            return partition_layers_balanced(self.model, self.num_stages)
        # Memory balance: approximate each layer's 1F1B-weighted
        # footprint.  Earlier layers carry more in-flight stashes (up to
        # num_stages), so weight stash by a depth factor that decays
        # linearly front to back.
        n = len(self.model)
        mb = self.batch.microbatch_size

        def footprint(i: int) -> float:
            layer = self.model.layer(i)
            depth_factor = self.num_stages - (i / max(n - 1, 1)) * (
                self.num_stages - 1
            )
            state = layer.param_bytes + layer.grad_bytes + layer.optimizer_bytes
            return state + depth_factor * layer.stash_bytes(mb)

        return partition_layers_balanced(self.model, self.num_stages, load=footprint)

    def plan(self) -> Plan:
        stages = self._stage_partition()
        itasks = Decomposer(
            self.model,
            microbatch_size=self.batch.microbatch_size,
            num_microbatches=self.batch.num_microbatches,
            num_replicas=1,
            packs_fwd=stages,
            packs_bwd=stages,
            sync_gradients=False,
        ).decompose()
        device_order: dict[str, list[int]] = {}
        for s in range(self.num_stages):
            device = self.gpus[s]
            for mb in range(self.batch.num_microbatches):
                itasks.fwd[(0, s, mb)].place(device)
                itasks.bwd[(0, s, mb)].place(device)
            for pu in itasks.upd_packs_within(s):
                itasks.upd[(0, pu)].place(device)
            device_order[device] = self._stage_order(itasks, s)
        replica_device = {0: self.gpus[0]}
        return self._finish_plan(
            itasks,
            device_order,
            replica_device,
            self.policy,
            notes={"stages": stages, "schedule": self.schedule},
        )

    def _stage_order(self, itasks: IterationTasks, stage: int) -> list[int]:
        m = self.batch.num_microbatches
        order: list[int] = []
        if self.schedule == "gpipe":
            # All forwards, then all backwards: every stage holds every
            # microbatch's stash at the fwd/bwd boundary.
            order += [itasks.fwd[(0, stage, mb)].tid for mb in range(m)]
            order += [itasks.bwd[(0, stage, mb)].tid for mb in range(m)]
        else:  # 1f1b
            warmup = min(self.num_stages - stage, m)
            order += [itasks.fwd[(0, stage, mb)].tid for mb in range(warmup)]
            for k in range(m - warmup):
                order.append(itasks.bwd[(0, stage, k)].tid)
                order.append(itasks.fwd[(0, stage, warmup + k)].tid)
            order += [itasks.bwd[(0, stage, mb)].tid for mb in range(m - warmup, m)]
        order += [itasks.upd[(0, pu)].tid for pu in itasks.upd_packs_within(stage)]
        return order
