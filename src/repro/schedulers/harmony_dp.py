"""Harmony-DP: data-parallel training, Harmony-style.

Same replica placement as the DP baseline, but the schedule applies
the paper's optimizations:

* **input-batch grouping** — each layer pack's forward (and backward)
  runs across all ``m`` microbatches back-to-back, so its weights are
  swapped in once per pass instead of once per microbatch;
* **just-in-time update** — each pack's all-reduce and weight update
  run immediately after its backward group, while W and dW are still
  resident;
* **coherent memory** — dirty-bit tracking (clean weights drop for
  free) and p2p-capable swaps.

With these, the per-iteration weight swap volume drops from the
baseline's ``(4m+2)N|W|`` to ``3N|W|`` (paper §3, Fig. 5(b) vs 5(c)).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig, Scheduler
from repro.schedulers.options import HarmonyOptions
from repro.sim.plan import Plan
from repro.tasks.decomposer import Decomposer, IterationTasks
from repro.tasks.packing import pack_layers


class HarmonyDP(Scheduler):
    name = "harmony-dp"

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        batch: BatchConfig,
        num_replicas: int | None = None,
        options: HarmonyOptions | None = None,
    ):
        super().__init__(model, topology, batch)
        self.num_replicas = num_replicas if num_replicas is not None else len(self.gpus)
        if self.num_replicas > len(self.gpus):
            raise ConfigError(
                f"{self.num_replicas} replicas but only {len(self.gpus)} GPUs"
            )
        self.options = options if options is not None else HarmonyOptions()

    def plan(self) -> Plan:
        opts = self.options
        n = len(self.model)
        itasks = Decomposer(
            self.model,
            microbatch_size=self.batch.microbatch_size,
            num_microbatches=self.batch.num_microbatches,
            num_replicas=self.num_replicas,
            packs_fwd=pack_layers(n, opts.pack_size),
            packs_bwd=pack_layers(n, opts.bwd_pack_size),
            recompute=opts.recompute,
            zero_optimizer=opts.zero_optimizer,
        ).decompose()
        replica_device = {r: self.gpus[r] for r in range(self.num_replicas)}
        device_order: dict[str, list[int]] = {}
        for r, device in replica_device.items():
            self._place_replica_tasks(itasks, r, device)
            if opts.cpu_optimizer:
                host = self.topology.host_of(device).name
                for pu in range(len(itasks.packs_upd)):
                    itasks.upd[(r, pu)].place(host)
            device_order[device] = self._replica_order(itasks, r)
        if opts.cpu_optimizer:
            self._append_host_orders(itasks, replica_device, device_order)
        return self._finish_plan(
            itasks, device_order, replica_device, opts.memory_policy()
        )

    def _append_host_orders(
        self,
        itasks: IterationTasks,
        replica_device: dict[int, str],
        device_order: dict[str, list[int]],
    ) -> None:
        """CPU-offloaded optimizer: each host updates its replicas'
        weights, in descending pack order (matching the order the
        backward groups — and hence the all-reduces — complete)."""
        for pu in reversed(range(len(itasks.packs_upd))):
            for r, device in replica_device.items():
                host = self.topology.host_of(device).name
                device_order.setdefault(host, []).append(
                    itasks.upd[(r, pu)].tid
                )

    def _replica_order(self, itasks: IterationTasks, r: int) -> list[int]:
        opts = self.options
        m = self.batch.num_microbatches
        fwd_packs = range(len(itasks.packs_fwd))
        bwd_packs = range(len(itasks.packs_bwd))
        order: list[int] = []
        # Forward pass.
        if opts.grouping:
            for p in fwd_packs:
                order += [itasks.fwd[(r, p, mb)].tid for mb in range(m)]
        else:
            for mb in range(m):
                order += [itasks.fwd[(r, p, mb)].tid for p in fwd_packs]
        # Backward pass (+ jit sync/update).
        if opts.grouping:
            for p in reversed(bwd_packs):
                order += [itasks.bwd[(r, p, mb)].tid for mb in range(m)]
                if opts.jit_update:
                    order += self._sync_and_update(itasks, r, p)
        else:
            for mb in range(m):
                for p in reversed(bwd_packs):
                    order.append(itasks.bwd[(r, p, mb)].tid)
                    if opts.jit_update and mb == m - 1:
                        order += self._sync_and_update(itasks, r, p)
        if not opts.jit_update:
            upd_packs = range(len(itasks.packs_upd))
            for pu in upd_packs:
                if pu in itasks.allreduce:
                    order.append(itasks.allreduce[pu].tid)
            if not opts.cpu_optimizer:
                for pu in upd_packs:
                    order.append(itasks.upd[(r, pu)].tid)
            for pu in upd_packs:
                if pu in itasks.weight_gather:
                    order.append(itasks.weight_gather[pu].tid)
        return order

    def _sync_and_update(self, itasks: IterationTasks, r: int, p: int) -> list[int]:
        """JIT tail of one backward pack: sync + update for every
        update pack whose layers that backward pack covers, in reverse
        layer order (matching the backward sweep's direction).  With a
        CPU-offloaded optimizer the updates run on the host instead and
        only the gradient sync stays here."""
        order = []
        for pu in reversed(itasks.upd_packs_within(p)):
            if pu in itasks.allreduce:
                order.append(itasks.allreduce[pu].tid)
            if not self.options.cpu_optimizer:
                order.append(itasks.upd[(r, pu)].tid)
            if pu in itasks.weight_gather:
                order.append(itasks.weight_gather[pu].tid)
        return order
