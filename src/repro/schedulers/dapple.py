"""DAPPLE's early-backward hybrid schedule (PAPERS.md: "DAPPLE: A
Pipelined Data Parallel Approach for Training Large Models").

Two ideas from the paper, both expressed here:

* **Early backward scheduling.**  Each stage warms up with
  ``num_stages - stage`` forwards, then runs backward-first
  (backward, forward) pairs — the first backward is scheduled as early
  as its dependencies allow, so each microbatch's stashed activations
  are freed at the earliest possible point instead of piling up
  GPipe-style until the forward wave completes.

* **Hybrid data + pipeline layout.**  With ``num_pipelines = R > 1``
  the GPUs are carved into R pipeline replicas of
  ``len(gpus) // R`` stages each.  Gradients are synchronized per
  *stage*: every stage's allreduce ring spans that stage's device in
  each pipeline and fires as soon as the stage's last backward retires
  — deep stages sync while shallow stages are still computing, instead
  of one rigid all-replica tail.  Because a replica here spans several
  devices, these per-stage rings are described to the executor through
  ``Plan.collective_subsets`` rather than the one-device-per-replica
  wiring the data-parallel schedulers use.

Memory is managed by the baseline per-GPU virtualization policy — like
:class:`~repro.schedulers.pipedream_1f1b.PipeDream1F1B` this is a
"contemporary system + swapping" comparison point, not a Harmony
variant.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.memory.policy import MemoryPolicy
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig, Scheduler
from repro.sim.plan import Plan
from repro.tasks.decomposer import Decomposer, IterationTasks
from repro.tasks.packing import partition_layers_balanced


class DappleScheduler(Scheduler):
    name = "dapple"

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        batch: BatchConfig,
        num_stages: int | None = None,
        num_pipelines: int = 1,
        policy: MemoryPolicy | None = None,
    ):
        super().__init__(model, topology, batch)
        if num_pipelines < 1:
            raise ConfigError("num_pipelines must be >= 1")
        self.num_pipelines = num_pipelines
        default_stages = len(self.gpus) // num_pipelines
        self.num_stages = num_stages if num_stages is not None else default_stages
        if self.num_stages < 1:
            raise ConfigError(
                f"{num_pipelines} pipelines over {len(self.gpus)} GPUs leave "
                "no room for even one stage"
            )
        if self.num_stages * num_pipelines > len(self.gpus):
            raise ConfigError(
                f"{num_pipelines} pipelines x {self.num_stages} stages need "
                f"{num_pipelines * self.num_stages} GPUs but only "
                f"{len(self.gpus)} exist"
            )
        self.policy = policy if policy is not None else MemoryPolicy.baseline()

    def stage_device(self, replica: int, stage: int) -> str:
        """Pipelines occupy contiguous GPU ranges; stage ``s`` of
        pipeline ``r`` is GPU ``r * num_stages + s``."""
        return self.gpus[replica * self.num_stages + stage]

    def plan(self) -> Plan:
        stages = partition_layers_balanced(self.model, self.num_stages)
        itasks = Decomposer(
            self.model,
            microbatch_size=self.batch.microbatch_size,
            num_microbatches=self.batch.num_microbatches,
            num_replicas=self.num_pipelines,
            packs_fwd=stages,
            packs_bwd=stages,
            sync_gradients=self.num_pipelines > 1,
        ).decompose()
        device_order: dict[str, list[int]] = {}
        for r in range(self.num_pipelines):
            for s in range(self.num_stages):
                device = self.stage_device(r, s)
                for mb in range(self.batch.num_microbatches):
                    itasks.fwd[(r, s, mb)].place(device)
                    itasks.bwd[(r, s, mb)].place(device)
                for pu in itasks.upd_packs_within(s):
                    itasks.upd[(r, pu)].place(device)
                device_order[device] = self._stage_order(itasks, r, s)
        collective_subsets = self._wire_stage_allreduce(itasks, stages)
        return self._finish_plan(
            itasks,
            device_order,
            {r: self.stage_device(r, 0) for r in range(self.num_pipelines)},
            self.policy,
            notes={
                "stages": stages,
                "schedule": "dapple",
                "num_pipelines": self.num_pipelines,
            },
            wire_allreduce=False,
            collective_subsets=collective_subsets,
        )

    def _stage_order(
        self, itasks: IterationTasks, replica: int, stage: int
    ) -> list[int]:
        m = self.batch.num_microbatches
        warmup = min(self.num_stages - stage, m)
        order = [itasks.fwd[(replica, stage, mb)].tid for mb in range(warmup)]
        # Early backward: backward-first steady pairs free each
        # microbatch's stash at the earliest dependency-feasible point.
        for k in range(m - warmup):
            order.append(itasks.bwd[(replica, stage, k)].tid)
            order.append(itasks.fwd[(replica, stage, warmup + k)].tid)
        order += [
            itasks.bwd[(replica, stage, mb)].tid for mb in range(m - warmup, m)
        ]
        # Synchronous tail, per stage: sync each pack's gradients across
        # the pipelines (deepest pack first — dependency-completion
        # order), then apply the local update.
        for pu in reversed(itasks.upd_packs_within(stage)):
            if pu in itasks.allreduce:
                order.append(itasks.allreduce[pu].tid)
            order.append(itasks.upd[(replica, pu)].tid)
        return order

    def _wire_stage_allreduce(
        self, itasks: IterationTasks, stages: list[tuple[int, ...]]
    ) -> dict[int, dict[str, tuple[int, ...]]]:
        """Point each gradient allreduce at the devices hosting its
        stage across the pipelines, and record which gradient shards
        live where (a pipeline replica spans several devices, so the
        executor cannot infer this from ``replica_device``)."""
        if not itasks.allreduce:
            return {}
        reg = itasks.registry
        stage_of_pack = {
            pu: s
            for s in range(self.num_stages)
            for pu in itasks.upd_packs_within(s)
        }
        subsets: dict[int, dict[str, tuple[int, ...]]] = {}
        for pu, task in itasks.allreduce.items():
            stage = stage_of_pack[pu]
            pack = itasks.packs_upd[pu]
            task.participants = tuple(
                sorted(
                    self.stage_device(r, stage)
                    for r in range(self.num_pipelines)
                )
            )
            subsets[task.tid] = {
                self.stage_device(r, stage): tuple(
                    reg.weight_grad(l, r).tid for l in pack
                )
                for r in range(self.num_pipelines)
            }
        return subsets
