"""Harmony-TP: operation decomposition across GPUs.

The paper's key idea #2 as a schedule: every layer-level matrix
multiplication is split into per-device subtasks over weight shards,
with Harmony transparently inserting the collectives (all-gather of
partial outputs, all-reduce of partial input gradients) that preserve
the original semantics.  Weight updates are shard-local — no gradient
synchronization exists at all, the structural opposite of data
parallelism.

Memory: each GPU holds 1/N of every layer's W/dW/K/stash plus full
activation replicas, so persistent state pressure falls N-fold — the
right tool when a *single layer* is too large for one GPU.  Cost: two
collectives per layer per microbatch riding the interconnect.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig, Scheduler
from repro.schedulers.options import HarmonyOptions
from repro.sim.plan import Plan
from repro.tasks.sharded import ShardedDecomposer, ShardedIterationTasks
from repro.tasks.task import TaskKind


class HarmonyTP(Scheduler):
    name = "harmony-tp"

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        batch: BatchConfig,
        num_shards: int | None = None,
        options: HarmonyOptions | None = None,
    ):
        super().__init__(model, topology, batch)
        self.num_shards = num_shards if num_shards is not None else len(self.gpus)
        if self.num_shards > len(self.gpus):
            raise ConfigError(
                f"{self.num_shards} shards but only {len(self.gpus)} GPUs"
            )
        self.options = options if options is not None else HarmonyOptions()
        if self.options.pack_size != 1:
            raise ConfigError(
                "harmony-tp schedules at layer granularity (packing sharded "
                "subtasks would fuse across collectives)"
            )

    def plan(self) -> Plan:
        opts = self.options
        itasks = ShardedDecomposer(
            self.model,
            microbatch_size=self.batch.microbatch_size,
            num_microbatches=self.batch.num_microbatches,
            num_shards=self.num_shards,
        ).decompose()
        shard_device = {s: self.gpus[s] for s in range(self.num_shards)}
        for task in itasks.graph:
            if task.kind is TaskKind.COMPUTE:
                task.place(shard_device[task.replica])
        device_order = {
            shard_device[s]: self._shard_order(itasks, s)
            for s in range(self.num_shards)
        }
        return self._finish_plan(
            itasks, device_order, shard_device, opts.memory_policy(),
            notes={"num_shards": self.num_shards},
        )

    def _shard_order(self, itasks: ShardedIterationTasks, s: int) -> list[int]:
        opts = self.options
        m = self.batch.num_microbatches
        layers = range(len(self.model))
        order: list[int] = []

        def fwd_cell(layer: int, mb: int) -> list[int]:
            cell = [itasks.fwd[(s, layer, mb)].tid]
            if (layer, mb) in itasks.gather:
                cell.append(itasks.gather[(layer, mb)].tid)
            return cell

        def bwd_cell(layer: int, mb: int) -> list[int]:
            cell = [itasks.bwd[(s, layer, mb)].tid]
            if layer > 0 and (layer - 1, mb) in itasks.grad_coll:
                cell.append(itasks.grad_coll[(layer - 1, mb)].tid)
            return cell

        if opts.grouping:
            for layer in layers:
                for mb in range(m):
                    order += fwd_cell(layer, mb)
            for layer in reversed(layers):
                for mb in range(m):
                    order += bwd_cell(layer, mb)
                if opts.jit_update:
                    order.append(itasks.upd[(s, layer)].tid)
        else:
            for mb in range(m):
                for layer in layers:
                    order += fwd_cell(layer, mb)
            for mb in range(m):
                for layer in reversed(layers):
                    order += bwd_cell(layer, mb)
                    if opts.jit_update and mb == m - 1:
                        order.append(itasks.upd[(s, layer)].tid)
        if not opts.jit_update:
            order += [itasks.upd[(s, layer)].tid for layer in layers]
        return order
