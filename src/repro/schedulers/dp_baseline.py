"""Data-parallel training with per-GPU memory virtualization.

The baseline of the paper's Fig. 2(a): each GPU holds a full model
replica and processes its own microbatches in rigid PyTorch order
(forward all layers, backward all layers, per microbatch; gradient
all-reduce and weight updates only after the entire backward pass).
Each GPU's virtualizer swaps to host memory in isolation, so every
replica re-swaps the same weights per microbatch — the paper's
"repeated swaps" — and the aggregate traffic rides the shared host
uplink, growing linearly with the number of GPUs.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.memory.policy import MemoryPolicy
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig, Scheduler
from repro.sim.plan import Plan
from repro.tasks.decomposer import Decomposer
from repro.tasks.packing import pack_layers


class DataParallelBaseline(Scheduler):
    name = "dp-baseline"

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        batch: BatchConfig,
        num_replicas: int | None = None,
        pack_size: int = 1,
        policy: MemoryPolicy | None = None,
    ):
        super().__init__(model, topology, batch)
        self.num_replicas = num_replicas if num_replicas is not None else len(self.gpus)
        if self.num_replicas > len(self.gpus):
            raise ConfigError(
                f"{self.num_replicas} replicas but only {len(self.gpus)} GPUs"
            )
        self.pack_size = pack_size
        self.policy = policy if policy is not None else MemoryPolicy.baseline()

    def plan(self) -> Plan:
        packs = pack_layers(len(self.model), self.pack_size)
        itasks = Decomposer(
            self.model,
            microbatch_size=self.batch.microbatch_size,
            num_microbatches=self.batch.num_microbatches,
            num_replicas=self.num_replicas,
            packs_fwd=packs,
            packs_bwd=packs,
        ).decompose()
        replica_device = {r: self.gpus[r] for r in range(self.num_replicas)}
        device_order: dict[str, list[int]] = {}
        num_packs = len(itasks.packs_fwd)
        for r, device in replica_device.items():
            self._place_replica_tasks(itasks, r, device)
            order: list[int] = []
            for mb in range(self.batch.num_microbatches):
                for p in range(num_packs):
                    order.append(itasks.fwd[(r, p, mb)].tid)
                for p in reversed(range(num_packs)):
                    order.append(itasks.bwd[(r, p, mb)].tid)
            # Rigid tail: all gradient syncs, then all updates, mirroring
            # "weight update ... only starts after the backward pass for
            # the entire model" (paper §2, unnecessary swaps).
            for pu in range(len(itasks.packs_upd)):
                if pu in itasks.allreduce:
                    order.append(itasks.allreduce[pu].tid)
            for pu in range(len(itasks.packs_upd)):
                order.append(itasks.upd[(r, pu)].tid)
            device_order[device] = order
        return self._finish_plan(itasks, device_order, replica_device, self.policy)
