"""Single-GPU training with per-GPU memory virtualization.

The setting of the prior work the paper builds on (vDNN, IBM-LMS,
SwapAdvisor, Capuchin): one GPU, host memory as swap target, rigid
PyTorch execution order — per microbatch, forward over all layers then
backward over all layers; every weight update deferred to the end of
the iteration.
"""

from __future__ import annotations

from repro.hardware.topology import Topology
from repro.memory.policy import MemoryPolicy
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig, Scheduler
from repro.sim.plan import Plan
from repro.tasks.decomposer import Decomposer
from repro.tasks.packing import pack_layers


class SingleGpuScheduler(Scheduler):
    name = "single-gpu-virtualized"

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        batch: BatchConfig,
        pack_size: int = 1,
        policy: MemoryPolicy | None = None,
    ):
        super().__init__(model, topology, batch)
        self.pack_size = pack_size
        self.policy = policy if policy is not None else MemoryPolicy.baseline()

    def plan(self) -> Plan:
        packs = pack_layers(len(self.model), self.pack_size)
        itasks = Decomposer(
            self.model,
            microbatch_size=self.batch.microbatch_size,
            num_microbatches=self.batch.num_microbatches,
            num_replicas=1,
            packs_fwd=packs,
            packs_bwd=packs,
        ).decompose()
        device = self.gpus[0]
        self._place_replica_tasks(itasks, 0, device)
        order: list[int] = []
        num_packs = len(itasks.packs_fwd)
        for mb in range(self.batch.num_microbatches):
            for p in range(num_packs):
                order.append(itasks.fwd[(0, p, mb)].tid)
            for p in reversed(range(num_packs)):
                order.append(itasks.bwd[(0, p, mb)].tid)
        for pu in range(len(itasks.packs_upd)):
            order.append(itasks.upd[(0, pu)].tid)
        return self._finish_plan(
            itasks, {device: order}, {0: device}, self.policy
        )
