"""Scheduler base class and shared plumbing.

A scheduler's job (paper Fig. 3, "Task and Swap Scheduler") is to turn
the decomposed task graph into a :class:`Plan`: bind every task to a
device (late binding happens *here*, not in the model definition),
fix each device's execution order, and choose the memory policy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigError, SchedulingError
from repro.hardware.topology import Topology
from repro.memory.policy import MemoryPolicy
from repro.models.graph import ModelGraph
from repro.sim.plan import Plan
from repro.tasks.decomposer import IterationTasks
from repro.tasks.task import TaskKind


@dataclass(frozen=True)
class BatchConfig:
    """How one mini-batch is split.

    ``num_microbatches`` is per replica (the paper's ``m``); the global
    mini-batch is ``num_replicas * num_microbatches * microbatch_size``
    samples.
    """

    microbatch_size: int = 1
    num_microbatches: int = 1

    def __post_init__(self) -> None:
        if self.microbatch_size < 1:
            raise ConfigError("microbatch_size must be >= 1")
        if self.num_microbatches < 1:
            raise ConfigError("num_microbatches must be >= 1")

    @property
    def per_replica_batch(self) -> int:
        return self.microbatch_size * self.num_microbatches


class Scheduler(abc.ABC):
    """Builds an execution plan for one training iteration."""

    name: str = "scheduler"

    def __init__(self, model: ModelGraph, topology: Topology, batch: BatchConfig):
        if not len(model):
            raise ConfigError("model has no layers")
        topology.validate()
        self.model = model
        self.topology = topology
        self.batch = batch
        self.gpus = [gpu.name for gpu in topology.gpus()]

    @abc.abstractmethod
    def plan(self) -> Plan:
        """Produce the placed, ordered plan."""

    # -- shared helpers -------------------------------------------------------

    def _finish_plan(
        self,
        itasks: IterationTasks,
        device_order: dict[str, list[int]],
        replica_device: dict[int, str],
        policy: MemoryPolicy,
        notes: dict | None = None,
        wire_allreduce: bool = True,
        collective_subsets: dict[int, dict[str, tuple[int, ...]]] | None = None,
    ) -> Plan:
        """Wire allreduce participants, check placement, and assemble.

        ``wire_allreduce=False`` keeps the participants the scheduler
        already set — for layouts where a replica spans several devices
        (e.g. DAPPLE's hybrid pipelines) the one-device-per-replica
        wiring below is wrong, and the scheduler passes the matching
        per-device tensor ``collective_subsets`` instead.
        """
        if wire_allreduce:
            # One sorted participant tuple shared by every collective —
            # sorting once instead of per ALLREDUCE task keeps plan
            # assembly linear on wide fleets.
            participants = tuple(
                sorted(
                    replica_device[r] for r in range(itasks.num_replicas)
                )
            )
            for task in itasks.graph:
                if task.kind is TaskKind.ALLREDUCE:
                    task.participants = participants
        for task in itasks.graph:
            if task.kind is TaskKind.COMPUTE and task.device is None:
                raise SchedulingError(f"task {task.label} left unplaced by {self.name}")
        # Not validated here: the executor validates every plan it is
        # given (Plan.validate walks the whole graph and device orders,
        # and running it twice per simulation is measurable).
        return Plan(
            label=self.name,
            graph=itasks.graph,
            registry=itasks.registry,
            device_order=device_order,
            replica_device=replica_device,
            policy=policy,
            samples_per_iteration=itasks.samples_per_iteration,
            microbatch_size=itasks.microbatch_size,
            notes=notes or {},
            collective_subsets=collective_subsets or {},
        )

    @staticmethod
    def _place_replica_tasks(
        itasks: IterationTasks, replica: int, device: str
    ) -> None:
        """Bind every compute task of one replica to one device (the
        data-parallel placement rule).  Uses the decomposer's per-replica
        index: the whole-graph scan this used to do made placement
        O(replicas x graph) — quadratic in fleet size."""
        for task in itasks.compute_tasks_of(replica):
            task.place(device)
