"""Harmony optimization toggles.

Each flag maps to one of the paper's four optimizations (§3), plus the
pack-size knob of the "memory-performance tango" (§4).  All default to
the full Harmony configuration; ablation benchmarks flip one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.memory.policy import MemoryPolicy


@dataclass(frozen=True)
class HarmonyOptions:
    """Toggles for Harmony's optimizations.

    grouping:
        Input-batch grouping — run each task across all microbatches
        back-to-back so its state is swapped once, not per microbatch.
    jit_update:
        Just-in-time scheduling — run each layer pack's weight update
        immediately after its backward group, while W/dW are resident.
    p2p:
        Peer-to-peer transfers — move shared tensors directly between
        GPUs instead of bouncing through host memory, and allow
        cross-device swap targets.
    pack_size:
        Layers fused per task (task packing); 1 = layer granularity.
    pack_size_bwd:
        Optional distinct backward-pass pack size (the paper notes
        backward has 2-3x forward's footprint, motivating different
        granularities per pass).  ``None`` = same as ``pack_size``.
    track_clean:
        Dirty-bit tracking in the memory manager (part of Harmony's
        coherent virtual memory; exposed for ablation).
    recompute:
        Activation checkpointing (Chen et al. '16, cited by the paper):
        stash only each pack's input and re-run the pack's forward
        during backward.  Trades ~33% extra compute for an
        activation-stash footprint independent of pack depth — the §4
        note that "increasing the pack size can reduce p2p transfer and
        swap volume (when using recompute)".  Requires equal forward
        and backward pack sizes.
    """

    grouping: bool = True
    jit_update: bool = True
    p2p: bool = True
    pack_size: int = 1
    pack_size_bwd: int | None = None
    track_clean: bool = True
    recompute: bool = False
    #: Run weight updates on the host CPU against host-resident
    #: optimizer state (the ZeRO-Offload design the paper cites):
    #: Adam moments never occupy GPU memory or the swap link, at the
    #: cost of slower update arithmetic and a forced dW write-back.
    cpu_optimizer: bool = False
    #: Shard optimizer state across data-parallel replicas (ZeRO
    #: stage-1, the paper-cited optimizer-state sharding): each replica
    #: keeps 1/N of K and updates its weight slice; an all-gather
    #: rebuilds full weights.  Data-parallel schedules only.
    zero_optimizer: bool = False
    #: Let evictions target a switch-local peer GPU's spare memory over
    #: p2p links instead of host DRAM (paper §2: baselines "can only
    #: swap to host memory ... missing the opportunity to use fast
    #: device-to-device links for cross-device swaps").  Profitable only
    #: when load is uneven enough that some GPU has slack.
    swap_to_peer: bool = False
    #: Let swap-outs spill to a *neighbor server's* host DRAM when the
    #: local host is full (rack-scale fleets; see
    #: ``MemoryPolicy.remote_swap``).  The nearest host with room wins;
    #: the copy then rides the inter-server network both ways.
    remote_swap: bool = False

    def __post_init__(self) -> None:
        if self.pack_size < 1:
            raise ConfigError("pack_size must be >= 1")
        if self.pack_size_bwd is not None and self.pack_size_bwd < 1:
            raise ConfigError("pack_size_bwd must be >= 1")
        if (
            self.recompute
            and self.pack_size_bwd is not None
            and self.pack_size_bwd != self.pack_size
        ):
            raise ConfigError(
                "recompute requires equal forward and backward pack sizes"
            )
        if self.cpu_optimizer and self.zero_optimizer:
            raise ConfigError(
                "cpu_optimizer and zero_optimizer are alternative optimizer "
                "placements; enable at most one"
            )

    @property
    def bwd_pack_size(self) -> int:
        return self.pack_size_bwd if self.pack_size_bwd is not None else self.pack_size

    def memory_policy(self) -> MemoryPolicy:
        return MemoryPolicy(
            track_clean=self.track_clean,
            p2p_enabled=self.p2p,
            swap_to_peer=self.swap_to_peer,
            remote_swap=self.remote_swap,
        )
