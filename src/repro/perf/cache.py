"""The content-addressed run cache.

:class:`RunCache` maps fingerprints (see
:mod:`repro.perf.fingerprint`) to serialized run payloads — usually
:class:`~repro.sim.result.RunResult`, but any picklable value (the
tuner caches :class:`~repro.tuner.profiler.ProfilePoint`).

Two tiers:

* **memory** — always on; entries live for the process.
* **disk** — optional, rooted at ``cache_dir`` (the CLI's
  ``--cache-dir``, conventionally ``~/.cache/repro``); entries survive
  across processes and are written atomically (temp file + rename) so
  concurrent sweep workers never observe torn blobs.

Every lookup stores and returns payloads through the *same* serialized
form (``pickle.dumps`` at store, ``pickle.loads`` at hit), which is
what makes the byte-identical guarantee testable: a hit is a fresh
deserialization, never a shared mutable object that an earlier caller
may have decorated (e.g. attached an audit report to).

One cache instance may be shared by concurrent callers (the job
server hands a single instance to every tenant's supervisor): the
memory tier and the hit/miss/store counters are guarded by a lock, and
``get_or_run`` holds no lock around ``compute`` — two racing misses on
the same key both compute, and the byte-identical guarantee makes the
double store harmless (last write wins with an equal value).

Invalidation is by construction: the fingerprint already contains the
scheduler version salt, so semantics changes miss instead of serving
stale entries.  The ``invalidations`` counter ledgers the one remaining
case — a disk entry that exists but fails to load (corrupt, truncated,
or written by an incompatible Python) is deleted and treated as a miss.
Symmetrically, ``write_errors`` counts disk-tier stores that failed
(cache dir deleted, disk full, permissions): the cache keeps serving
from memory, but the first failure warns once so a dead cache dir is
not silently absorbed as a 0% hit rate across processes.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import warnings
from typing import Any, Callable

#: Distinguished miss marker.  ``get(key, RunCache.MISS)`` is the
#: ambiguity-free lookup: a legitimately cached falsy payload (``None``,
#: ``0``, ``[]``) comes back as itself, never conflated with a miss.
_MISS = object()


class RunCache:
    """In-memory (+ optional on-disk) fingerprint -> payload cache."""

    #: Sentinel returned by ``get(key, default=RunCache.MISS)`` so
    #: callers can cache falsy payloads without re-computing them.
    MISS = _MISS

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        self._lock = threading.RLock()
        self._memory: dict[str, bytes] = {}
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            os.makedirs(self.cache_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        self.write_errors = 0
        self._warned_write_error = False

    # -- tiers -----------------------------------------------------------

    def _path(self, key: str) -> str:
        # Two-level fan-out keeps directories small on big sweeps.
        return os.path.join(self.cache_dir, key[:2], f"{key}.pkl")

    def _disk_read(self, key: str) -> bytes | None:
        if self.cache_dir is None:
            return None
        try:
            with open(self._path(key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def _disk_write(self, key: str, blob: bytes) -> None:
        if self.cache_dir is None:
            return
        path = self._path(key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError as exc:
            # The memory tier still holds the entry; count the failure
            # and warn once so a dead cache dir surfaces instead of
            # silently degrading every future process to cold misses.
            with self._lock:
                self.write_errors += 1
                warn_now = not self._warned_write_error
                self._warned_write_error = True
            if warn_now:
                warnings.warn(
                    f"run cache: disk write to {self.cache_dir} failed "
                    f"({exc}); caching continues in memory only, further "
                    f"failures are counted in counters()['write_errors']",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    # -- public ----------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """The cached payload for ``key``, freshly deserialized, or
        ``default`` on a miss.  Counts one hit or one miss.

        Pass ``default=RunCache.MISS`` when a cached payload may itself
        be falsy — the sentinel is the only value ``get`` never returns
        for a hit, so ``result is RunCache.MISS`` is an unambiguous
        miss test.
        """
        with self._lock:
            blob = self._memory.get(key)
        if blob is None:
            blob = self._disk_read(key)
            if blob is not None:
                try:
                    payload = pickle.loads(blob)
                except Exception:
                    # Torn/incompatible disk entry: drop it.
                    try:
                        os.unlink(self._path(key))
                    except OSError:
                        pass
                    with self._lock:
                        self.invalidations += 1
                        self.misses += 1
                    return default
                with self._lock:
                    self._memory[key] = blob  # promote to the memory tier
                    self.hits += 1
                return payload
        if blob is None:
            with self._lock:
                self.misses += 1
            return default
        with self._lock:
            self.hits += 1
        return pickle.loads(blob)

    def put(self, key: str, payload: Any) -> None:
        """Serialize and store ``payload`` in every enabled tier."""
        blob = pickle.dumps(payload)
        with self._lock:
            self._memory[key] = blob
            self.stores += 1
        self._disk_write(key, blob)

    def get_or_run(self, key: str, compute: Callable[[], Any]) -> Any:
        """``get(key)``, falling back to ``compute()`` + ``put``.

        The returned value on a miss is a cache round-trip of the
        computed payload, so hit and miss callers observe identical
        (deserialized) objects.  The lookup uses the :data:`MISS`
        sentinel, so a legitimately cached falsy payload (``None``,
        ``0``, ``[]``) is a hit, not an eternal recompute.
        """
        cached = self.get(key, _MISS)
        if cached is not _MISS:
            return cached
        payload = compute()
        self.put(key, payload)
        with self._lock:
            blob = self._memory[key]
        return pickle.loads(blob)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self._disk_read(key) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self) -> None:
        """Drop the memory tier (disk entries are left in place)."""
        with self._lock:
            self._memory.clear()

    # -- reporting -------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalidations": self.invalidations,
                "write_errors": self.write_errors,
            }

    def describe(self) -> str:
        with self._lock:
            hits, misses = self.hits, self.misses
            entries = len(self._memory)
            write_errors = self.write_errors
        rate = hits / (hits + misses) if hits + misses else 0.0
        tier = f", disk={self.cache_dir}" if self.cache_dir else ""
        errors = (
            f", {write_errors} disk write error(s)" if write_errors else ""
        )
        return (
            f"run cache: {hits} hits / {misses} misses "
            f"({100 * rate:.0f}%), {entries} entries"
            f"{tier}{errors}"
        )
