"""Incremental re-simulation: prefix checkpoints at iteration boundaries.

The run cache (:mod:`repro.perf.cache`) reuses *whole* runs; this module
reuses *prefixes*.  On the executor's rebased cycle path an iteration is
a pure function of its entry state, so the simulator's complete state at
an iteration boundary — tensor residency, pool accounting, swap ledger,
timeline busy counters, committed trace, epoch — is a resumable
continuation.  :class:`CheckpointStore` keys those continuations by the
hierarchical prefix key (:func:`repro.perf.fingerprint.base_fingerprint`
— the spec *modulo iteration count* — then the boundary index), and a
run that shares the key restores the deepest boundary ``<= n - 1`` and
simulates only the divergent suffix.

The tuner's hill-climb revisits and the sweep runner's neighboring
cells are exactly this shape: same model/topology/config probed
repeatedly (or at growing iteration depths), each probe previously
cold-starting iteration 1.  With a warm store, a probe at ``n``
iterations restores boundary ``n - 1`` and simulates one iteration plus
the flush — the bench's ``incremental`` section measures the per-probe
speedup and asserts byte-identity against a cold run, the same
guarantee the run cache makes.

Snapshots round-trip through ``pickle`` in every tier (memory included),
so a restored executor never shares mutable state with its donor — the
byte-identical guarantee is a property of the serialized form, exactly
as for :class:`~repro.perf.cache.RunCache` hits.

Steady-state interplay: snapshots are captured *mid-boundary*, after
the entry fingerprint is computed but before the cycle-detection branch
runs, and carry the detection inputs (``prev_fp``, ``fp``, the just
captured :class:`~repro.steady.cycle.CycleLedger`, and whether the
donor was still detecting).  A restoring run replays the detection
decision against its *own* iteration count, so an ``auto`` run restored
at boundary ``k`` fast-forwards (or not) exactly as its cold twin would
at that same boundary.  Donors never write post-detection boundaries,
and the prefix key separates resolved steady modes, so ``off`` and
``auto`` runs never exchange snapshots.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.executor import Executor
    from repro.steady.cycle import CycleLedger


@dataclass(frozen=True)
class Snapshot:
    """Complete simulator state at one iteration boundary.

    Captured on the cycle path after the boundary reset (engine drained
    and rebased to local ``t=0``, timelines freed, per-microbatch
    tensors reborn), so the volatile scheduling state — device states,
    arrival sets, in-flight waiters — is in its deterministic
    freshly-reset form and need not be stored; only the state that
    *carries across* iterations is.
    """

    #: Iterations completed at capture time (the boundary index).
    iteration: int
    #: Absolute time of the boundary (sum of committed local makespans).
    epoch: float
    samples: int
    events_processed: int
    #: Committed trace events, already in absolute time.
    trace_events: tuple
    #: (timeline name, busy_seconds) for every link and compute stream.
    busy: tuple[tuple[str, float], ...]
    #: Per-tensor runtime fields, in the manager's insertion order:
    #: (tid, state, device, dirty, pinned, last_use, host_device,
    #: history).  Metas are rebuilt from the restoring plan's registry.
    runtimes: tuple[tuple, ...]
    home: tuple[tuple[int, str | None], ...]
    use_seq: int
    #: Per-pool accounting incl. the reservation table in insertion
    #: order (victim scans iterate it).
    pools: tuple[tuple, ...]
    usage_log: tuple[tuple[str, tuple], ...]
    activation_resident: tuple[tuple[str, float], ...]
    activation_peak: tuple[tuple[str, float], ...]
    #: Swap-ledger contents as items in recording order (float sums over
    #: the ledger are order-sensitive).
    stats_volume: tuple
    stats_events: tuple
    stats_retried: tuple
    stats_retry_events: tuple
    #: Cycle-detection inputs at this boundary (``None``/False when the
    #: donor ran with steady-state off).
    prev_fp: tuple | None
    fp: tuple | None
    ledger: "CycleLedger | None"
    detecting: bool
    #: Per-host spill-volume ledger in accumulation order (the
    #: remote-swap target choice compares these float sums against host
    #: capacity, so they are restored verbatim, not recomputed).
    #: Defaults empty — correct for donors that never remote-swapped.
    host_used: tuple[tuple[str, float], ...] = ()


def capture_snapshot(
    ex: "Executor",
    iteration: int,
    prev_fp: tuple | None,
    fp: tuple | None,
    ledger: "CycleLedger | None",
    detecting: bool,
) -> Snapshot:
    """Snapshot the executor mid-boundary (see :class:`Snapshot`)."""
    if ex.trace.segments:
        raise AssertionError(
            "prefix checkpoint at a post-fast-forward boundary (compressed "
            "segments are not resumable; donors stop capturing at detection)"
        )
    manager = ex.manager
    stats = ex.stats
    return Snapshot(
        iteration=iteration,
        epoch=ex._epoch,
        samples=ex._samples,
        events_processed=ex.engine.events_processed,
        trace_events=tuple(ex.trace.events),
        busy=tuple((tl.name, tl.busy_seconds) for tl in ex._all_timelines),
        runtimes=tuple(
            (tid, rt.state, rt.device, rt.dirty, rt.pinned, rt.last_use,
             rt.host_device, tuple(rt._history))
            for tid, rt in manager.runtimes.items()
        ),
        home=tuple(manager._home.items()),
        host_used=tuple(manager._host_used.items()),
        use_seq=manager._use_seq,
        pools=tuple(
            (name, pool.used, pool.peak_used, pool.demand, pool.peak_demand,
             pool.pressure, tuple(pool._reservations.items()))
            for name, pool in manager.pools.items()
        ),
        usage_log=tuple(
            (dev, tuple(log)) for dev, log in manager.usage_log.items()
        ),
        activation_resident=tuple(manager.activation_resident.items()),
        activation_peak=tuple(manager.activation_peak.items()),
        stats_volume=tuple(stats._volume.items()),
        stats_events=tuple(stats._events.items()),
        stats_retried=tuple(stats._retried.items()),
        stats_retry_events=tuple(stats._retry_events.items()),
        prev_fp=prev_fp,
        fp=fp,
        ledger=ledger,
        detecting=detecting,
    )


def install_snapshot(ex: "Executor", snap: Snapshot) -> None:
    """Rebuild the executor's carried-across state from ``snap``.

    Called on a freshly-constructed executor *before* anything has been
    scheduled or materialized: the engine calendar is empty, device
    states and arrival sets are in their reset form, and the trace has
    no events — exactly the shape the donor's boundary reset left
    behind, minus the state this function installs.
    """
    from repro.tensors.state import TensorRuntime

    manager = ex.manager
    registry = ex.plan.registry
    runtimes: dict[int, TensorRuntime] = {}
    for tid, state, device, dirty, pinned, last_use, host, history in (
        snap.runtimes
    ):
        rt = TensorRuntime(registry.by_id(tid))
        rt.state = state
        rt.device = device
        rt.dirty = dirty
        rt.pinned = pinned
        rt.last_use = last_use
        rt.host_device = host
        rt._history = list(history)
        runtimes[tid] = rt
    manager.runtimes = runtimes
    manager._home = dict(snap.home)
    manager._host_used = dict(snap.host_used)
    manager._use_seq = snap.use_seq
    for name, used, peak_used, demand, peak_demand, pressure, resv in (
        snap.pools
    ):
        pool = manager.pools[name]
        pool.used = used
        pool.peak_used = peak_used
        pool.demand = demand
        pool.peak_demand = peak_demand
        pool.pressure = pressure
        pool._reservations = dict(resv)
    for dev, log in snap.usage_log:
        manager.usage_log[dev] = list(log)
    manager.activation_resident = dict(snap.activation_resident)
    manager.activation_peak = dict(snap.activation_peak)
    stats = ex.stats
    stats._volume.clear()
    stats._volume.update(snap.stats_volume)
    stats._events.clear()
    stats._events.update(snap.stats_events)
    stats._retried.clear()
    stats._retried.update(snap.stats_retried)
    stats._retry_events.clear()
    stats._retry_events.update(snap.stats_retry_events)
    # The ledger was replaced wholesale; rebuild the running device
    # roster that record() normally maintains incrementally.
    stats._devices.clear()
    stats._devices.update(d for (d, _, _) in stats._volume)
    timelines = {tl.name: tl for tl in ex._all_timelines}
    for name, busy_seconds in snap.busy:
        timelines[name].busy_seconds = busy_seconds
    ex.trace.events[:] = snap.trace_events
    ex.engine.events_processed = snap.events_processed
    ex._epoch = snap.epoch
    ex._samples = snap.samples


class CheckpointStore:
    """Prefix-checkpoint tiers: ``base key -> {boundary: snapshot}``.

    Mirrors :class:`~repro.perf.cache.RunCache`: an always-on memory
    tier plus an optional on-disk tier (``checkpoint_dir``), atomic
    writes, lock-guarded counters, and pickle round-trips on every hit
    so restored state never aliases the donor's.

    Disk layout: ``<dir>/<key[:2]>/<key>/<iteration>.pkl`` — one
    directory per base key so :meth:`best` can enumerate available
    boundaries with a single ``listdir``.
    """

    def __init__(self, checkpoint_dir: str | os.PathLike | None = None):
        self._lock = threading.RLock()
        self._memory: dict[str, dict[int, bytes]] = {}
        self.checkpoint_dir = (
            os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        self.write_errors = 0
        #: Total simulated iterations short-circuited by restores — the
        #: work the prefix reuse saved, in iteration units.
        self.saved_iterations = 0
        self._warned_write_error = False

    # -- tiers -----------------------------------------------------------

    def _key_dir(self, base_key: str) -> str:
        return os.path.join(self.checkpoint_dir, base_key[:2], base_key)

    def _path(self, base_key: str, iteration: int) -> str:
        return os.path.join(self._key_dir(base_key), f"{iteration}.pkl")

    def _disk_iterations(self, base_key: str) -> list[int]:
        if self.checkpoint_dir is None:
            return []
        try:
            names = os.listdir(self._key_dir(base_key))
        except OSError:
            return []
        out = []
        for name in names:
            stem, ext = os.path.splitext(name)
            if ext == ".pkl" and stem.isdigit():
                out.append(int(stem))
        return out

    def _disk_read(self, base_key: str, iteration: int) -> bytes | None:
        if self.checkpoint_dir is None:
            return None
        try:
            with open(self._path(base_key, iteration), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def _disk_write(self, base_key: str, iteration: int, blob: bytes) -> None:
        if self.checkpoint_dir is None:
            return
        path = self._path(base_key, iteration)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError as exc:
            with self._lock:
                self.write_errors += 1
                warn_now = not self._warned_write_error
                self._warned_write_error = True
            if warn_now:
                warnings.warn(
                    f"checkpoint store: disk write to {self.checkpoint_dir} "
                    f"failed ({exc}); checkpointing continues in memory "
                    "only, further failures are counted in "
                    "counters()['write_errors']",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    # -- public ----------------------------------------------------------

    def put(self, base_key: str, snapshot: Snapshot) -> None:
        """Store one boundary snapshot under its prefix key."""
        blob = pickle.dumps(snapshot)
        with self._lock:
            self._memory.setdefault(base_key, {})[snapshot.iteration] = blob
            self.stores += 1
        self._disk_write(base_key, snapshot.iteration, blob)

    def has(self, base_key: str, iteration: int) -> bool:
        """Cheap existence probe (no counters) — lets donors skip
        re-pickling a boundary an earlier identical run already saved."""
        with self._lock:
            if iteration in self._memory.get(base_key, ()):
                return True
        if self.checkpoint_dir is None:
            return False
        return os.path.exists(self._path(base_key, iteration))

    def best(self, base_key: str, max_iteration: int) -> Snapshot | None:
        """The deepest stored boundary ``<= max_iteration``, freshly
        deserialized, or ``None``.  Counts one hit or one miss; a hit
        credits its depth to ``saved_iterations``."""
        with self._lock:
            candidates = set(self._memory.get(base_key, ()))
        candidates.update(self._disk_iterations(base_key))
        for iteration in sorted(
            (i for i in candidates if i <= max_iteration), reverse=True
        ):
            with self._lock:
                blob = self._memory.get(base_key, {}).get(iteration)
            if blob is None:
                blob = self._disk_read(base_key, iteration)
            if blob is None:
                continue
            try:
                snap = pickle.loads(blob)
            except Exception:
                # Torn/incompatible disk entry: drop it, try shallower.
                try:
                    os.unlink(self._path(base_key, iteration))
                except OSError:
                    pass
                with self._lock:
                    self.invalidations += 1
                continue
            with self._lock:
                self._memory.setdefault(base_key, {})[iteration] = blob
                self.hits += 1
                self.saved_iterations += iteration
            return snap
        with self._lock:
            self.misses += 1
        return None

    def clear(self) -> None:
        """Drop the memory tier (disk entries are left in place)."""
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._memory.values())

    # -- reporting -------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalidations": self.invalidations,
                "write_errors": self.write_errors,
                "saved_iterations": self.saved_iterations,
            }

    def describe(self) -> str:
        with self._lock:
            hits, misses = self.hits, self.misses
            saved = self.saved_iterations
            entries = sum(len(v) for v in self._memory.values())
        rate = hits / (hits + misses) if hits + misses else 0.0
        tier = f", disk={self.checkpoint_dir}" if self.checkpoint_dir else ""
        return (
            f"checkpoints: {hits} hits / {misses} misses "
            f"({100 * rate:.0f}%), {saved} iteration(s) saved, "
            f"{entries} snapshot(s){tier}"
        )


def snapshot_boundary(iteration: int, total: int) -> bool:
    """Donor write throttle: powers of two plus the deepest restorable
    boundary (``total - 1``; the final iteration always runs live)."""
    return iteration == total - 1 or (iteration & (iteration - 1)) == 0
