"""The tracked benchmark harness behind ``python -m repro bench``.

Measures four things on the paper's Fig. 4 workload (4 layers x 100 MB
on two 550 MB GPUs, harmony-pp, 2 microbatches) and a scaled variant
(8 layers, 8 microbatches):

* **single-run wall time** — build + plan + simulate, min over
  repeats (min is the right statistic for a noisy shared host: every
  source of interference only adds time);
* **events/sec** — engine events executed per wall-clock second, the
  size-independent throughput figure the CI regression gate tracks;
* **cache behaviour** — fresh-run vs cache-hit latency and the hit
  rate counters of a :class:`~repro.perf.cache.RunCache`;
* **incremental re-simulation** — the tuner's re-probe shape against a
  warm :class:`~repro.perf.incremental.CheckpointStore`: cold vs
  prefix-restored per-probe wall time, with byte-identity *asserted*
  (makespan, Chrome trace, swap ledger) and the per-probe speedup
  gated (3x full mode);
* **fleet scale** — events/sec at 64/256/1024 simulated devices
  (harmony-dp, small fixed per-replica workload), the scaling figure
  behind the live loop's targeted wake-up;
* **parallel-sweep scaling** — a small scheme x microbatch grid run
  serially and through :class:`~repro.perf.runner.SweepRunner` with
  ``--jobs N``;
* **steady-state fast-forward** — the Fig. 4 workload at many
  iterations, ``--steady-state off`` vs ``auto`` (see
  :mod:`repro.steady`).  The section *asserts* the two runs produce
  identical makespan, swap ledgers, per-link busy seconds, and event
  counts, and that the measured ``steady_speedup`` clears a floor
  (100x at the full 10,000-iteration point) — equivalence and speedup
  are checked, not eyeballed;
* **recovery-policy zoo** — simulated MTTR p50/p95 and goodput per
  recovery policy on a fixed fault scenario (deterministic on every
  host); the gate watches each policy's goodput ratio one-sided.

``write_json`` emits ``BENCH_sim.json`` (committed at the repo root)
so the repo carries a perf trajectory; ``check_regression`` is the CI
gate — it fails only when measured events/sec falls more than 30%
below the committed *baseline* (pre-optimization) figure, a one-sided
test chosen because CI runners are typically faster than the machine
that recorded the baseline, and absolute cross-machine comparisons
only support a conservative lower bound.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time

from repro.core.config import HarmonyConfig, Parallelism
from repro.core.session import HarmonySession
from repro.errors import ReproError
from repro.hardware import presets
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.models import zoo
from repro.perf.cache import RunCache
from repro.perf.fingerprint import SCHEDULER_VERSION, fingerprint
from repro.perf.runner import RunSpec, SweepRunner
from repro.schedulers.base import BatchConfig
from repro.units import MB, TFLOP

SCHEMA = 1

#: Pre-optimization reference numbers, measured at the commit preceding
#: the performance layer with the same harness methodology (fresh
#: subprocess, interleaved A/B with the optimized tree, min over
#: repeats) on the machine that recorded the committed BENCH_sim.json.
#: Event counts are identical pre/post (golden traces unchanged), so
#: baseline events/sec is derived from the same event count.
PRE_PR_BASELINE = {
    "commit": "d53bb73",
    "note": (
        "pre-optimization simulator, same host and methodology as "
        "'current' in the committed BENCH_sim.json (min wall time over "
        "7 interleaved A/B rounds of 30/8 repeats)"
    ),
    "fig4": {"wall_sec": 2.410e-3},
    "fig4_scaled": {"wall_sec": 17.711e-3},
}


def _fig4_workload(num_layers: int = 4, num_microbatches: int = 2) -> RunSpec:
    """The Fig. 4 setting (see :mod:`repro.experiments.fig4_schedule`):
    a model whose training state dwarfs two small GPUs."""
    model = zoo.synthetic_uniform(
        num_layers=num_layers,
        param_bytes_per_layer=100 * MB,
        activation_bytes=25 * MB,
    )
    topology = presets.commodity_server(
        num_gpus=2,
        gpu_factory=lambda name: DeviceSpec(
            name, DeviceKind.GPU, 550 * MB, 4.5 * TFLOP
        ),
    )
    config = HarmonyConfig(
        parallelism=Parallelism.HARMONY_PP,
        batch=BatchConfig(microbatch_size=1, num_microbatches=num_microbatches),
    )
    return RunSpec(model, topology, config, label=f"fig4-{num_layers}L-{num_microbatches}mb")


def _sweep_grid(quick: bool) -> list[RunSpec]:
    counts = (2, 4) if quick else (2, 4, 6, 8)
    specs = []
    for num_microbatches in counts:
        for scheme in ("harmony-pp", "pp-baseline"):
            spec = _fig4_workload(num_microbatches=num_microbatches)
            spec.config = HarmonyConfig(
                parallelism=scheme, batch=spec.config.batch
            )
            spec.label = f"{scheme}-{num_microbatches}mb"
            specs.append(spec)
    return specs


def _time_single(spec: RunSpec, repeats: int) -> dict:
    """Min wall time of a full fresh experiment (build -> plan -> run)."""
    best = float("inf")
    events = 0
    trace_events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        session = HarmonySession(spec.model, spec.topology, spec.config)
        result = session.run()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
        events = result.events_processed
        trace_events = len(result.trace.events)
    return {
        "wall_sec": best,
        "events": events,
        "trace_events": trace_events,
        "events_per_sec": events / best if best > 0 else 0.0,
        "repeats": repeats,
    }


def _time_cache(spec: RunSpec, lookups: int = 5) -> dict:
    cache = RunCache()
    key = "result:" + fingerprint(spec.model, spec.topology, spec.config)

    t0 = time.perf_counter()
    result = HarmonySession(spec.model, spec.topology, spec.config).run()
    fresh_sec = time.perf_counter() - t0
    cache.put(key, result)

    best_hit = float("inf")
    for _ in range(lookups):
        t0 = time.perf_counter()
        hit = cache.get(key)
        best_hit = min(best_hit, time.perf_counter() - t0)
    assert hit is not None
    return {
        "fresh_sec": fresh_sec,
        "hit_sec": best_hit,
        "hit_speedup": fresh_sec / best_hit if best_hit > 0 else 0.0,
        "hit_rate": cache.hit_rate,
        "counters": cache.counters(),
    }


def _time_sweep(jobs: int, quick: bool) -> dict:
    specs = _sweep_grid(quick)

    t0 = time.perf_counter()
    serial = SweepRunner(jobs=1).run_all(specs)
    serial_sec = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = SweepRunner(jobs=jobs).run_all(specs)
    parallel_sec = time.perf_counter() - t0

    if [r.makespan for r in serial] != [r.makespan for r in parallel]:
        raise ReproError("parallel sweep diverged from the serial sweep")
    return {
        "points": len(specs),
        "jobs": jobs,
        "serial_sec": serial_sec,
        "parallel_sec": parallel_sec,
        "scaling": serial_sec / parallel_sec if parallel_sec > 0 else 0.0,
    }


def _time_steady(quick: bool) -> dict:
    """Steady-state fast-forward: off vs auto at scale, equivalence
    asserted field by field before the speedup is reported."""
    from dataclasses import replace

    iterations = 2_000 if quick else 10_000
    gate_floor = 25.0 if quick else 100.0
    spec = _fig4_workload()

    def run(mode: str) -> tuple:
        config = replace(
            spec.config, iterations=iterations, steady_state=mode
        )
        t0 = time.perf_counter()
        result = HarmonySession(spec.model, spec.topology, config).run()
        return time.perf_counter() - t0, result

    off_sec, off = run("off")
    auto_sec = float("inf")
    for _ in range(3):
        elapsed, auto = run("auto")
        auto_sec = min(auto_sec, elapsed)

    mismatches = [
        name
        for name, got, want in (
            ("makespan", auto.makespan, off.makespan),
            ("swap_volume", dict(auto.stats._volume), dict(off.stats._volume)),
            ("swap_events", dict(auto.stats._events), dict(off.stats._events)),
            ("link_busy", auto.link_busy, off.link_busy),
            ("events_processed", auto.events_processed, off.events_processed),
        )
        if got != want
    ]
    if mismatches:
        raise ReproError(
            f"steady-state fast-forward diverged from full simulation at "
            f"iterations={iterations}: {', '.join(mismatches)}"
        )
    speedup = off_sec / auto_sec if auto_sec > 0 else 0.0
    if speedup < gate_floor:
        raise ReproError(
            f"steady-state speedup x{speedup:.1f} below the x{gate_floor:g} "
            f"floor at iterations={iterations} "
            f"(off {off_sec:.3f}s vs auto {auto_sec:.3f}s)"
        )
    steady = auto.steady
    return {
        "iterations": iterations,
        "off_sec": off_sec,
        "auto_sec": auto_sec,
        "steady_speedup": speedup,
        "gate_floor": gate_floor,
        "detected_at": steady.detected_at,
        "skipped": steady.skipped,
        "makespan": off.makespan,
    }


def _time_incremental(quick: bool) -> dict:
    """Prefix-checkpoint re-simulation (the tuner's re-probe shape):
    the same spec simulated repeatedly against a warm
    :class:`~repro.perf.incremental.CheckpointStore` restores the
    deepest iteration boundary and simulates only the final iteration
    plus the flush.  Byte-identity of the restored run against its cold
    twin is *asserted* — makespan, Chrome trace JSON, swap ledger —
    before the per-probe speedup is reported and gated."""
    from dataclasses import replace

    from repro.perf.incremental import CheckpointStore
    from repro.sim.trace import to_chrome_trace

    iterations = 6 if quick else 8
    gate_floor = 2.0 if quick else 3.0
    cold_repeats = 2 if quick else 3
    warm_repeats = 3 if quick else 5
    spec = _fig4_workload()
    config = replace(spec.config, iterations=iterations, steady_state="off")

    def run(checkpoints) -> tuple:
        t0 = time.perf_counter()
        result = HarmonySession(
            spec.model, spec.topology, config, checkpoints=checkpoints
        ).run()
        return time.perf_counter() - t0, result

    cold_sec = float("inf")
    for _ in range(cold_repeats):
        elapsed, cold = run(None)
        cold_sec = min(cold_sec, elapsed)

    store = CheckpointStore()
    run(store)  # donor: populates the store (one miss, boundary writes)
    warm_sec = float("inf")
    warm = None
    for _ in range(warm_repeats):
        elapsed, candidate = run(store)
        if elapsed < warm_sec:
            warm_sec, warm = elapsed, candidate

    mismatches = [
        name
        for name, got, want in (
            ("makespan", warm.makespan, cold.makespan),
            (
                "chrome_trace",
                json.dumps(to_chrome_trace(warm.trace), sort_keys=True),
                json.dumps(to_chrome_trace(cold.trace), sort_keys=True),
            ),
            ("swap_volume", dict(warm.stats._volume), dict(cold.stats._volume)),
            ("swap_events", dict(warm.stats._events), dict(cold.stats._events)),
            ("link_busy", warm.link_busy, cold.link_busy),
            ("events_processed", warm.events_processed, cold.events_processed),
        )
        if got != want
    ]
    if mismatches:
        raise ReproError(
            f"prefix-checkpoint restore diverged from the cold run at "
            f"iterations={iterations}: {', '.join(mismatches)}"
        )
    per_probe_speedup = cold_sec / warm_sec if warm_sec > 0 else 0.0
    if per_probe_speedup < gate_floor:
        raise ReproError(
            f"incremental per-probe speedup x{per_probe_speedup:.2f} below "
            f"the x{gate_floor:g} floor at iterations={iterations} "
            f"(cold {cold_sec * 1e3:.2f} ms vs warm {warm_sec * 1e3:.2f} ms)"
        )
    counters = store.counters()
    return {
        "iterations": iterations,
        "cold_sec": cold_sec,
        "warm_sec": warm_sec,
        "per_probe_speedup": per_probe_speedup,
        "gate_floor": gate_floor,
        "hit_rate": store.hit_rate,
        "saved_iterations": counters["saved_iterations"],
        "counters": counters,
    }


def _fleet_workload(num_gpus: int) -> tuple:
    """The fleet-scale setting shared by the timing and profile
    sections: harmony-dp over a commodity server, a small fixed
    per-replica workload so events grow linearly with devices."""
    model = zoo.synthetic_uniform(
        num_layers=4,
        param_bytes_per_layer=10 * MB,
        activation_bytes=2 * MB,
    )
    topology = presets.commodity_server(num_gpus=num_gpus)
    config = HarmonyConfig(
        parallelism=Parallelism.HARMONY_DP,
        batch=BatchConfig(microbatch_size=1, num_microbatches=2),
    )
    return model, topology, config


def _time_fleet(quick: bool) -> dict:
    """Events/sec as the simulated fleet grows: harmony-dp on a
    commodity server at 64-2048 GPUs, a small fixed per-replica
    workload.  The live loop's targeted wake-up keeps per-completion
    work O(dependents), so events/sec should degrade gently — a full
    device scan per completion collapses it quadratically.  The 2048
    point exists to catch costs that only turn over at rack scale
    (O(N) per-event scans, GC rescans of the live graph)."""
    sizes = (64, 256) if quick else (64, 256, 1024, 2048)
    points = []
    for num_gpus in sizes:
        model, topology, config = _fleet_workload(num_gpus)
        # A single 64-device run is ~80 ms of wall — short enough that
        # turbo bursts and allocator warmup swing the figure 2x run to
        # run, which poisons the self-relative scaling ratio.  Each
        # size gets one untimed warmup, then the small fleets are timed
        # as back-to-back blocks so every timed window covers at least
        # ~0.5 s; best-of-3 blocks is the least-interference estimate.
        # Planning produces no events, so it is timed separately: the
        # per-event figure covers the event-processing phase only, and
        # plan_sec keeps a planner blowup visible in its own column.
        # The collect() ahead of each block frees the previous run's
        # dead object graph so the timed allocation storm reuses warm
        # arenas instead of growing the heap across fragmented ones —
        # at 2048 devices that alone is worth ~20% of events/sec.
        block = max(1, 512 // num_gpus)
        HarmonySession(model, topology, config).run()
        best_run = float("inf")
        best_plan = 0.0
        for _ in range(3):
            gc.collect()
            plan_wall = 0.0
            run_wall = 0.0
            for _ in range(block):
                session = HarmonySession(model, topology, config)
                t0 = time.perf_counter()
                session.plan()
                t1 = time.perf_counter()
                result = session.run()
                plan_wall += t1 - t0
                run_wall += time.perf_counter() - t1
            if run_wall < best_run:
                best_run = run_wall
                best_plan = plan_wall
        events = result.events_processed * block
        points.append(
            {
                "devices": num_gpus,
                "wall_sec": best_run,
                "plan_sec": best_plan,
                "runs_per_block": block,
                "events": events,
                "events_per_sec": events / best_run if best_run > 0 else 0.0,
            }
        )
    return {"points": points}


def profile_run(quick: bool, top: int = 25) -> dict:
    """The ``bench --profile`` hook: one large-fleet run under
    ``cProfile``, reported as the top-``top`` functions by cumulative
    time.  Call counts are fully deterministic (the simulation is), so
    two profiles of the same tree differ only in wall numbers — which
    makes an O(N)-per-event scan stand out as a call count growing
    faster than the event count between fleet sizes.  This is the
    instrument the scaling fixes in this layer were found with."""
    import cProfile
    import pstats

    num_gpus = 256 if quick else 1024
    model, topology, config = _fleet_workload(num_gpus)
    profiler = cProfile.Profile()
    profiler.enable()
    result = HarmonySession(model, topology, config).run()
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows = []
    for func in stats.fcn_list[:top]:
        filename, lineno, name = func
        _, ncalls, tottime, cumtime, _ = stats.stats[func]
        short = filename.rsplit("/", 1)[-1] if filename else filename
        rows.append(
            {
                "function": f"{short}:{lineno}({name})",
                "ncalls": ncalls,
                "tottime_sec": tottime,
                "cumtime_sec": cumtime,
            }
        )
    return {
        "devices": num_gpus,
        "events": result.events_processed,
        "sort": "cumulative",
        "top": rows,
    }


def _time_serve(quick: bool) -> dict:
    """Closed-loop load against an in-process job server: sustained
    jobs/sec through the full admission -> fair queue -> supervised
    execution -> settle path, plus job-latency percentiles.  Inline
    isolation and an ephemeral state dir keep the measurement about
    the serving machinery, not process-pool spawn or fsync costs."""
    from repro.serve import ServeConfig, start_in_background
    from repro.serve.load import run_load
    from repro.serve.tenants import TenantPolicy

    clients = 3
    jobs_per_client = 4 if quick else 10
    config = ServeConfig(
        port=0,
        workers=2,
        isolation="inline",
        max_queue=256,
        default_tenant=TenantPolicy(max_jobs=64),
        quiet=True,
    )
    handle = start_in_background(config)
    try:
        load = run_load(
            handle.base_url, clients=clients, jobs_per_client=jobs_per_client
        )
        stats = handle.server.stats()
    finally:
        handle.drain()
    if load.jobs_failed:
        raise ReproError(f"serve load run failed {load.jobs_failed} job(s)")
    doc = load.to_json()
    doc["clients"] = clients
    doc["cache_hit_rate"] = stats.get("cache", {}).get("hit_rate", 0.0)
    return doc


def _time_recovery(quick: bool) -> dict:
    """The recovery-policy zoo on a fixed fault scenario: MTTR p50/p95
    and goodput per policy (see ``repro faults --recovery``).  The
    quantities are *simulated* seconds — deterministic on every host —
    so the regression gate guards the policies' goodput, not harness
    wall time: a policy whose goodput ratio collapses means recovery
    got more expensive, not that the runner got slower."""
    from repro.experiments.faults_degradation import (
        RECOVERY_SCHEMES,
        _percentile,
        run_recovery,
    )

    schemes = ("harmony-dp",) if quick else RECOVERY_SCHEMES
    t0 = time.perf_counter()
    rows = run_recovery(iterations=4, schemes=schemes)
    wall = time.perf_counter() - t0
    unrecovered = [f"{r.scheme}/{r.policy}" for r in rows if not r.recovered]
    if unrecovered:
        raise ReproError(
            "recovery bench: unrecovered cells: " + ", ".join(unrecovered)
        )
    policies: dict[str, dict] = {}
    for row in rows:
        entry = policies.setdefault(
            row.policy,
            {"mttr_p50": [], "mttr_p95": [], "goodput_ratio": []},
        )
        entry["mttr_p50"].append(row.mttr_p50)
        entry["mttr_p95"].append(row.mttr_p95)
        entry["goodput_ratio"].append(row.goodput_ratio)
    return {
        "wall_sec": wall,
        "iterations": 4,
        "schemes": list(schemes),
        "policies": {
            name: {
                # Aggregated across schemes: median of the per-cell
                # medians, worst of the tails and ratios (the one-sided
                # gate watches the weakest scheme).
                "mttr_p50": _percentile(sorted(e["mttr_p50"]), 0.50),
                "mttr_p95": max(e["mttr_p95"]),
                "goodput_ratio": min(e["goodput_ratio"]),
            }
            for name, e in policies.items()
        },
    }


#: The harness sections, in report order.
_SECTIONS = (
    "fig4", "fig4_scaled", "cache", "incremental", "fleet_scale",
    "sweep", "steady", "serve", "recovery",
)


def _bench_section(payload: tuple[str, bool, int]) -> dict:
    """Measure one section (top-level so a supervisor worker can run
    it); ``payload`` is ``(section name, quick, jobs)``."""
    name, quick, jobs = payload
    if name == "fig4":
        return _time_single(_fig4_workload(), 5 if quick else 20)
    if name == "fig4_scaled":
        return _time_single(
            _fig4_workload(num_layers=8, num_microbatches=8),
            3 if quick else 8,
        )
    if name == "cache":
        return _time_cache(_fig4_workload())
    if name == "incremental":
        return _time_incremental(quick)
    if name == "fleet_scale":
        return _time_fleet(quick)
    if name == "sweep":
        return _time_sweep(jobs, quick)
    if name == "steady":
        return _time_steady(quick)
    if name == "serve":
        return _time_serve(quick)
    if name == "recovery":
        return _time_recovery(quick)
    raise ReproError(f"unknown bench section: {name!r}")


def run_bench(
    quick: bool = False, jobs: int = 4, supervisor=None, profile: bool = False
) -> dict:
    """The full harness; returns the ``BENCH_sim.json`` payload.

    With a ``supervisor`` (the CLI's ``--journal``) each section runs
    as a journaled task, so a crashed benchmark resumes at section
    granularity.  Replayed sections report the wall times recorded
    before the interruption — a resumed benchmark is a completion of
    the original measurement, not a fresh one.
    """
    payloads = [(name, quick, jobs) for name in _SECTIONS]
    if supervisor is not None:
        from repro.supervisor import Task

        tasks = [
            Task(
                key=f"bench:{name}:quick={quick}:jobs={jobs}",
                fn=_bench_section,
                payload=payload,
                label=f"bench:{name}",
            )
            for payload in payloads
            for name in (payload[0],)
        ]
        sections = supervisor.run_tasks(tasks)
    else:
        sections = [_bench_section(payload) for payload in payloads]
    current = dict(zip(_SECTIONS, sections))
    baseline = json.loads(json.dumps(PRE_PR_BASELINE))  # deep copy
    # Golden traces are unchanged, so pre/post execute the same events:
    # baseline events/sec follows from its wall time and today's count.
    for name in ("fig4", "fig4_scaled"):
        wall = baseline[name]["wall_sec"]
        baseline[name]["events_per_sec"] = (
            current[name]["events"] / wall if wall > 0 else 0.0
        )
    report = {
        "schema": SCHEMA,
        "scheduler_version": SCHEDULER_VERSION,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "baseline": baseline,
        "current": current,
        "speedup_vs_baseline": {
            name: baseline[name]["wall_sec"] / current[name]["wall_sec"]
            for name in ("fig4", "fig4_scaled")
            if current[name]["wall_sec"] > 0
        },
    }
    if profile:
        # After the timed sections so the profiler's ~2x interpreter
        # overhead never contaminates a gated measurement.  The gate
        # (:func:`check_regression`) ignores this key.
        report["profile"] = profile_run(quick)
    return report


def render(report: dict) -> str:
    cur = report["current"]
    speedup = report["speedup_vs_baseline"]
    lines = [
        f"benchmark harness (scheduler_version={report['scheduler_version']}, "
        f"{'quick' if report['quick'] else 'full'} mode)",
        "",
        "single run (build + plan + simulate, min wall time):",
    ]
    for name in ("fig4", "fig4_scaled"):
        c = cur[name]
        lines.append(
            f"  {name:<12} {c['wall_sec'] * 1e3:8.3f} ms   "
            f"{c['events_per_sec']:>12,.0f} events/s   "
            f"({c['events']} events, x{speedup.get(name, 0):.2f} vs "
            f"pre-optimization baseline)"
        )
    cache = cur["cache"]
    lines += [
        "",
        "run cache:",
        f"  fresh {cache['fresh_sec'] * 1e3:.3f} ms -> hit "
        f"{cache['hit_sec'] * 1e3:.3f} ms "
        f"(x{cache['hit_speedup']:.0f}), hit rate "
        f"{100 * cache['hit_rate']:.0f}%",
    ]
    incremental = cur.get("incremental")
    if incremental is not None:
        lines += [
            "",
            f"incremental re-simulation ({incremental['iterations']} "
            "iterations, byte-identity asserted):",
            f"  cold {incremental['cold_sec'] * 1e3:.3f} ms -> warm restore "
            f"{incremental['warm_sec'] * 1e3:.3f} ms "
            f"(per-probe x{incremental['per_probe_speedup']:.2f}, floor "
            f"x{incremental['gate_floor']:g}; prefix hit rate "
            f"{100 * incremental['hit_rate']:.0f}%, "
            f"{incremental['saved_iterations']} iteration(s) saved)",
        ]
    fleet = cur.get("fleet_scale")
    if fleet is not None:
        lines += ["", "fleet scale (harmony-dp, events/sec by device count):"]
        for point in fleet["points"]:
            plan_sec = point.get("plan_sec")
            plan = f"  plan {plan_sec * 1e3:8.1f} ms" if plan_sec else ""
            lines.append(
                f"  {point['devices']:>5} devices "
                f"{point['wall_sec'] * 1e3:10.1f} ms   "
                f"{point['events_per_sec']:>12,.0f} events/s   "
                f"({point['events']:,} events){plan}"
            )
    sweep = cur["sweep"]
    lines += [
        "",
        f"sweep scaling ({sweep['points']} grid points):",
        f"  jobs=1 {sweep['serial_sec']:.3f} s -> jobs={sweep['jobs']} "
        f"{sweep['parallel_sec']:.3f} s (x{sweep['scaling']:.2f})",
    ]
    steady = cur["steady"]
    lines += [
        "",
        f"steady-state fast-forward ({steady['iterations']:,} iterations, "
        "identical results asserted):",
        f"  off {steady['off_sec']:.3f} s -> auto {steady['auto_sec']:.4f} s "
        f"(steady_speedup x{steady['steady_speedup']:.0f}, floor "
        f"x{steady['gate_floor']:g}; detected at iteration "
        f"{steady['detected_at']}, {steady['skipped']:,} skipped)",
    ]
    serve = cur.get("serve")
    if serve is not None:
        lines += [
            "",
            f"serve load ({serve['clients']} closed-loop clients, "
            f"{serve['jobs_done']} jobs):",
            f"  {serve['jobs_per_sec']:.1f} jobs/s sustained; latency "
            f"p50 {serve['p50_ms']:.1f} ms, p95 {serve['p95_ms']:.1f} ms, "
            f"p99 {serve['p99_ms']:.1f} ms "
            f"(cache hit rate {100 * serve['cache_hit_rate']:.0f}%, "
            f"{serve['rejections']} rejection(s))",
        ]
    recovery = cur.get("recovery")
    if recovery is not None:
        lines += [
            "",
            f"recovery-policy zoo ({', '.join(recovery['schemes'])}; "
            "simulated MTTR and goodput, worst scheme per policy):",
        ]
        for name, p in recovery["policies"].items():
            lines.append(
                f"  {name:<17} mttr p50 {p['mttr_p50']:7.3f} s  "
                f"p95 {p['mttr_p95']:7.3f} s   goodput ratio "
                f"{p['goodput_ratio']:.3f}"
            )
    profile = report.get("profile")
    if profile is not None:
        lines += [
            "",
            f"profile ({profile['devices']} devices, "
            f"{profile['events']:,} events, top {len(profile['top'])} "
            f"by {profile['sort']} time):",
            f"  {'ncalls':>10}  {'tottime':>9}  {'cumtime':>9}  function",
        ]
        for row in profile["top"]:
            lines.append(
                f"  {row['ncalls']:>10}  {row['tottime_sec']:9.3f}  "
                f"{row['cumtime_sec']:9.3f}  {row['function']}"
            )
    return "\n".join(lines)


def write_json(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def check_regression(
    report: dict, committed_path: str, threshold: float = 0.30
) -> int:
    """CI gate: measured fig4 events/sec must not fall more than
    ``threshold`` below the committed baseline figure.  Returns a
    process exit code (0 ok, 1 regression)."""
    try:
        with open(committed_path) as fh:
            committed = json.load(fh)
    except OSError as exc:
        print(f"bench check: cannot read {committed_path}: {exc}", file=sys.stderr)
        return 1
    reference = committed["baseline"]["fig4"].get("events_per_sec")
    if not reference:
        wall = committed["baseline"]["fig4"]["wall_sec"]
        reference = committed["current"]["fig4"]["events"] / wall
    measured = report["current"]["fig4"]["events_per_sec"]
    floor = (1.0 - threshold) * reference
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(
        f"bench check: {measured:,.0f} events/s vs committed baseline "
        f"{reference:,.0f} (floor {floor:,.0f}): {verdict}"
    )
    failed = measured < floor

    steady = report["current"].get("steady")
    if steady is not None:
        # Same one-sided philosophy: the absolute gate_floor already
        # failed the run inside _time_steady if fast-forward broke, so
        # the committed comparison only guards against a *relative*
        # collapse — and only when the committed file measured the same
        # iteration count (quick and full points aren't comparable).
        committed_steady = committed.get("current", {}).get("steady")
        speedup = steady["steady_speedup"]
        if (
            committed_steady is not None
            and committed_steady.get("iterations") == steady["iterations"]
        ):
            steady_floor = (1.0 - threshold) * committed_steady["steady_speedup"]
        else:
            steady_floor = steady["gate_floor"]
        steady_verdict = "ok" if speedup >= steady_floor else "REGRESSION"
        print(
            f"bench check: steady_speedup x{speedup:.0f} at "
            f"{steady['iterations']:,} iterations "
            f"(floor x{steady_floor:.0f}): {steady_verdict}"
        )
        failed = failed or speedup < steady_floor

    incremental = report["current"].get("incremental")
    if incremental is not None:
        # One-sided, like the sections above: the absolute gate_floor
        # already failed the run inside _time_incremental; the committed
        # comparison guards a relative collapse at the same depth.
        committed_inc = committed.get("current", {}).get("incremental")
        speedup = incremental["per_probe_speedup"]
        if (
            committed_inc is not None
            and committed_inc.get("iterations") == incremental["iterations"]
        ):
            inc_floor = (1.0 - threshold) * committed_inc["per_probe_speedup"]
        else:
            inc_floor = incremental["gate_floor"]
        inc_verdict = "ok" if speedup >= inc_floor else "REGRESSION"
        print(
            f"bench check: incremental per-probe x{speedup:.2f} at "
            f"{incremental['iterations']} iterations "
            f"(floor x{inc_floor:.2f}): {inc_verdict}"
        )
        failed = failed or speedup < inc_floor

    fleet = report["current"].get("fleet_scale")
    if fleet is not None:
        committed_fleet = committed.get("current", {}).get("fleet_scale")
        committed_points = {
            p["devices"]: p for p in (committed_fleet or {}).get("points", ())
        }
        # Gate only the largest fleet present in both files: the small
        # fleets finish in ~100 ms, where scheduler jitter alone swings
        # events/sec by 2x and a 30% floor would fire on noise.  The
        # largest run is the one the gate exists for anyway — it is
        # where an event-loop regression costs the most.
        shared = [
            p for p in fleet["points"] if p["devices"] in committed_points
        ]
        if shared:
            point = max(shared, key=lambda p: p["devices"])
            reference = committed_points[point["devices"]]
            fleet_floor = (1.0 - threshold) * reference["events_per_sec"]
            measured_eps = point["events_per_sec"]
            fleet_verdict = "ok" if measured_eps >= fleet_floor else "REGRESSION"
            print(
                f"bench check: fleet {point['devices']} devices "
                f"{measured_eps:,.0f} events/s "
                f"(floor {fleet_floor:,.0f}): {fleet_verdict}"
            )
            failed = failed or measured_eps < fleet_floor
        # Scaling-shape gate, host-independent because it compares the
        # report against itself: the largest fleet's events/sec must
        # hold >= 60% of the 64-device figure.  This is the near-linear
        # scaling claim in absolute form — an O(N) per-event scan (or a
        # GC rescan regression) drags the big-fleet point to a fraction
        # of the small one long before the cross-host floor above fires.
        by_devices = {p["devices"]: p for p in fleet["points"]}
        small = by_devices.get(64)
        largest = max(fleet["points"], key=lambda p: p["devices"])
        if small is not None and largest["devices"] > 64:
            ratio = (
                largest["events_per_sec"] / small["events_per_sec"]
                if small["events_per_sec"] > 0
                else 0.0
            )
            ratio_floor = 0.60
            ratio_verdict = "ok" if ratio >= ratio_floor else "REGRESSION"
            print(
                f"bench check: fleet scaling {largest['devices']} vs 64 "
                f"devices holds {100 * ratio:.0f}% of events/s "
                f"(floor {100 * ratio_floor:.0f}%): {ratio_verdict}"
            )
            failed = failed or ratio < ratio_floor

    recovery = report["current"].get("recovery")
    if recovery is not None:
        # Goodput ratios are simulated (host-independent), but the gate
        # stays one-sided at the usual threshold: recovery getting
        # *cheaper* is progress, only a collapse fails.  Comparable only
        # when the committed run covered the same schemes.
        committed_rec = committed.get("current", {}).get("recovery")
        comparable = (
            committed_rec is not None
            and committed_rec.get("schemes") == recovery["schemes"]
        )
        for name, p in recovery["policies"].items():
            ratio = p["goodput_ratio"]
            if comparable and name in committed_rec["policies"]:
                rec_floor = (1.0 - threshold) * (
                    committed_rec["policies"][name]["goodput_ratio"]
                )
            else:
                rec_floor = 0.0  # absolute sanity: recovered with progress
            rec_verdict = "ok" if ratio >= rec_floor and ratio > 0 else "REGRESSION"
            print(
                f"bench check: recovery {name} goodput ratio {ratio:.3f} "
                f"(floor {rec_floor:.3f}): {rec_verdict}"
            )
            failed = failed or ratio < rec_floor or ratio <= 0

    return 1 if failed else 0
