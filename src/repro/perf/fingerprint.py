"""Content addressing for simulation runs.

A run is fully determined by its inputs — the model graph, the server
topology, and the :class:`~repro.core.config.HarmonyConfig` — plus the
simulator's own semantics.  :func:`fingerprint` hashes a canonical form
of all four into a stable hex digest, so two specs collide exactly when
they would simulate identically:

* every dataclass field that shapes the run is included (enums by
  value, floats by ``repr`` so no precision is lost);
* derived caches and memoized attributes (leading-underscore fields,
  ``lazy_attr`` values) are excluded;
* :data:`SCHEDULER_VERSION` is mixed in as a salt — bump it whenever a
  change alters what any scheduler or the executor produces, and every
  previously cached run silently misses instead of serving stale
  results.

Anything unhashable (a user-supplied callable smuggled into a config)
raises :class:`FingerprintError`; callers treat such specs as
uncacheable rather than guessing.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro.core.config import HarmonyConfig
from repro.errors import ReproError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph

#: Salt mixed into every fingerprint.  Bump on any change to scheduler,
#: decomposer, executor, memory-manager, or cost-model *semantics* (a
#: change that could alter a RunResult); pure refactors keep it.
#: 2026.08-pr5: steady-state cycle engine — multi-iteration healthy
#: runs use the rebased-clock executor path and may carry compressed
#: periodic traces, and ``HarmonyConfig.steady_state`` joined the
#: canonical form.
#: 2026.08-pr6: scheduler zoo — pipedream-1f1b and dapple joined the
#: registry, and every RunResult now carries per-device peak
#: activation-class residency (``DeviceReport.peak_activation``).
SCHEDULER_VERSION = "2026.08-pr6"


class FingerprintError(ReproError):
    """The spec contains something with no canonical form."""


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable primitives, deterministically."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; json's float formatting
        # also does, but being explicit keeps the canonical form
        # independent of the serializer.
        return ["f", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, _canonical(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if not f.name.startswith("_")
        }
        return ["dc", type(obj).__name__, fields]
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(item) for item in obj)
    if isinstance(obj, dict):
        items = [(_canonical(k), _canonical(v)) for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["map", items]
    raise FingerprintError(
        f"cannot canonicalize {type(obj).__name__!r} for fingerprinting"
    )


def _canonical_topology(topology: Topology) -> Any:
    """The topology's identity: nodes, link specs, and wiring.

    ``Topology`` is a dataclass, but its route/host caches and adjacency
    are derived or order-sensitive representations, so the canonical
    form is rebuilt from first principles: sorted devices, sorted
    switches, and sorted (link spec, endpoint pair) edges.
    """
    edges: dict[str, tuple[str, str]] = {}
    for node, neighbors in topology._adjacency.items():
        for neighbor, link_name in neighbors:
            edges[link_name] = tuple(sorted((node, neighbor)))
    return {
        "name": topology.name,
        "devices": [
            _canonical(topology.devices[name]) for name in sorted(topology.devices)
        ],
        "switches": sorted(topology.switches),
        "links": [
            [_canonical(topology.links[name]), list(edges.get(name, ()))]
            for name in sorted(topology.links)
        ],
    }


def canonical_spec(
    model: ModelGraph, topology: Topology, config: HarmonyConfig
) -> dict:
    """The full canonical form of one run spec (pre-hash, for tests)."""
    return {
        "version": SCHEDULER_VERSION,
        "model": _canonical(model),
        "topology": _canonical_topology(topology),
        "config": _canonical(config),
    }


def fingerprint(
    model: ModelGraph, topology: Topology, config: HarmonyConfig
) -> str:
    """Stable content address of one run spec (sha256 hex digest)."""
    blob = json.dumps(
        canonical_spec(model, topology, config),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def base_fingerprint(
    model: ModelGraph, topology: Topology, config: HarmonyConfig
) -> str:
    """The hierarchical prefix key: hash of the iteration *process*.

    Two runs share simulated-iteration prefixes exactly when they run
    the same model on the same topology under the same config *modulo
    iteration count* — iteration ``k`` of a 4-iteration run is bitwise
    identical to iteration ``k`` of a 100-iteration run on the rebased
    cycle path.  So the prefix-checkpoint store
    (:mod:`repro.perf.incremental`) keys snapshots by this digest plus
    the iteration-boundary index, and ``iterations`` is stripped from
    the canonical form.

    The *resolved* steady-state mode is mixed in instead of the raw
    ``steady_state`` field: ``None`` inherits a process-global default
    (:func:`repro.steady.resolve_mode`), and an ``off`` run must never
    restore a snapshot whose donor was detecting cycles (or vice versa)
    — the detection metadata carried by the snapshot differs.
    """
    from repro.steady import resolve_mode

    base_config = dataclasses.replace(config, iterations=1, steady_state=None)
    spec = canonical_spec(model, topology, base_config)
    spec["kind"] = "prefix-checkpoint"
    spec["steady_mode"] = resolve_mode(config.steady_state).value
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
