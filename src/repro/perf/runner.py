"""Parallel sweep execution with deterministic ordering.

A sweep is a list of :class:`RunSpec` — independent ``(model,
topology, config)`` points.  :class:`SweepRunner` evaluates them:

* cache first — specs whose fingerprint is already in the
  :class:`~repro.perf.cache.RunCache` never reach a worker;
* misses fan out across a ``ProcessPoolExecutor`` (``jobs > 1``) or
  run inline (``jobs = 1``, also the fallback when the platform cannot
  fork/spawn workers);
* results come back **in submission order** regardless of completion
  order — the determinism rule that makes ``--jobs 4`` output
  byte-identical to ``--jobs 1``.

Workers re-raise nothing: each returns either the result, the
:class:`~repro.errors.ReproError` the simulation raised, or — for an
unexpected non-domain exception — a picklable
:class:`~repro.errors.WorkerError` wrapping it, and the parent
re-raises (default) or hands exceptions back in-slot
(``return_exceptions=True`` — how ``compare`` reports infeasible
schemes without abandoning the sweep).  One buggy spec therefore can
never tear down the pool or lose the rest of the sweep.

For crash/hang tolerance on top of this (worker watchdogs, retries,
pool respawn, resumable journals) wrap the sweep in
:class:`repro.supervisor.Supervisor` instead of calling
:class:`SweepRunner` directly.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

from repro.core.config import HarmonyConfig
from repro.errors import ReproError, WorkerError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.perf.cache import RunCache
from repro.perf.fingerprint import FingerprintError, fingerprint
from repro.sim.result import RunResult

if TYPE_CHECKING:
    from repro.perf.incremental import CheckpointStore

_MISS = RunCache.MISS


@dataclass
class RunSpec:
    """One point of a sweep."""

    model: ModelGraph
    topology: Topology
    config: HarmonyConfig = field(default_factory=HarmonyConfig)
    label: str = ""


def spec_key(spec: RunSpec) -> str | None:
    """The run-cache/journal key for ``spec``, or ``None`` when the spec
    has no canonical content address (uncacheable)."""
    try:
        return "result:" + fingerprint(spec.model, spec.topology, spec.config)
    except FingerprintError:
        return None
    except Exception:
        # A malformed spec (wrong types smuggled into the dataclass) has
        # no address either; let the worker report the real failure.
        return None


def _execute_spec(
    spec: RunSpec,
    checkpoints: "CheckpointStore | None" = None,
    checkpoint_dir: str | None = None,
) -> RunResult | ReproError:
    """Worker entry point: simulate one spec, returning (never raising)
    domain errors so one infeasible point cannot poison the pool.

    ``checkpoints`` carries a live prefix-checkpoint store on the inline
    path; pool workers instead receive ``checkpoint_dir`` (the store
    holds a lock and cannot cross the pickle boundary) and reopen a
    store over the shared directory.

    Unexpected non-domain exceptions are wrapped in a picklable
    :class:`~repro.errors.WorkerError` rather than re-raised: a raw
    third-party exception may not survive the pickle trip back to the
    parent, and an unpicklable one aborts the entire pool.
    """
    # Imported here, not at module top: workers import this module by
    # name, and the session layer pulls in the full scheduler stack.
    from repro.core.session import HarmonySession

    if checkpoints is None and checkpoint_dir is not None:
        from repro.perf.incremental import CheckpointStore

        checkpoints = CheckpointStore(checkpoint_dir)
    try:
        return HarmonySession(
            spec.model, spec.topology, spec.config, checkpoints=checkpoints
        ).run()
    except ReproError as exc:
        return exc
    except Exception as exc:  # noqa: BLE001 — the wrap is the point
        return WorkerError.from_exception(spec.label, exc)


class SweepRunner:
    """Evaluate run specs across processes, results in spec order."""

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | None = None,
        checkpoints: "CheckpointStore | None" = None,
    ):
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Prefix-checkpoint store shared across the sweep's specs —
        #: multi-iteration specs that share a per-iteration prefix
        #: (same point at different depths, or steady-off re-probes)
        #: restore instead of cold-starting.  Pool workers need the
        #: store to be disk-backed (``checkpoint_dir`` set); a memory-
        #: only store still accelerates the inline path.
        self.checkpoints = checkpoints

    def _key(self, spec: RunSpec) -> str | None:
        if self.cache is None:
            return None
        return spec_key(spec)  # None = uncacheable; simulate every time

    def run_all(
        self, specs: list[RunSpec], return_exceptions: bool = False
    ) -> list[RunResult | ReproError]:
        """All specs' results, index-aligned with ``specs``.

        With ``return_exceptions`` the slot of a failed spec holds the
        :class:`ReproError` instead; otherwise the first failure (in
        spec order) is raised after the sweep drains.
        """
        results: list[RunResult | ReproError | None] = [None] * len(specs)
        pending: list[int] = []
        for i, spec in enumerate(specs):
            key = self._key(spec)
            cached = self.cache.get(key, _MISS) if key is not None else _MISS
            if cached is not _MISS:
                results[i] = cached
            else:
                pending.append(i)

        if pending:
            store = self.checkpoints
            if self.jobs == 1 or len(pending) == 1:
                computed = [
                    _execute_spec(specs[i], checkpoints=store) for i in pending
                ]
            else:
                ckpt_dir = store.checkpoint_dir if store is not None else None
                fn = (
                    partial(_execute_spec, checkpoint_dir=ckpt_dir)
                    if ckpt_dir is not None
                    else _execute_spec
                )
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    # pool.map preserves input order — completion order
                    # never leaks into the result list.
                    computed = list(
                        pool.map(fn, [specs[i] for i in pending])
                    )
            for i, outcome in zip(pending, computed):
                results[i] = outcome
                key = self._key(specs[i])
                if key is not None and isinstance(outcome, RunResult):
                    self.cache.put(key, outcome)

        if not return_exceptions:
            for outcome in results:
                if isinstance(outcome, ReproError):
                    raise outcome
        return results  # type: ignore[return-value]

    def describe(self) -> str:
        cache = f"; {self.cache.describe()}" if self.cache is not None else ""
        ckpt = (
            f"; {self.checkpoints.describe()}"
            if self.checkpoints is not None
            else ""
        )
        return f"sweep runner: jobs={self.jobs}{cache}{ckpt}"
