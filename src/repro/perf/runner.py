"""Parallel sweep execution with deterministic ordering.

A sweep is a list of :class:`RunSpec` — independent ``(model,
topology, config)`` points.  :class:`SweepRunner` evaluates them:

* cache first — specs whose fingerprint is already in the
  :class:`~repro.perf.cache.RunCache` never reach a worker;
* misses fan out across a ``ProcessPoolExecutor`` (``jobs > 1``) or
  run inline (``jobs = 1``, also the fallback when the platform cannot
  fork/spawn workers);
* results come back **in submission order** regardless of completion
  order — the determinism rule that makes ``--jobs 4`` output
  byte-identical to ``--jobs 1``.

Workers re-raise nothing: each returns either the result or the
:class:`~repro.errors.ReproError` the simulation raised, and the
parent re-raises (default) or hands exceptions back in-slot
(``return_exceptions=True`` — how ``compare`` reports infeasible
schemes without abandoning the sweep).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.config import HarmonyConfig
from repro.errors import ReproError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.perf.cache import RunCache
from repro.perf.fingerprint import FingerprintError, fingerprint
from repro.sim.result import RunResult


@dataclass
class RunSpec:
    """One point of a sweep."""

    model: ModelGraph
    topology: Topology
    config: HarmonyConfig = field(default_factory=HarmonyConfig)
    label: str = ""


def _execute_spec(spec: RunSpec) -> RunResult | ReproError:
    """Worker entry point: simulate one spec, returning (never raising)
    domain errors so one infeasible point cannot poison the pool."""
    # Imported here, not at module top: workers import this module by
    # name, and the session layer pulls in the full scheduler stack.
    from repro.core.session import HarmonySession

    try:
        return HarmonySession(spec.model, spec.topology, spec.config).run()
    except ReproError as exc:
        return exc


class SweepRunner:
    """Evaluate run specs across processes, results in spec order."""

    def __init__(
        self,
        jobs: int = 1,
        cache: RunCache | None = None,
    ):
        if jobs < 1:
            raise ReproError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache

    def _key(self, spec: RunSpec) -> str | None:
        if self.cache is None:
            return None
        try:
            return "result:" + fingerprint(spec.model, spec.topology, spec.config)
        except FingerprintError:
            return None  # uncacheable spec; simulate it every time

    def run_all(
        self, specs: list[RunSpec], return_exceptions: bool = False
    ) -> list[RunResult | ReproError]:
        """All specs' results, index-aligned with ``specs``.

        With ``return_exceptions`` the slot of a failed spec holds the
        :class:`ReproError` instead; otherwise the first failure (in
        spec order) is raised after the sweep drains.
        """
        results: list[RunResult | ReproError | None] = [None] * len(specs)
        pending: list[int] = []
        for i, spec in enumerate(specs):
            key = self._key(spec)
            cached = self.cache.get(key) if key is not None else None
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                computed = [_execute_spec(specs[i]) for i in pending]
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    # pool.map preserves input order — completion order
                    # never leaks into the result list.
                    computed = list(
                        pool.map(_execute_spec, [specs[i] for i in pending])
                    )
            for i, outcome in zip(pending, computed):
                results[i] = outcome
                key = self._key(specs[i])
                if key is not None and isinstance(outcome, RunResult):
                    self.cache.put(key, outcome)

        if not return_exceptions:
            for outcome in results:
                if isinstance(outcome, ReproError):
                    raise outcome
        return results  # type: ignore[return-value]

    def describe(self) -> str:
        cache = f"; {self.cache.describe()}" if self.cache is not None else ""
        return f"sweep runner: jobs={self.jobs}{cache}"
