"""Performance layer: run fingerprinting, caching, and parallel sweeps.

The CLI commands and the tuner all reduce to the same shape of work —
evaluate many independent ``(model, topology, config)`` points — and
this package gives that shape its economics:

* :mod:`repro.perf.fingerprint` — a stable content address for one run
  spec (canonical hash of config + topology + model graph + a scheduler
  version salt), so "the same simulation" is a checkable identity.
* :mod:`repro.perf.cache` — :class:`RunCache`, an in-memory tier with
  an optional on-disk tier keyed by those fingerprints.  A cache hit is
  byte-identical to a fresh run (tested) because entries round-trip
  through the same serialized form.
* :mod:`repro.perf.incremental` — :class:`CheckpointStore` and the
  prefix-checkpoint machinery: multi-iteration runs snapshot their
  state at iteration boundaries under a per-iteration-stable
  :func:`base_fingerprint`, and later runs of the same point (at any
  depth) restore the deepest shared boundary and simulate only the
  suffix — byte-identical to a cold run.
* :mod:`repro.perf.runner` — :class:`SweepRunner`, which fans a list of
  :class:`RunSpec` out across a ``ProcessPoolExecutor`` with
  deterministic (submission-order) result ordering, consulting the
  cache first.
* :mod:`repro.perf.bench` — the tracked benchmark harness behind
  ``python -m repro bench`` and the repo-root ``BENCH_sim.json``.
"""

from repro.perf.cache import RunCache
from repro.perf.fingerprint import (
    SCHEDULER_VERSION,
    base_fingerprint,
    fingerprint,
)
from repro.perf.incremental import CheckpointStore, Snapshot
from repro.perf.runner import RunSpec, SweepRunner

__all__ = [
    "CheckpointStore",
    "RunCache",
    "RunSpec",
    "Snapshot",
    "SweepRunner",
    "SCHEDULER_VERSION",
    "base_fingerprint",
    "fingerprint",
]
