"""Physical units and formatting helpers.

The whole library uses a single convention:

* **bytes** for memory and data volume (``int`` or ``float``),
* **seconds** for time (``float``),
* **FLOPs** for compute work (``float``),
* **bytes/second** for bandwidth,
* **FLOP/s** for compute throughput.

Constants here are the only place unit magnitudes appear; everything else
imports them so "GB" means the same thing in the hardware model, the
memory manager and the benchmarks.  Decimal (SI) units are used for
bandwidth and FLOPs (matching vendor datasheets); binary units (GiB) are
used for memory capacity (matching how GPU memory is specified), with the
paper-facing helpers reporting decimal GB because the paper's Fig. 2 axes
are labelled "GB".
"""

from __future__ import annotations

# --- byte units ---------------------------------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1024
MIB = 1024**2
GIB = 1024**3

# --- time units ---------------------------------------------------------
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0

# --- compute units ------------------------------------------------------
GFLOP = 1e9
TFLOP = 1e12
PFLOP = 1e15
EFLOP = 1e18
ZFLOP = 1e21

# --- dtype sizes --------------------------------------------------------
FP16_BYTES = 2
FP32_BYTES = 4
FP64_BYTES = 8


def fmt_bytes(n: float) -> str:
    """Render a byte count in a human-friendly decimal unit.

    >>> fmt_bytes(1_500_000_000)
    '1.50 GB'
    >>> fmt_bytes(2048)
    '2.05 KB'
    """
    sign = "-" if n < 0 else ""
    n = abs(float(n))
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= unit:
            return f"{sign}{n / unit:.2f} {name}"
    return f"{sign}{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Render a duration with an adaptive unit.

    >>> fmt_time(0.0025)
    '2.50 ms'
    >>> fmt_time(90)
    '1.50 min'
    """
    sign = "-" if seconds < 0 else ""
    s = abs(float(seconds))
    if s >= 86_400:
        return f"{sign}{s / 86_400:.2f} days"
    if s >= 3_600:
        return f"{sign}{s / 3_600:.2f} h"
    if s >= 60:
        return f"{sign}{s / 60:.2f} min"
    if s >= 1:
        return f"{sign}{s:.2f} s"
    if s >= MSEC:
        return f"{sign}{s / MSEC:.2f} ms"
    return f"{sign}{s / USEC:.2f} us"


def fmt_flops(flops: float) -> str:
    """Render a FLOP count with an adaptive unit.

    >>> fmt_flops(3.14e23)
    '314.00 ZFLOPs'
    """
    sign = "-" if flops < 0 else ""
    f = abs(float(flops))
    for unit, name in (
        (ZFLOP, "ZFLOPs"),
        (EFLOP, "EFLOPs"),
        (PFLOP, "PFLOPs"),
        (TFLOP, "TFLOPs"),
        (GFLOP, "GFLOPs"),
    ):
        if f >= unit:
            return f"{sign}{f / unit:.2f} {name}"
    return f"{sign}{f:.0f} FLOPs"


def fmt_count(n: float) -> str:
    """Render a large count (e.g. a parameter count) compactly.

    >>> fmt_count(175_000_000_000)
    '175.0B'
    >>> fmt_count(60_000)
    '60.0K'
    """
    sign = "-" if n < 0 else ""
    x = abs(float(n))
    for unit, name in ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K")):
        if x >= unit:
            return f"{sign}{x / unit:.1f}{name}"
    return f"{sign}{x:.0f}"
