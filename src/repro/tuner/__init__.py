"""Performance tuner: profile-guided search over task granularity.

The paper (§3, Fig. 3) sketches a Performance Tuner that profiles
runtime behaviour and feeds the Task Decomposer and Scheduler; §4 names
the underlying problem the "memory-performance tango": pack size and
microbatch size jointly determine footprint and throughput, backward
passes want different granularity than forward, and double-buffered
prefetch trades memory for overlap.  This package implements that
tuner as a deterministic profile-guided search (the paper's suggested
RL agent is one possible driver; the search objective is identical).
"""

from repro.tuner.profiler import ProfilePoint, profile_configuration
from repro.tuner.search import TuneResult, tune
from repro.tuner.tango import tango_surface, prefetch_tradeoff
from repro.tuner.online import AnnealResult, anneal

__all__ = [
    "ProfilePoint",
    "profile_configuration",
    "TuneResult",
    "tune",
    "tango_surface",
    "prefetch_tradeoff",
    "anneal",
    "AnnealResult",
]
