"""Online tuning by simulated annealing.

The paper (§3) suggests "a reinforcement learning agent can be used for
such online tuning" of task combinations.  This module provides a
learning-driven search over the same space as the grid tuner —
(pack size, microbatch split, prefetch) — using simulated annealing
with a deterministic seeded RNG: each step profiles one configuration
(one simulated iteration, exactly what an online agent would observe),
proposes a neighbour, and accepts uphill moves with a temperature-
decayed probability.

Annealing reaches near-grid-optimal configurations while profiling far
fewer points than the exhaustive grid — the property that matters for
*online* tuning, where every probe costs a real training iteration.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import Parallelism
from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.tuner.profiler import ProfilePoint, profile_configuration

if TYPE_CHECKING:
    from repro.perf.incremental import CheckpointStore


@dataclass(frozen=True)
class _Config:
    pack_size: int
    microbatch_size: int
    prefetch: bool


@dataclass
class AnnealResult:
    best: ProfilePoint
    history: list[ProfilePoint] = field(default_factory=list)
    #: Prefix-checkpoint accounting for the anneal's probes (zero
    #: without a store).
    prefix_hits: int = 0
    prefix_misses: int = 0
    saved_iterations: int = 0

    @property
    def probes(self) -> int:
        return len(self.history)

    @property
    def prefix_hit_rate(self) -> float:
        total = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / total if total else 0.0


def _splits_of(minibatch: int) -> list[int]:
    return [s for s in range(1, minibatch + 1) if minibatch % s == 0]


def anneal(
    model: ModelGraph,
    topology: Topology,
    minibatch_per_replica: int,
    parallelism: Parallelism | str = Parallelism.HARMONY_PP,
    steps: int = 24,
    initial_temperature: float = 0.3,
    seed: int = 0,
    profile_iterations: int = 1,
    steady_state: "str | None" = None,
    checkpoints: "CheckpointStore | None" = None,
) -> AnnealResult:
    """Anneal over (pack, microbatch split, prefetch).

    ``steps`` bounds the number of profiled configurations — the
    online-tuning budget.  Deterministic for a given ``seed``.

    ``profile_iterations`` makes each probe observe that many simulated
    iterations; with a ``checkpoints`` store, probes of configurations
    the store has seen (a previous anneal, a donor grid search, or this
    anneal re-crossing its own path at a deeper budget) restore the
    deepest shared iteration boundary instead of cold-starting —
    byte-identical, per :mod:`repro.perf.incremental`.
    """
    if minibatch_per_replica < 1:
        raise ConfigError("minibatch_per_replica must be >= 1")
    if steps < 1:
        raise ConfigError("steps must be >= 1")
    if profile_iterations < 1:
        raise ConfigError("profile_iterations must be >= 1")
    rng = random.Random(seed)
    ckpt0 = checkpoints.counters() if checkpoints is not None else None
    splits = _splits_of(minibatch_per_replica)
    max_pack = len(model)

    def neighbours(cfg: _Config) -> list[_Config]:
        out = []
        for delta in (-2, -1, 1, 2):
            pack = cfg.pack_size + delta
            if 1 <= pack <= max_pack:
                out.append(_Config(pack, cfg.microbatch_size, cfg.prefetch))
        idx = splits.index(cfg.microbatch_size)
        for didx in (-1, 1):
            if 0 <= idx + didx < len(splits):
                out.append(_Config(cfg.pack_size, splits[idx + didx], cfg.prefetch))
        out.append(_Config(cfg.pack_size, cfg.microbatch_size, not cfg.prefetch))
        return out

    def profile(cfg: _Config) -> ProfilePoint:
        return profile_configuration(
            model,
            topology,
            cfg.pack_size,
            cfg.microbatch_size,
            minibatch_per_replica // cfg.microbatch_size,
            parallelism=parallelism,
            prefetch=cfg.prefetch,
            iterations=profile_iterations,
            steady_state=steady_state,
            checkpoints=checkpoints,
        )

    current = _Config(1, splits[0], False)
    current_point = profile(current)
    history = [current_point]
    best_point = current_point

    seen: dict[_Config, ProfilePoint] = {current: current_point}
    for step in range(1, steps):
        temperature = initial_temperature * (1 - step / steps)
        candidates = neighbours(current)
        proposal = candidates[rng.randrange(len(candidates))]
        point = seen.get(proposal)
        if point is None:
            point = profile(proposal)
            seen[proposal] = point
            history.append(point)
        if not point.feasible:
            continue  # fenced-off region: stay put
        if not current_point.feasible:
            accept = True
        else:
            gain = (point.throughput - current_point.throughput) / max(
                current_point.throughput, 1e-12
            )
            accept = gain >= 0 or (
                temperature > 0 and rng.random() < math.exp(gain / temperature)
            )
        if accept:
            current, current_point = proposal, point
            if point.feasible and point.throughput > best_point.throughput:
                best_point = point
    if not best_point.feasible:
        raise ConfigError(
            "annealing found no feasible configuration within its budget"
        )
    prefix_hits = prefix_misses = saved = 0
    if ckpt0 is not None:
        ckpt1 = checkpoints.counters()
        prefix_hits = ckpt1["hits"] - ckpt0["hits"]
        prefix_misses = ckpt1["misses"] - ckpt0["misses"]
        saved = ckpt1["saved_iterations"] - ckpt0["saved_iterations"]
    return AnnealResult(
        best=best_point,
        history=history,
        prefix_hits=prefix_hits,
        prefix_misses=prefix_misses,
        saved_iterations=saved,
    )
