"""Profiling one (pack size, microbatch shape) configuration.

A profile point is one simulated iteration's outcome (or several, with
``iterations > 1`` — e.g. an online tuner measuring settled steady-state
throughput), or an explicit infeasibility marker when the
configuration's working set cannot fit (the hard wall of the
memory-performance tango).

Multi-iteration probes accept a prefix-checkpoint store
(:mod:`repro.perf.incremental`): re-probes of a configuration the store
has seen restore the deepest shared iteration boundary and simulate
only the suffix — byte-identical to a cold probe, at roughly
``1/iterations`` the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import HarmonyConfig, Parallelism
from repro.core.session import HarmonySession
from repro.errors import CapacityError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig
from repro.schedulers.options import HarmonyOptions

if TYPE_CHECKING:
    from repro.perf.incremental import CheckpointStore


@dataclass(frozen=True)
class ProfilePoint:
    """Outcome of one profiled configuration."""

    pack_size: int
    microbatch_size: int
    num_microbatches: int
    prefetch: bool
    feasible: bool
    throughput: float = 0.0
    makespan: float = 0.0
    swap_out_bytes: float = 0.0
    p2p_bytes: float = 0.0
    peak_used_bytes: float = 0.0
    failure: str = ""
    pack_size_bwd: int | None = None

    @property
    def label(self) -> str:
        pf = "+pf" if self.prefetch else ""
        bwd = (
            f"/bwd={self.pack_size_bwd}"
            if self.pack_size_bwd is not None
            and self.pack_size_bwd != self.pack_size
            else ""
        )
        return (
            f"pack={self.pack_size}{bwd} mb={self.microbatch_size}x"
            f"{self.num_microbatches}{pf}"
        )


def profile_config(
    pack_size: int,
    microbatch_size: int,
    num_microbatches: int,
    parallelism: Parallelism | str = Parallelism.HARMONY_PP,
    prefetch: bool = False,
    pack_size_bwd: int | None = None,
    iterations: int = 1,
    steady_state: str | None = None,
) -> HarmonyConfig:
    """The exact session config a profile point simulates — the tuner
    fingerprints this to content-address points in its run cache."""
    return HarmonyConfig(
        parallelism=parallelism,
        batch=BatchConfig(microbatch_size, num_microbatches),
        options=HarmonyOptions(pack_size=pack_size, pack_size_bwd=pack_size_bwd),
        prefetch=prefetch,
        iterations=iterations,
        steady_state=steady_state,
    )


def profile_configuration(
    model: ModelGraph,
    topology: Topology,
    pack_size: int,
    microbatch_size: int,
    num_microbatches: int,
    parallelism: Parallelism | str = Parallelism.HARMONY_PP,
    prefetch: bool = False,
    pack_size_bwd: int | None = None,
    iterations: int = 1,
    steady_state: str | None = None,
    checkpoints: "CheckpointStore | None" = None,
) -> ProfilePoint:
    """Simulate one configuration; infeasible configurations (working
    set exceeds device memory) are reported, not raised — the tuner
    treats them as fenced-off regions of the search space."""
    config = profile_config(
        pack_size, microbatch_size, num_microbatches,
        parallelism=parallelism, prefetch=prefetch, pack_size_bwd=pack_size_bwd,
        iterations=iterations, steady_state=steady_state,
    )
    session = HarmonySession(model, topology, config, checkpoints=checkpoints)
    try:
        result = session.run()
    except CapacityError as exc:
        return ProfilePoint(
            pack_size=pack_size,
            microbatch_size=microbatch_size,
            num_microbatches=num_microbatches,
            prefetch=prefetch,
            feasible=False,
            failure=str(exc),
            pack_size_bwd=pack_size_bwd,
        )
    peak = max(d.peak_used for d in result.devices.values())
    return ProfilePoint(
        pack_size=pack_size,
        microbatch_size=microbatch_size,
        num_microbatches=num_microbatches,
        prefetch=prefetch,
        feasible=True,
        throughput=result.throughput,
        makespan=result.makespan,
        swap_out_bytes=result.swap_out_volume,
        p2p_bytes=result.stats.p2p_volume(),
        peak_used_bytes=peak,
        pack_size_bwd=pack_size_bwd,
    )
