"""The memory-performance tango (paper §4) as explicit sweeps.

Two trade-offs the paper singles out:

1. **pack size vs microbatch size** under a fixed memory capacity —
   bigger packs cut transfers but force smaller microbatches (lower
   arithmetic intensity); smaller packs allow bigger microbatches but
   move more data.  :func:`tango_surface` maps the whole surface.
2. **double buffering** — prefetching the next task's swap-ins behind
   current compute hides transfer latency but doubles the transient
   working set; with tight memory the prefetch self-disables and the
   swap cost lands on the critical path.  :func:`prefetch_tradeoff`
   measures both sides.
"""

from __future__ import annotations

from repro.core.config import Parallelism
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.tuner.profiler import ProfilePoint, profile_configuration
from repro.util.tables import Table


def tango_surface(
    model: ModelGraph,
    topology: Topology,
    minibatch_per_replica: int,
    pack_sizes: list[int] | None = None,
    parallelism: Parallelism | str = Parallelism.HARMONY_PP,
) -> list[ProfilePoint]:
    """Profile every (pack size x microbatch split) cell.

    Infeasible cells are included (marked ``feasible=False``) — the
    fence line is part of the tango's story.
    """
    if pack_sizes is None:
        pack_sizes = sorted(
            {1, 2, max(1, len(model) // 4), max(1, len(model) // 2), len(model)}
        )
    points = []
    for pack in pack_sizes:
        for size in range(1, minibatch_per_replica + 1):
            if minibatch_per_replica % size:
                continue
            m = minibatch_per_replica // size
            points.append(
                profile_configuration(
                    model, topology, pack, size, m, parallelism=parallelism
                )
            )
    return points


def tango_table(points: list[ProfilePoint]) -> Table:
    table = Table(
        ["pack", "mb size", "m", "feasible", "samples/s", "swap-out GB"],
        title="memory-performance tango surface",
    )
    for p in sorted(points, key=lambda p: (p.pack_size, p.microbatch_size)):
        table.add_row(
            [
                p.pack_size,
                p.microbatch_size,
                p.num_microbatches,
                "yes" if p.feasible else "NO",
                f"{p.throughput:.3f}",
                f"{p.swap_out_bytes / 1e9:.2f}",
            ]
        )
    return table


def prefetch_tradeoff(
    model: ModelGraph,
    topology: Topology,
    microbatch_size: int,
    num_microbatches: int,
    pack_size: int = 1,
    parallelism: Parallelism | str = Parallelism.HARMONY_PP,
) -> tuple[ProfilePoint, ProfilePoint]:
    """The same configuration with and without double buffering."""
    base = profile_configuration(
        model, topology, pack_size, microbatch_size, num_microbatches,
        parallelism=parallelism, prefetch=False,
    )
    prefetched = profile_configuration(
        model, topology, pack_size, microbatch_size, num_microbatches,
        parallelism=parallelism, prefetch=True,
    )
    return base, prefetched
