"""Tuning search: find the best (pack size, microbatch shape).

The paper calls "algorithmically determining the optimal task
granularity and the size of microbatches they operate on" an open,
multi-dimensional problem.  This tuner takes the profile-guided view:
enumerate the feasible grid for a fixed per-replica mini-batch, then
hill-climb pack size around the best grid point (including a distinct
backward pack size, motivated by backward's 2-3x footprint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import Parallelism
from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.tuner.profiler import ProfilePoint, profile_configuration
from repro.util.tables import Table


def _splits(minibatch: int) -> list[tuple[int, int]]:
    """All (microbatch_size, num_microbatches) factorizations."""
    out = []
    for size in range(1, minibatch + 1):
        if minibatch % size == 0:
            out.append((size, minibatch // size))
    return out


def _pack_candidates(num_layers: int) -> list[int]:
    """A coarse geometric ladder of pack sizes."""
    sizes = []
    size = 1
    while size < num_layers:
        sizes.append(size)
        size *= 2
    sizes.append(num_layers)
    return sorted(set(sizes))


@dataclass
class TuneResult:
    best: ProfilePoint
    points: list[ProfilePoint] = field(default_factory=list)

    @property
    def feasible_points(self) -> list[ProfilePoint]:
        return [p for p in self.points if p.feasible]

    def table(self) -> Table:
        table = Table(
            ["config", "feasible", "samples/s", "swap-out GB", "peak mem GB"],
            title=f"tuner search ({len(self.points)} points); best: {self.best.label}",
        )
        for p in sorted(
            self.points, key=lambda p: (-p.throughput, p.pack_size)
        ):
            table.add_row(
                [
                    p.label,
                    "yes" if p.feasible else "NO",
                    f"{p.throughput:.3f}",
                    f"{p.swap_out_bytes / 1e9:.2f}",
                    f"{p.peak_used_bytes / 1e9:.2f}",
                ]
            )
        return table


def tune(
    model: ModelGraph,
    topology: Topology,
    minibatch_per_replica: int,
    parallelism: Parallelism | str = Parallelism.HARMONY_PP,
    prefetch_options: tuple[bool, ...] = (False,),
    refine: bool = True,
    search_bwd_pack: bool = False,
) -> TuneResult:
    """Grid-search microbatch splits x pack sizes x prefetch, then
    hill-climb pack size around the winner.

    ``search_bwd_pack`` additionally probes *smaller backward pack
    sizes* at the winner: the paper notes a fixed pack has 2-3x the
    footprint in the backward pass, "motivating the need for different
    pack and microbatch sizes across these passes"."""
    if minibatch_per_replica < 1:
        raise ConfigError("minibatch_per_replica must be >= 1")
    points: list[ProfilePoint] = []
    for mb_size, m in _splits(minibatch_per_replica):
        for pack in _pack_candidates(len(model)):
            for prefetch in prefetch_options:
                points.append(
                    profile_configuration(
                        model, topology, pack, mb_size, m,
                        parallelism=parallelism, prefetch=prefetch,
                    )
                )
    feasible = [p for p in points if p.feasible]
    if not feasible:
        raise ConfigError(
            "no feasible configuration found: the model cannot be trained "
            "on this topology at any profiled granularity"
        )
    best = max(feasible, key=lambda p: p.throughput)
    if refine:
        best, extra = _hill_climb(model, topology, best, parallelism)
        points += extra
    if search_bwd_pack:
        best, extra = _refine_bwd_pack(model, topology, best, parallelism)
        points += extra
    return TuneResult(best=best, points=points)


def _refine_bwd_pack(
    model: ModelGraph,
    topology: Topology,
    start: ProfilePoint,
    parallelism: Parallelism | str,
) -> tuple[ProfilePoint, list[ProfilePoint]]:
    """Probe backward pack sizes smaller than the forward winner's
    (backward working sets are the larger ones, so only shrinking can
    relieve pressure)."""
    best = start
    extra: list[ProfilePoint] = []
    candidates = sorted(
        {max(1, start.pack_size // 2), max(1, start.pack_size - 1)}
        - {start.pack_size}
    )
    for bwd in candidates:
        point = profile_configuration(
            model, topology, start.pack_size, start.microbatch_size,
            start.num_microbatches, parallelism=parallelism,
            prefetch=start.prefetch, pack_size_bwd=bwd,
        )
        extra.append(point)
        if point.feasible and point.throughput > best.throughput:
            best = point
    return best, extra


def _hill_climb(
    model: ModelGraph,
    topology: Topology,
    start: ProfilePoint,
    parallelism: Parallelism | str,
) -> tuple[ProfilePoint, list[ProfilePoint]]:
    """Local search over pack size (+/-1 steps) from the grid winner."""
    best = start
    extra: list[ProfilePoint] = []
    seen = {start.pack_size}
    improved = True
    while improved:
        improved = False
        for candidate in (best.pack_size - 1, best.pack_size + 1):
            if candidate < 1 or candidate > len(model) or candidate in seen:
                continue
            seen.add(candidate)
            point = profile_configuration(
                model, topology, candidate, best.microbatch_size,
                best.num_microbatches, parallelism=parallelism,
                prefetch=best.prefetch,
            )
            extra.append(point)
            if point.feasible and point.throughput > best.throughput:
                best = point
                improved = True
    return best, extra
