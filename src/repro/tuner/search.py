"""Tuning search: find the best (pack size, microbatch shape).

The paper calls "algorithmically determining the optimal task
granularity and the size of microbatches they operate on" an open,
multi-dimensional problem.  This tuner takes the profile-guided view:
enumerate the feasible grid for a fixed per-replica mini-batch, then
hill-climb pack size around the best grid point (including a distinct
backward pack size, motivated by backward's 2-3x footprint).

The search is embarrassingly parallel and highly redundant — the grid
fans out over a process pool (``jobs``), and every profiled point is
content-addressed in a :class:`~repro.perf.cache.RunCache` so the
hill-climb's revisits (and any later search over the same workload)
are cache hits instead of fresh simulations.

A search can also run under a :class:`~repro.supervisor.Supervisor`
(the CLI's ``--journal``): every profiled point becomes a journaled,
watchdogged task, so a crashed or interrupted search resumes from its
last completed probe instead of starting over.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

if TYPE_CHECKING:
    from repro.perf.incremental import CheckpointStore
    from repro.supervisor import Supervisor

from repro.core.config import Parallelism
from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.perf.cache import RunCache
from repro.perf.fingerprint import FingerprintError, fingerprint
from repro.tuner.profiler import (
    ProfilePoint,
    profile_config,
    profile_configuration,
)
from repro.util.tables import Table


def _splits(minibatch: int) -> list[tuple[int, int]]:
    """All (microbatch_size, num_microbatches) factorizations.

    Divisors come in pairs (d, minibatch // d), so enumerating up to
    √minibatch finds them all — O(√n) instead of scanning every
    candidate size, which matters when the tuner is pointed at large
    per-replica mini-batches.
    """
    out = []
    size = 1
    while size * size <= minibatch:
        if minibatch % size == 0:
            out.append((size, minibatch // size))
            partner = minibatch // size
            if partner != size:
                out.append((partner, size))
        size += 1
    out.sort()
    return out


def _pack_candidates(num_layers: int) -> list[int]:
    """A coarse geometric ladder of pack sizes."""
    sizes = []
    size = 1
    while size < num_layers:
        sizes.append(size)
        size *= 2
    sizes.append(num_layers)
    return sorted(set(sizes))


# A combo is one point of the search space:
# (pack_size, microbatch_size, num_microbatches, prefetch, pack_size_bwd)
_Combo = tuple[int, int, int, bool, "int | None"]


def _combo_label(combo: _Combo) -> str:
    pack, mb_size, m, prefetch, bwd = combo
    extras = ("+prefetch" if prefetch else "") + (
        f"+bwd{bwd}" if bwd is not None else ""
    )
    return f"pack{pack}-{mb_size}x{m}{extras}"


def _profile_combo(
    payload: tuple[
        ModelGraph, Topology, Parallelism | str, _Combo, int,
        "str | None", "str | None",
    ],
) -> ProfilePoint:
    """Process-pool worker: profile one combo (top-level for pickling).

    The checkpoint store crosses the process boundary as its *directory*
    (the store object holds a lock): workers reopen the disk tier and
    share prefix snapshots through it.  A memory-only store stays with
    the inline path — its snapshots cannot cross processes.
    """
    model, topology, parallelism, combo, iterations, steady, ckpt_dir = payload
    pack, mb_size, m, prefetch, bwd = combo
    checkpoints = None
    if ckpt_dir is not None:
        from repro.perf.incremental import CheckpointStore

        checkpoints = CheckpointStore(ckpt_dir)
    return profile_configuration(
        model, topology, pack, mb_size, m,
        parallelism=parallelism, prefetch=prefetch, pack_size_bwd=bwd,
        iterations=iterations, steady_state=steady, checkpoints=checkpoints,
    )


class _Profiler:
    """Cache-aware, optionally parallel evaluator of profile points.

    Every evaluation goes through here so the search phases share one
    pair of hit/miss counters; batches fan out over a process pool and
    come back in submission order (the determinism rule shared with
    :class:`~repro.perf.runner.SweepRunner`).
    """

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        parallelism: Parallelism | str,
        cache: RunCache | None = None,
        jobs: int = 1,
        supervisor: "Supervisor | None" = None,
        iterations: int = 1,
        steady_state: "str | None" = None,
        checkpoints: "CheckpointStore | None" = None,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {iterations}")
        self.model = model
        self.topology = topology
        self.parallelism = parallelism
        self.cache = cache
        self.jobs = jobs
        self.supervisor = supervisor
        self.iterations = iterations
        self.steady_state = steady_state
        self.checkpoints = checkpoints
        self.hits = 0
        self.misses = 0

    def _key(self, combo: _Combo) -> str | None:
        if self.cache is None:
            return None
        pack, mb_size, m, prefetch, bwd = combo
        try:
            config = profile_config(
                pack, mb_size, m, parallelism=self.parallelism,
                prefetch=prefetch, pack_size_bwd=bwd,
                iterations=self.iterations, steady_state=self.steady_state,
            )
            return "profile:" + fingerprint(self.model, self.topology, config)
        except FingerprintError:
            return None  # uncacheable workload; simulate every time

    def one(
        self,
        pack: int,
        mb_size: int,
        m: int,
        prefetch: bool = False,
        bwd: int | None = None,
    ) -> ProfilePoint:
        return self.many([(pack, mb_size, m, prefetch, bwd)])[0]

    def many(self, combos: list[_Combo]) -> list[ProfilePoint]:
        points: list[ProfilePoint | None] = [None] * len(combos)
        pending: list[int] = []
        miss = RunCache.MISS
        keys = [self._key(combo) for combo in combos]
        for i, key in enumerate(keys):
            cached = self.cache.get(key, miss) if key is not None else miss
            if cached is not miss:
                self.hits += 1
                points[i] = cached
            else:
                self.misses += 1
                pending.append(i)
        if pending:
            ckpt_dir = (
                self.checkpoints.checkpoint_dir
                if self.checkpoints is not None
                else None
            )
            payloads = [
                (self.model, self.topology, self.parallelism, combos[i],
                 self.iterations, self.steady_state, ckpt_dir)
                for i in pending
            ]
            if self.supervisor is not None:
                from repro.supervisor import Task

                # The profiler owns cache accounting, so tasks are not
                # supervisor-cacheable; the journal still records every
                # point, making an interrupted search resumable.
                tasks = [
                    Task(
                        key=keys[i] or f"profile:nokey:{combos[i]!r}",
                        fn=_profile_combo,
                        payload=payload,
                        label=_combo_label(combos[i]),
                    )
                    for i, payload in zip(pending, payloads)
                ]
                computed = self.supervisor.run_tasks(tasks)
            elif self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    computed = list(pool.map(_profile_combo, payloads))
            else:
                # Inline: hand the store object straight through, so a
                # memory-only store works (and counters accrue in-process).
                computed = [self._profile_inline(combos[i]) for i in pending]
            for i, point in zip(pending, computed):
                points[i] = point
                if keys[i] is not None:
                    self.cache.put(keys[i], point)
        return points  # type: ignore[return-value]

    def _profile_inline(self, combo: _Combo) -> ProfilePoint:
        pack, mb_size, m, prefetch, bwd = combo
        return profile_configuration(
            self.model, self.topology, pack, mb_size, m,
            parallelism=self.parallelism, prefetch=prefetch,
            pack_size_bwd=bwd, iterations=self.iterations,
            steady_state=self.steady_state, checkpoints=self.checkpoints,
        )


@dataclass
class TuneResult:
    best: ProfilePoint
    points: list[ProfilePoint] = field(default_factory=list)
    #: Run-cache accounting over the whole search / just the hill-climb
    #: refinement (all zero when the tuner ran without a cache).
    cache_hits: int = 0
    cache_misses: int = 0
    hill_hits: int = 0
    hill_misses: int = 0
    #: Prefix-checkpoint accounting (all zero without a store, or when
    #: probes ran in worker processes against the store's disk tier —
    #: those counters accrue in the workers).
    prefix_hits: int = 0
    prefix_misses: int = 0
    #: Simulated iterations short-circuited by prefix restores across
    #: the search — the work incremental re-simulation saved.
    saved_iterations: int = 0

    @property
    def feasible_points(self) -> list[ProfilePoint]:
        return [p for p in self.points if p.feasible]

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def hill_climb_hit_rate(self) -> float:
        """Fraction of hill-climb probes served from the run cache —
        the revisit savings the cache exists for."""
        total = self.hill_hits + self.hill_misses
        return self.hill_hits / total if total else 0.0

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of simulated probes that restored a prefix
        checkpoint instead of cold-starting iteration 1."""
        total = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / total if total else 0.0

    def table(self) -> Table:
        table = Table(
            ["config", "feasible", "samples/s", "swap-out GB", "peak mem GB"],
            title=f"tuner search ({len(self.points)} points); best: {self.best.label}",
        )
        for p in sorted(
            self.points, key=lambda p: (-p.throughput, p.pack_size)
        ):
            table.add_row(
                [
                    p.label,
                    "yes" if p.feasible else "NO",
                    f"{p.throughput:.3f}",
                    f"{p.swap_out_bytes / 1e9:.2f}",
                    f"{p.peak_used_bytes / 1e9:.2f}",
                ]
            )
        return table


def tune(
    model: ModelGraph,
    topology: Topology,
    minibatch_per_replica: int,
    parallelism: Parallelism | str = Parallelism.HARMONY_PP,
    prefetch_options: tuple[bool, ...] = (False,),
    refine: bool = True,
    search_bwd_pack: bool = False,
    cache: RunCache | None = None,
    jobs: int = 1,
    supervisor: "Supervisor | None" = None,
    profile_iterations: int = 1,
    steady_state: "str | None" = None,
    checkpoints: "CheckpointStore | None" = None,
) -> TuneResult:
    """Grid-search microbatch splits x pack sizes x prefetch, then
    hill-climb pack size around the winner.

    ``search_bwd_pack`` additionally probes *smaller backward pack
    sizes* at the winner: the paper notes a fixed pack has 2-3x the
    footprint in the backward pass, "motivating the need for different
    pack and microbatch sizes across these passes".

    ``jobs`` fans the grid out over a process pool; ``cache`` makes
    repeated probes (hill-climb revisits, re-runs of the same search)
    cache hits.  ``supervisor`` routes every probe through a
    :class:`~repro.supervisor.Supervisor` instead of a bare pool —
    crash recovery, watchdog, and ``--journal`` resumability.

    ``profile_iterations`` makes each probe simulate that many
    iterations (settled steady-state throughput rather than a first
    iteration's); ``checkpoints`` then turns re-probes into incremental
    re-simulations — restore the deepest shared iteration boundary,
    simulate only the suffix (:mod:`repro.perf.incremental`).  All of
    these leave the selected ``best`` point bit-identical to a serial,
    uncached, unsupervised search.
    """
    if minibatch_per_replica < 1:
        raise ConfigError("minibatch_per_replica must be >= 1")
    profiler = _Profiler(
        model, topology, parallelism, cache=cache, jobs=jobs,
        supervisor=supervisor, iterations=profile_iterations,
        steady_state=steady_state, checkpoints=checkpoints,
    )
    ckpt0 = checkpoints.counters() if checkpoints is not None else None
    combos: list[_Combo] = [
        (pack, mb_size, m, prefetch, None)
        for mb_size, m in _splits(minibatch_per_replica)
        for pack in _pack_candidates(len(model))
        for prefetch in prefetch_options
    ]
    points = profiler.many(combos)
    feasible = [p for p in points if p.feasible]
    if not feasible:
        raise ConfigError(
            "no feasible configuration found: the model cannot be trained "
            "on this topology at any profiled granularity"
        )
    best = max(feasible, key=lambda p: p.throughput)
    hill_hits = hill_misses = 0
    if refine:
        hits0, misses0 = profiler.hits, profiler.misses
        best, extra = _hill_climb(model, best, profiler)
        points = points + extra
        hill_hits = profiler.hits - hits0
        hill_misses = profiler.misses - misses0
    if search_bwd_pack:
        best, extra = _refine_bwd_pack(best, profiler)
        points = points + extra
    prefix_hits = prefix_misses = saved = 0
    if ckpt0 is not None:
        ckpt1 = checkpoints.counters()
        prefix_hits = ckpt1["hits"] - ckpt0["hits"]
        prefix_misses = ckpt1["misses"] - ckpt0["misses"]
        saved = ckpt1["saved_iterations"] - ckpt0["saved_iterations"]
    return TuneResult(
        best=best,
        points=points,
        cache_hits=profiler.hits,
        cache_misses=profiler.misses,
        hill_hits=hill_hits,
        hill_misses=hill_misses,
        prefix_hits=prefix_hits,
        prefix_misses=prefix_misses,
        saved_iterations=saved,
    )


def _refine_bwd_pack(
    start: ProfilePoint,
    profiler: _Profiler,
) -> tuple[ProfilePoint, list[ProfilePoint]]:
    """Probe backward pack sizes smaller than the forward winner's
    (backward working sets are the larger ones, so only shrinking can
    relieve pressure)."""
    best = start
    extra: list[ProfilePoint] = []
    candidates = sorted(
        {max(1, start.pack_size // 2), max(1, start.pack_size - 1)}
        - {start.pack_size}
    )
    for bwd in candidates:
        point = profiler.one(
            start.pack_size, start.microbatch_size, start.num_microbatches,
            prefetch=start.prefetch, bwd=bwd,
        )
        extra.append(point)
        if point.feasible and point.throughput > best.throughput:
            best = point
    return best, extra


def _hill_climb(
    model: ModelGraph,
    start: ProfilePoint,
    profiler: _Profiler,
) -> tuple[ProfilePoint, list[ProfilePoint]]:
    """Local search over pack size (+/-1 steps) from the grid winner.

    With a cache the climb re-probes already-visited pack sizes (the
    grid winner itself and the direction it came from) — those are
    exactly the revisits that become cache hits.  Without a cache it
    skips them, matching the cost of the classic seen-set version.
    Either way a revisit can never beat the incumbent (the comparison
    is strict), so the selected point is identical.
    """
    best = start
    extra: list[ProfilePoint] = []
    visited = {start.pack_size}
    revisit = profiler.cache is not None
    improved = True
    while improved:
        improved = False
        for candidate in (
            best.pack_size - 1, best.pack_size, best.pack_size + 1
        ):
            if candidate < 1 or candidate > len(model):
                continue
            first_visit = candidate not in visited
            if not first_visit and not revisit:
                continue
            point = profiler.one(
                candidate, best.microbatch_size, best.num_microbatches,
                prefetch=best.prefetch,
            )
            if first_visit:
                visited.add(candidate)
                extra.append(point)
            if point.feasible and point.throughput > best.throughput:
                best = point
                improved = True
    return best, extra
