"""Task decomposition: model graph -> fine-grained iteration task graph.

This is the paper's Task Decomposer (Fig. 3):

* "Split model-wise ops into fine-grained ops" — one task per
  (phase, layer-pack, microbatch, replica);
* "Decouple ops and unbind resources" — tasks carry explicit tensor
  reads/writes and **no device**; placement is the scheduler's job
  (late binding);
* "Split data into microbatches" — a mini-batch becomes
  ``num_replicas * num_microbatches`` microbatches.

Dataflow dependencies are derived from the tensor roles of Fig. 5(a):
forward produces activations and stashes, backward consumes stashes and
accumulates weight gradients, update folds gradients into weights and
optimizer state.  Gradient accumulation is an in-place mutation of a
shared dW buffer, so the decomposer adds ordering edges between
successive backward tasks of the same layer pack — the paper's
observation that SGD's mutable state prevents treating tasks as pure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SchedulingError
from repro.models.graph import ModelGraph
from repro.models.phases import Phase
from repro.tasks.graph import TaskGraph
from repro.tasks.packing import pack_layers, validate_packs
from repro.tasks.task import Task, TaskKind
from repro.tensors.registry import TensorRegistry

Packs = Sequence[tuple[int, ...]]


@dataclass
class IterationTasks:
    """The decomposed task graph of one training iteration, with the
    lookup tables schedulers use to order and place tasks."""

    graph: TaskGraph
    registry: TensorRegistry
    model: ModelGraph
    num_replicas: int
    num_microbatches: int
    microbatch_size: int
    packs_fwd: list[tuple[int, ...]]
    packs_bwd: list[tuple[int, ...]]
    packs_upd: list[tuple[int, ...]]
    fwd: dict[tuple[int, int, int], Task] = field(default_factory=dict)
    bwd: dict[tuple[int, int, int], Task] = field(default_factory=dict)
    upd: dict[tuple[int, int], Task] = field(default_factory=dict)
    allreduce: dict[int, Task] = field(default_factory=dict)
    #: ZeRO-style weight all-gathers after sharded updates, keyed by
    #: update-pack index (empty unless ``zero_optimizer``).
    weight_gather: dict[int, Task] = field(default_factory=dict)
    #: Lazy replica -> compute-task index (see :meth:`compute_tasks_of`).
    _replica_compute: dict[int, list[Task]] | None = field(
        default=None, repr=False
    )

    @property
    def samples_per_iteration(self) -> int:
        return self.num_replicas * self.num_microbatches * self.microbatch_size

    def compute_tasks_of(self, replica: int) -> list[Task]:
        """Every COMPUTE task of one replica, in graph insertion order.

        Built lazily in one pass over the graph and reused for every
        replica: data-parallel schedulers place each replica's tasks on
        one device, and scanning the whole graph once per replica is
        O(N^2) on wide fleets (the dominant plan-time cost at 1024
        devices before this index existed)."""
        index = self._replica_compute
        if index is None:
            index = {}
            for task in self.graph:
                if task.kind is TaskKind.COMPUTE:
                    index.setdefault(task.replica, []).append(task)
            self._replica_compute = index
        return index.get(replica, [])

    def fwd_task(self, replica: int, pack_index: int, microbatch: int) -> Task:
        return self.fwd[(replica, pack_index, microbatch)]

    def bwd_task(self, replica: int, pack_index: int, microbatch: int) -> Task:
        return self.bwd[(replica, pack_index, microbatch)]

    def upd_task(self, replica: int, pack_index: int) -> Task:
        return self.upd[(replica, pack_index)]

    def bwd_pack_covering(self, layer: int) -> int:
        for p, pack in enumerate(self.packs_bwd):
            if pack[0] <= layer <= pack[-1]:
                return p
        raise SchedulingError(f"no backward pack covers layer {layer}")

    def upd_packs_within(self, bwd_pack_index: int) -> list[int]:
        """Update-pack indices whose layers all belong to one backward
        pack — the updates a jit scheduler runs right after that pack's
        backward group."""
        pack = self.packs_bwd[bwd_pack_index]
        lo, hi = pack[0], pack[-1]
        return [
            pu
            for pu, upack in enumerate(self.packs_upd)
            if lo <= upack[0] and upack[-1] <= hi
        ]


class Decomposer:
    """Builds :class:`IterationTasks` from a model and batching config.

    Parameters
    ----------
    model:
        The layer chain to train.
    microbatch_size:
        Samples per microbatch.
    num_microbatches:
        Microbatches per replica per iteration (``m`` in the paper's
        analytical model).
    num_replicas:
        Data-parallel replicas (``N`` in Harmony-DP / DP baseline);
        1 for pipeline-parallel and single-GPU schedules.
    packs_fwd / packs_bwd:
        Contiguous layer partitions used as forward / backward task
        granularity.  Defaults to one layer per task (the paper's
        layer-granularity examples); the tuner searches over these.
    packs_upd:
        Granularity of weight-update (and gradient-sync) tasks.
        Defaults to one layer per task regardless of fwd/bwd packing:
        the update is element-wise, so a coarse update task would
        inflate the working set (W + dW + K of every packed layer
        simultaneously resident) for no reuse benefit.
    sync_gradients:
        Whether to emit per-layer-pack ALLREDUCE tasks (DP with > 1
        replica).
    accumulate_ordering:
        Add ordering edges serializing backward tasks that share a dW
        buffer (required for in-place accumulation; on by default).
    """

    def __init__(
        self,
        model: ModelGraph,
        microbatch_size: int,
        num_microbatches: int,
        num_replicas: int = 1,
        packs_fwd: Packs | None = None,
        packs_bwd: Packs | None = None,
        packs_upd: Packs | None = None,
        sync_gradients: bool = True,
        accumulate_ordering: bool = True,
        recompute: bool = False,
        zero_optimizer: bool = False,
    ):
        if num_microbatches < 1:
            raise SchedulingError("num_microbatches must be >= 1")
        if num_replicas < 1:
            raise SchedulingError("num_replicas must be >= 1")
        self.model = model
        self.microbatch_size = microbatch_size
        self.num_microbatches = num_microbatches
        self.num_replicas = num_replicas
        n = len(model)
        self.packs_fwd = list(packs_fwd) if packs_fwd else pack_layers(n, 1)
        self.packs_bwd = list(packs_bwd) if packs_bwd else pack_layers(n, 1)
        self.packs_upd = list(packs_upd) if packs_upd else pack_layers(n, 1)
        validate_packs(self.packs_fwd, n)
        validate_packs(self.packs_bwd, n)
        validate_packs(self.packs_upd, n)
        self.recompute = recompute
        if recompute and self.packs_fwd != self.packs_bwd:
            raise SchedulingError(
                "recompute requires identical forward and backward packs "
                "(the checkpoint is the pack's input activation)"
            )
        self.sync_gradients = sync_gradients and num_replicas > 1
        self.accumulate_ordering = accumulate_ordering
        #: ZeRO stage-1 (paper-cited optimizer-state sharding): each
        #: replica holds 1/N of the optimizer state, updates its slice
        #: of the weights, and an all-gather rebuilds full weights.
        self.zero_optimizer = zero_optimizer and num_replicas > 1
        self._next_tid = 0

    def _tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    # -- public -----------------------------------------------------------

    def decompose(self) -> IterationTasks:
        registry = TensorRegistry(
            self.model,
            self.microbatch_size,
            optimizer_shards=self.num_replicas if self.zero_optimizer else 1,
        )
        graph = TaskGraph()
        itasks = IterationTasks(
            graph=graph,
            registry=registry,
            model=self.model,
            num_replicas=self.num_replicas,
            num_microbatches=self.num_microbatches,
            microbatch_size=self.microbatch_size,
            packs_fwd=self.packs_fwd,
            packs_bwd=self.packs_bwd,
            packs_upd=self.packs_upd,
        )
        for replica in range(self.num_replicas):
            self._emit_forward(itasks, replica)
            self._emit_backward(itasks, replica)
        if self.sync_gradients:
            self._emit_allreduce(itasks)
        for replica in range(self.num_replicas):
            self._emit_update(itasks, replica)
        graph.validate(require_placement=False)
        return itasks

    # -- forward ------------------------------------------------------------

    def _emit_forward(self, itasks: IterationTasks, replica: int) -> None:
        reg = itasks.registry
        last_layer = len(self.model) - 1
        # Microbatch-invariant per-pack values (weight tids, pack flops)
        # are computed during mb 0 — at the exact code position the
        # per-mb expressions held, so tensor *creation order* (and
        # therefore tid assignment) is unchanged — and reused for every
        # later microbatch.
        weight_tids: list[list[int]] = []
        pack_flops: list[float] = []
        for mb in range(self.num_microbatches):
            for p, pack in enumerate(self.packs_fwd):
                first, last = pack[0], pack[-1]
                in_act = reg.activation(first - 1, mb, replica).tid
                if mb == 0:
                    weight_tids.append([reg.weight(l, replica).tid for l in pack])
                    pack_flops.append(sum(
                        self.model.layer(l).flops(Phase.FORWARD, self.microbatch_size)
                        for l in pack
                    ))
                reads = [in_act]
                reads += weight_tids[p]
                if self.recompute:
                    # Checkpoint only the pack's input; the backward pass
                    # re-runs the pack's forward from it.
                    writes = [reg.checkpoint(first, mb, replica).tid]
                else:
                    writes = [reg.stash(l, mb, replica).tid for l in pack]
                frees = [in_act]
                out_act = reg.activation(last, mb, replica).tid
                writes.append(out_act)
                if last == last_layer:
                    # The final boundary (logits/loss) has no consumer:
                    # the backward pass restarts from the stash.
                    frees.append(out_act)
                deps: set[int] = set()
                if p > 0:
                    deps.add(itasks.fwd[(replica, p - 1, mb)].tid)
                flops = pack_flops[p]
                task = Task(
                    tid=self._tid(),
                    kind=TaskKind.COMPUTE,
                    label=f"fwd[p{p}:{first}-{last}]/mb{mb}/r{replica}",
                    phase=Phase.FORWARD,
                    layers=pack,
                    microbatch=mb,
                    replica=replica,
                    reads=tuple(reads),
                    writes=tuple(writes),
                    frees=tuple(frees),
                    flops=flops,
                    deps=frozenset(deps),
                    samples=self.microbatch_size if p == 0 else 0,
                )
                itasks.graph.add(task)
                itasks.fwd[(replica, p, mb)] = task

    # -- backward -----------------------------------------------------------

    def _fwd_pack_covering(self, layer: int) -> int:
        for p, pack in enumerate(self.packs_fwd):
            if pack[0] <= layer <= pack[-1]:
                return p
        raise SchedulingError(f"no forward pack covers layer {layer}")

    def _emit_backward(self, itasks: IterationTasks, replica: int) -> None:
        reg = itasks.registry
        last_layer = len(self.model) - 1
        num_packs = len(self.packs_bwd)
        # Microbatch-invariant per-pack values, filled during mb 0 at
        # the exact code position the per-mb expressions held so tid
        # creation order is unchanged (weight grads are first *created*
        # here), then reused for every later microbatch.
        w_tids: dict[int, list[int]] = {}
        dw_tids: dict[int, list[int]] = {}
        covering: dict[int, range] = {}
        bwd_flops: dict[int, float] = {}
        for mb in range(self.num_microbatches):
            for rp, pack in enumerate(reversed(self.packs_bwd)):
                p = num_packs - 1 - rp  # pack index in forward order
                first, last = pack[0], pack[-1]
                if self.recompute:
                    checkpoint = reg.checkpoint(first, mb, replica).tid
                    reads = [checkpoint]
                    frees = [checkpoint]
                else:
                    reads = [reg.stash(l, mb, replica).tid for l in pack]
                    frees = list(reads)
                if mb == 0:
                    w_tids[p] = [reg.weight(l, replica).tid for l in pack]
                    dw_tids[p] = [reg.weight_grad(l, replica).tid for l in pack]
                    covering[p] = range(
                        self._fwd_pack_covering(first),
                        self._fwd_pack_covering(last) + 1,
                    )
                    flops = sum(
                        self.model.layer(l).flops(Phase.BACKWARD, self.microbatch_size)
                        for l in pack
                    )
                    if self.recompute:
                        # The pack's forward is re-run from the checkpoint
                        # before differentiating — compute traded for memory.
                        flops += sum(
                            self.model.layer(l).flops(
                                Phase.FORWARD, self.microbatch_size
                            )
                            for l in pack
                        )
                    bwd_flops[p] = flops
                reads += w_tids[p]
                reads += dw_tids[p]
                writes = list(dw_tids[p])
                deps: set[int] = set()
                if last != last_layer:
                    grad_in = reg.act_grad(last, mb, replica).tid
                    reads.insert(0, grad_in)
                    frees.append(grad_in)
                    deps.add(itasks.bwd[(replica, p + 1, mb)].tid)
                if first > 0:
                    writes.append(reg.act_grad(first - 1, mb, replica).tid)
                # The stash must exist: depend on every forward task
                # whose pack covers any of this pack's layers.
                for fp in covering[p]:
                    deps.add(itasks.fwd[(replica, fp, mb)].tid)
                flops = bwd_flops[p]
                task = Task(
                    tid=self._tid(),
                    kind=TaskKind.COMPUTE,
                    label=f"bwd[p{p}:{first}-{last}]/mb{mb}/r{replica}",
                    phase=Phase.BACKWARD,
                    layers=pack,
                    microbatch=mb,
                    replica=replica,
                    reads=tuple(dict.fromkeys(reads)),
                    writes=tuple(dict.fromkeys(writes)),
                    frees=tuple(dict.fromkeys(frees)),
                    flops=flops,
                    deps=frozenset(deps),
                )
                if self.accumulate_ordering and mb > 0:
                    task.add_dep(itasks.bwd[(replica, p, mb - 1)].tid)
                itasks.graph.add(task)
                itasks.bwd[(replica, p, mb)] = task

    # -- gradient synchronization --------------------------------------------

    def _emit_allreduce(self, itasks: IterationTasks) -> None:
        reg = itasks.registry
        last_mb = self.num_microbatches - 1
        n = self.num_replicas
        for p, pack in enumerate(self.packs_upd):
            grad_bytes = sum(self.model.layer(l).grad_bytes for l in pack)
            tensors = [
                reg.weight_grad(l, r).tid for r in range(n) for l in pack
            ]
            deps = frozenset(
                itasks.bwd[(r, itasks.bwd_pack_covering(l), last_mb)].tid
                for r in range(n)
                for l in (pack[0], pack[-1])
            )
            task = Task(
                tid=self._tid(),
                kind=TaskKind.ALLREDUCE,
                label=f"allreduce[p{p}]",
                layers=pack,
                reads=tuple(tensors),
                writes=tuple(tensors),
                comm_bytes=2.0 * (n - 1) / n * grad_bytes,
                participants=tuple(f"replica{r}" for r in range(n)),
                deps=deps,
            )
            itasks.graph.add(task)
            itasks.allreduce[p] = task

    # -- weight update ---------------------------------------------------------

    def _emit_update(self, itasks: IterationTasks, replica: int) -> None:
        reg = itasks.registry
        last_mb = self.num_microbatches - 1
        for p, pack in enumerate(self.packs_upd):
            reads = []
            writes = []
            for l in pack:
                reads += [
                    reg.weight_grad(l, replica).tid,
                    reg.weight(l, replica).tid,
                    reg.opt_state(l, replica).tid,
                ]
                writes += [
                    reg.weight(l, replica).tid,
                    reg.opt_state(l, replica).tid,
                    reg.weight_grad(l, replica).tid,  # reset to zero
                ]
            deps = {
                itasks.bwd[(replica, itasks.bwd_pack_covering(l), last_mb)].tid
                for l in (pack[0], pack[-1])
            }
            if p in itasks.allreduce:
                deps.add(itasks.allreduce[p].tid)
            flops = sum(
                self.model.layer(l).flops(Phase.UPDATE, 1) for l in pack
            )
            if self.zero_optimizer:
                # Each replica updates only its 1/N slice of the pack.
                flops /= self.num_replicas
            task = Task(
                tid=self._tid(),
                kind=TaskKind.COMPUTE,
                label=f"upd[p{p}]/r{replica}",
                phase=Phase.UPDATE,
                layers=pack,
                replica=replica,
                reads=tuple(reads),
                writes=tuple(writes),
                flops=flops,
                deps=frozenset(deps),
            )
            itasks.graph.add(task)
            itasks.upd[(replica, p)] = task
        if self.zero_optimizer and replica == self.num_replicas - 1:
            self._emit_weight_gather(itasks)

    def _emit_weight_gather(self, itasks: IterationTasks) -> None:
        """ZeRO stage-1 epilogue: after every replica has updated its
        weight slice, an all-gather rebuilds the full updated weights on
        every replica — (N-1)/N x |W| per participant on the wire."""
        reg = itasks.registry
        n = self.num_replicas
        for p, pack in enumerate(self.packs_upd):
            weight_bytes = sum(self.model.layer(l).param_bytes for l in pack)
            tensors = [reg.weight(l, r).tid for r in range(n) for l in pack]
            task = Task(
                tid=self._tid(),
                kind=TaskKind.ALLREDUCE,
                label=f"wgather[p{p}]",
                layers=pack,
                reads=tuple(tensors),
                writes=tuple(tensors),
                comm_bytes=(n - 1) / n * weight_bytes,
                participants=tuple(f"replica{r}" for r in range(n)),
                deps=frozenset(itasks.upd[(r, p)].tid for r in range(n)),
            )
            itasks.graph.add(task)
            itasks.weight_gather[p] = task
