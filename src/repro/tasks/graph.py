"""Task dependency graph with structural validation.

The graph is append-only: the decomposer adds tasks, schedulers add
placement and extra ordering edges.  :meth:`TaskGraph.validate` checks
the invariants the executor relies on (acyclicity, placed tasks, known
dependency ids); :meth:`TaskGraph.topo_order` provides a deterministic
topological order used by analyses and tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.tasks.task import Task, TaskKind


@dataclass
class TaskGraph:
    """All tasks of one training iteration (or several), indexed by id."""

    tasks: dict[int, Task] = field(default_factory=dict)

    def add(self, task: Task) -> Task:
        if task.tid in self.tasks:
            raise SchedulingError(f"duplicate task id {task.tid}")
        self.tasks[task.tid] = task
        return task

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks.values())

    def task(self, tid: int) -> Task:
        try:
            return self.tasks[tid]
        except KeyError:
            raise SchedulingError(f"unknown task id {tid}") from None

    def compute_tasks(self) -> list[Task]:
        return [t for t in self.tasks.values() if t.kind is TaskKind.COMPUTE]

    def successors(self) -> dict[int, list[int]]:
        """Map from task id to the ids depending on it."""
        succ: dict[int, list[int]] = {tid: [] for tid in self.tasks}
        for task in self.tasks.values():
            for dep in task.all_deps:
                succ[dep].append(task.tid)
        return succ

    def validate(self, require_placement: bool = True) -> None:
        """Check ids, placement, and acyclicity."""
        for task in self.tasks.values():
            for dep in task.all_deps:
                if dep not in self.tasks:
                    raise SchedulingError(
                        f"task {task.label}: dependency on unknown task {dep}"
                    )
            if require_placement and task.device is None:
                raise SchedulingError(f"task {task.label}: not placed on a device")
        self.topo_order()  # raises on cycles

    def topo_order(self) -> list[Task]:
        """Kahn's algorithm with deterministic (task-id) tie-breaking."""
        indegree = {tid: len(t.all_deps) for tid, t in self.tasks.items()}
        succ = self.successors()
        ready = deque(sorted(tid for tid, deg in indegree.items() if deg == 0))
        order: list[Task] = []
        while ready:
            tid = ready.popleft()
            order.append(self.tasks[tid])
            for nxt in sorted(succ[tid]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.tasks):
            stuck = [t.label for tid, t in self.tasks.items() if indegree[tid] > 0]
            raise SchedulingError(f"task graph has a cycle involving: {stuck[:8]}")
        return order

    def critical_path_length(self, duration) -> float:
        """Longest path through the graph under a per-task duration
        function — a lower bound on any schedule's makespan, used by
        load-balance diagnostics."""
        finish: dict[int, float] = {}
        for task in self.topo_order():
            start = max((finish[d] for d in task.all_deps), default=0.0)
            finish[task.tid] = start + duration(task)
        return max(finish.values(), default=0.0)
