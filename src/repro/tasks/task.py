"""Task records: one schedulable unit of work.

A :class:`Task` is deliberately close to the paper's notion — a
(phase, layer-pack, microbatch, replica) tuple with explicit tensor
reads/writes — so the scheduler's decisions (placement, ordering,
grouping, packing) are all expressible as plain data transformations
over a list of tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.models.phases import Phase
from repro.util.enums import FastEnum


class TaskKind(FastEnum):
    COMPUTE = "compute"
    ALLREDUCE = "allreduce"

    def __str__(self) -> str:
        return self.value


@dataclass
class Task:
    """One schedulable unit.

    Attributes
    ----------
    tid:
        Dense id, unique within a :class:`TaskGraph`.
    kind:
        COMPUTE (forward / backward / update on a layer pack) or
        ALLREDUCE (gradient synchronization across replicas).
    phase:
        Training phase for COMPUTE tasks; ``None`` for ALLREDUCE.
    layers:
        Indices of the layers this task executes (one element unless
        task packing fused several).
    microbatch:
        Microbatch index for FWD/BWD; ``None`` for UPDATE/ALLREDUCE.
    replica:
        Data-parallel replica this task belongs to (0 outside DP).
    reads / writes:
        Tensor ids that must be device-resident when the task starts.
        ``writes`` not yet materialized are allocated on the device.
    frees:
        Tensor ids that are dead once this task completes.
    flops:
        Total compute work (COMPUTE tasks).
    comm_bytes:
        Per-participant communication volume (ALLREDUCE tasks).
    participants:
        Device names taking part in an ALLREDUCE.
    deps:
        Task ids that must complete before this task may start.
    device:
        Placement, assigned by the scheduler (late binding: ``None``
        until then).
    """

    tid: int
    kind: TaskKind
    label: str
    phase: Phase | None = None
    layers: tuple[int, ...] = ()
    microbatch: int | None = None
    replica: int = 0
    reads: tuple[int, ...] = ()
    writes: tuple[int, ...] = ()
    frees: tuple[int, ...] = ()
    flops: float = 0.0
    comm_bytes: float = 0.0
    participants: tuple[str, ...] = ()
    deps: frozenset[int] = frozenset()
    device: str | None = None
    samples: int = 0
    _extra_deps: set[int] = field(default_factory=set, repr=False)
    # Lazily-built caches for the two derived views the executor reads
    # on every wake-up; ``add_dep`` is the only mutation that can
    # invalidate them (reads/writes/deps are fixed at construction).
    _all_deps_cache: frozenset[int] | None = field(
        default=None, repr=False, compare=False
    )
    _touched_cache: tuple[int, ...] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.kind is TaskKind.COMPUTE and self.phase is None:
            raise SchedulingError(f"task {self.label}: compute tasks need a phase")
        if self.kind is TaskKind.ALLREDUCE and not self.participants:
            raise SchedulingError(f"task {self.label}: allreduce needs participants")
        if self.flops < 0 or self.comm_bytes < 0:
            raise SchedulingError(f"task {self.label}: negative work")

    @property
    def all_deps(self) -> frozenset[int]:
        cached = self._all_deps_cache
        if cached is None:
            cached = (
                frozenset(self.deps | self._extra_deps)
                if self._extra_deps
                else self.deps
            )
            self._all_deps_cache = cached
        return cached

    def add_dep(self, tid: int) -> None:
        """Add a scheduling-induced dependency (e.g. gradient-accumulation
        ordering) on top of the dataflow dependencies."""
        if tid == self.tid:
            raise SchedulingError(f"task {self.label}: self-dependency")
        self._extra_deps.add(tid)
        self._all_deps_cache = None

    @property
    def touched(self) -> tuple[int, ...]:
        """All tensors that must be resident for this task."""
        cached = self._touched_cache
        if cached is None:
            cached = tuple(dict.fromkeys(self.reads + self.writes))
            self._touched_cache = cached
        return cached

    def place(self, device: str) -> None:
        self.device = device

    def __str__(self) -> str:
        where = self.device or "?"
        return f"{self.label}@{where}"
