"""Fine-grained task system: the unit of scheduling in Harmony.

The paper's Task Decomposer (Fig. 3) splits a training script into
per-layer, per-microbatch forward / backward / update tasks with
explicit tensor dependencies, *unbinding* them from devices so the
scheduler can late-bind computation to GPUs.  This package implements
the task record, the dependency graph, the decomposer that derives an
iteration's task graph from a :class:`~repro.models.ModelGraph`, and
the task-packing transformation.
"""

from repro.tasks.task import Task, TaskKind
from repro.tasks.graph import TaskGraph
from repro.tasks.decomposer import Decomposer, IterationTasks
from repro.tasks.packing import pack_layers, partition_layers_balanced

__all__ = [
    "Task",
    "TaskKind",
    "TaskGraph",
    "Decomposer",
    "IterationTasks",
    "pack_layers",
    "partition_layers_balanced",
]
