"""Layer packing / partitioning utilities.

Task packing (paper optimization #4) fuses several consecutive
layer-level operations into one task, trading kernel-launch overhead
and inter-task transfers against a larger working set.  Pipeline-stage
assignment is the same problem at a coarser granularity.  Both reduce
to partitioning an ordered list of layers into contiguous runs; this
module provides the partitioning algorithms.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import SchedulingError
from repro.models.graph import ModelGraph


def pack_layers(num_layers: int, pack_size: int) -> list[tuple[int, ...]]:
    """Partition ``num_layers`` into contiguous packs of ``pack_size``
    (the final pack may be smaller).

    >>> pack_layers(5, 2)
    [(0, 1), (2, 3), (4,)]
    """
    if num_layers < 1:
        raise SchedulingError("num_layers must be >= 1")
    if pack_size < 1:
        raise SchedulingError("pack_size must be >= 1")
    return [
        tuple(range(start, min(start + pack_size, num_layers)))
        for start in range(0, num_layers, pack_size)
    ]


def validate_packs(packs: Sequence[tuple[int, ...]], num_layers: int) -> None:
    """Ensure packs are a contiguous, complete, in-order partition."""
    flattened = [layer for pack in packs for layer in pack]
    if flattened != list(range(num_layers)):
        raise SchedulingError(
            f"packs {packs!r} are not a contiguous in-order partition of "
            f"{num_layers} layers"
        )


def partition_layers_balanced(
    model: ModelGraph,
    num_parts: int,
    load: Callable[[int], float] | None = None,
) -> list[tuple[int, ...]]:
    """Split a model into ``num_parts`` contiguous runs minimizing the
    maximum per-run load (the classic linear-partition problem, solved
    by binary search on the bottleneck value).

    ``load(layer_index)`` defaults to forward FLOPs per sample — the
    compute-balanced partition that pipeline-parallel systems use, and
    that the paper notes leads to *memory*-imbalanced stages.
    """
    n = len(model)
    if num_parts < 1:
        raise SchedulingError("num_parts must be >= 1")
    if num_parts > n:
        raise SchedulingError(f"cannot split {n} layers into {num_parts} parts")
    if load is None:
        load = lambda i: model.layer(i).flops_fwd_per_sample  # noqa: E731
    loads = [float(load(i)) for i in range(n)]
    if any(x < 0 for x in loads):
        raise SchedulingError("layer loads must be non-negative")

    def parts_needed(cap: float) -> int:
        parts, current = 1, 0.0
        for x in loads:
            if current + x > cap and current > 0:
                parts += 1
                current = 0.0
            current += x
        return parts

    lo = max(loads) if loads else 0.0
    hi = sum(loads) or 1.0
    for __ in range(64):
        mid = (lo + hi) / 2
        if parts_needed(mid) <= num_parts:
            hi = mid
        else:
            lo = mid

    # Greedy emit under the found bottleneck, then pad to exactly
    # num_parts by splitting the largest remaining runs if short.
    runs: list[list[int]] = [[]]
    current = 0.0
    for i, x in enumerate(loads):
        if current + x > hi and runs[-1]:
            runs.append([])
            current = 0.0
        runs[-1].append(i)
        current += x
    while len(runs) < num_parts:
        # Split the run with the largest load that has >= 2 layers.
        candidates = [r for r in runs if len(r) >= 2]
        victim = max(candidates, key=lambda r: sum(loads[i] for i in r))
        idx = runs.index(victim)
        half = len(victim) // 2
        runs[idx : idx + 1] = [victim[:half], victim[half:]]
    return [tuple(run) for run in runs]


def suggest_pack_size(
    model: ModelGraph,
    capacity_bytes: float,
    microbatch_size: int,
    headroom: float = 0.5,
) -> int:
    """Largest uniform pack size whose worst working set fits within
    ``headroom`` of device capacity — the analytic pre-filter the tuner
    uses to avoid simulating obviously-infeasible granularities.

    Returns at least 1; the memory manager still raises
    :class:`~repro.errors.CapacityError` if even single-layer tasks do
    not fit.
    """
    if not 0 < headroom <= 1:
        raise SchedulingError("headroom must be in (0, 1]")
    budget = headroom * capacity_bytes
    best = 1
    for size in range(1, len(model) + 1):
        worst = max(
            pack_working_set_bytes(model, pack, microbatch_size)
            for pack in pack_layers(len(model), size)
        )
        if worst <= budget:
            best = size
        else:
            break
    return best


def pack_working_set_bytes(
    model: ModelGraph, pack: tuple[int, ...], microbatch_size: int
) -> float:
    """Peak bytes a packed forward task needs resident: all weights in
    the pack, the pack's input activation, per-layer stashes, and the
    output activation.  Used by the tuner's memory-feasibility check."""
    first, last = pack[0], pack[-1]
    weights = sum(model.layer(i).param_bytes for i in pack)
    stashes = sum(model.layer(i).stash_bytes(microbatch_size) for i in pack)
    inp = model.layer(first).in_bytes(microbatch_size)
    out = model.layer(last).out_bytes(microbatch_size)
    return weights + stashes + inp + out
