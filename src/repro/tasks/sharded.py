"""Operation decomposition: splitting single ops across devices.

The paper's second key idea (§1): "we further decompose individual
operations — such as a matrix multiplication — into subtasks that can
run on different physical devices", with Harmony "transparently
introducing collective communication operations (like AllReduce) to
preserve the semantics of the original tasks".

This module implements that decomposition in the Megatron column-
parallel style:

* every layer's weights (and gradients, optimizer state, stash) are
  split into ``S`` equal shards, one per device;
* a layer's forward becomes ``S`` subtasks, each computing a partial
  output (``ACT_PART``, 1/S of the activation) from its weight shard
  and a device-local replica of the full input;
* an **all-gather** collective combines the partials into a full
  activation replica on every shard;
* a layer's backward becomes ``S`` subtasks, each producing a dense
  partial input-gradient contribution (``GRAD_PART``);
* an **all-reduce** collective sums those into the full input gradient
  replicated per shard;
* weight updates are fully local — each shard owns its slice of W, dW,
  and K, so no gradient synchronization is needed at all.

Per-device memory for persistent state drops by S× (the reason to
decompose ops when a single layer's weights dwarf one GPU), paid for
with two collectives per layer per microbatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.models.graph import ModelGraph
from repro.models.phases import Phase
from repro.tasks.graph import TaskGraph
from repro.tasks.task import Task, TaskKind
from repro.tensors.registry import TensorRegistry


@dataclass
class ShardedIterationTasks:
    """The decomposed task graph of one sharded training iteration."""

    graph: TaskGraph
    registry: TensorRegistry
    model: ModelGraph
    num_shards: int
    num_microbatches: int
    microbatch_size: int
    fwd: dict[tuple[int, int, int], Task] = field(default_factory=dict)
    bwd: dict[tuple[int, int, int], Task] = field(default_factory=dict)
    upd: dict[tuple[int, int], Task] = field(default_factory=dict)
    gather: dict[tuple[int, int], Task] = field(default_factory=dict)
    grad_coll: dict[tuple[int, int], Task] = field(default_factory=dict)

    @property
    def num_replicas(self) -> int:
        """Shards play the role replicas play elsewhere: the index that
        maps tensors and collective participants to devices."""
        return self.num_shards

    @property
    def samples_per_iteration(self) -> int:
        # One logical replica: shards cooperate on the same microbatches.
        return self.num_microbatches * self.microbatch_size


class ShardedDecomposer:
    """Builds :class:`ShardedIterationTasks`: every layer split S ways.

    Parameters mirror :class:`~repro.tasks.decomposer.Decomposer`, with
    ``num_shards`` devices cooperating on each operation instead of
    holding independent replicas.  Layer granularity only — packing
    sharded subtasks would fuse across collectives, which changes the
    computation's semantics.
    """

    def __init__(
        self,
        model: ModelGraph,
        microbatch_size: int,
        num_microbatches: int,
        num_shards: int,
        accumulate_ordering: bool = True,
    ):
        if num_microbatches < 1:
            raise SchedulingError("num_microbatches must be >= 1")
        if num_shards < 1:
            raise SchedulingError("num_shards must be >= 1")
        self.model = model
        self.microbatch_size = microbatch_size
        self.num_microbatches = num_microbatches
        self.num_shards = num_shards
        self.accumulate_ordering = accumulate_ordering
        self._next_tid = 0

    def _tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def decompose(self) -> ShardedIterationTasks:
        registry = TensorRegistry(
            self.model, self.microbatch_size, weight_shards=self.num_shards
        )
        itasks = ShardedIterationTasks(
            graph=TaskGraph(),
            registry=registry,
            model=self.model,
            num_shards=self.num_shards,
            num_microbatches=self.num_microbatches,
            microbatch_size=self.microbatch_size,
        )
        self._emit_forward(itasks)
        self._emit_backward(itasks)
        self._emit_update(itasks)
        itasks.graph.validate(require_placement=False)
        return itasks

    # -- forward -------------------------------------------------------------

    def _emit_forward(self, itasks: ShardedIterationTasks) -> None:
        reg = itasks.registry
        s_count = self.num_shards
        last_layer = len(self.model) - 1
        for mb in range(self.num_microbatches):
            for layer in range(len(self.model)):
                spec = self.model.layer(layer)
                for s in range(s_count):
                    reads = [
                        reg.activation(layer - 1, mb, s).tid,
                        reg.weight(layer, s).tid,
                    ]
                    part = reg.act_part(layer, mb, s) if s_count > 1 else None
                    if part is not None:
                        writes = [reg.stash(layer, mb, s).tid, part.tid]
                    else:
                        writes = [
                            reg.stash(layer, mb, s).tid,
                            reg.activation(layer, mb, s).tid,
                        ]
                    frees = [reg.activation(layer - 1, mb, s).tid]
                    if layer == last_layer:
                        # Logits have no consumer; the backward restarts
                        # from the stash.
                        frees.append(writes[-1])
                    deps: set[int] = set()
                    if layer > 0:
                        if s_count > 1:
                            deps.add(itasks.gather[(layer - 1, mb)].tid)
                        else:
                            deps.add(itasks.fwd[(0, layer - 1, mb)].tid)
                    task = Task(
                        tid=self._tid(),
                        kind=TaskKind.COMPUTE,
                        label=f"fwd[L{layer}.s{s}]/mb{mb}",
                        phase=Phase.FORWARD,
                        layers=(layer,),
                        microbatch=mb,
                        replica=s,
                        reads=tuple(reads),
                        writes=tuple(writes),
                        frees=tuple(frees),
                        flops=spec.flops(Phase.FORWARD, self.microbatch_size)
                        / s_count,
                        deps=frozenset(deps),
                        samples=(
                            self.microbatch_size if layer == 0 and s == 0 else 0
                        ),
                    )
                    itasks.graph.add(task)
                    itasks.fwd[(s, layer, mb)] = task
                if s_count > 1 and layer != last_layer:
                    self._emit_gather(itasks, layer, mb)

    def _emit_gather(self, itasks: ShardedIterationTasks, layer: int, mb: int) -> None:
        """All-gather the layer's partial outputs into a full activation
        replica on every shard."""
        reg = itasks.registry
        s_count = self.num_shards
        parts = [reg.act_part(layer, mb, s).tid for s in range(s_count)]
        fulls = [reg.activation(layer, mb, s).tid for s in range(s_count)]
        out_bytes = self.model.layer(layer).out_bytes(self.microbatch_size)
        task = Task(
            tid=self._tid(),
            kind=TaskKind.ALLREDUCE,
            label=f"allgather[L{layer}]/mb{mb}",
            layers=(layer,),
            microbatch=mb,
            reads=tuple(parts),
            writes=tuple(fulls),
            frees=tuple(parts),
            comm_bytes=(s_count - 1) / s_count * out_bytes,
            participants=tuple(f"shard{s}" for s in range(s_count)),
            deps=frozenset(
                itasks.fwd[(s, layer, mb)].tid for s in range(s_count)
            ),
        )
        itasks.graph.add(task)
        itasks.gather[(layer, mb)] = task

    # -- backward --------------------------------------------------------------

    def _emit_backward(self, itasks: ShardedIterationTasks) -> None:
        reg = itasks.registry
        s_count = self.num_shards
        last_layer = len(self.model) - 1
        for mb in range(self.num_microbatches):
            for layer in range(last_layer, -1, -1):
                spec = self.model.layer(layer)
                for s in range(s_count):
                    reads = [
                        reg.stash(layer, mb, s).tid,
                        reg.weight(layer, s).tid,
                        reg.weight_grad(layer, s).tid,
                    ]
                    writes = [reg.weight_grad(layer, s).tid]
                    frees = [reg.stash(layer, mb, s).tid]
                    deps: set[int] = set()
                    if layer != last_layer:
                        grad_in = reg.act_grad(layer, mb, s).tid
                        reads.insert(0, grad_in)
                        frees.append(grad_in)
                        if s_count > 1:
                            deps.add(itasks.grad_coll[(layer, mb)].tid)
                        else:
                            deps.add(itasks.bwd[(0, layer + 1, mb)].tid)
                    if layer > 0:
                        if s_count > 1:
                            writes.append(reg.grad_part(layer - 1, mb, s).tid)
                        else:
                            writes.append(reg.act_grad(layer - 1, mb, s).tid)
                    deps.add(itasks.fwd[(s, layer, mb)].tid)
                    task = Task(
                        tid=self._tid(),
                        kind=TaskKind.COMPUTE,
                        label=f"bwd[L{layer}.s{s}]/mb{mb}",
                        phase=Phase.BACKWARD,
                        layers=(layer,),
                        microbatch=mb,
                        replica=s,
                        reads=tuple(reads),
                        writes=tuple(writes),
                        frees=tuple(frees),
                        flops=spec.flops(Phase.BACKWARD, self.microbatch_size)
                        / s_count,
                        deps=frozenset(deps),
                    )
                    if self.accumulate_ordering and mb > 0:
                        task.add_dep(itasks.bwd[(s, layer, mb - 1)].tid)
                    itasks.graph.add(task)
                    itasks.bwd[(s, layer, mb)] = task
                if s_count > 1 and layer > 0:
                    self._emit_grad_collective(itasks, layer - 1, mb)

    def _emit_grad_collective(
        self, itasks: ShardedIterationTasks, boundary: int, mb: int
    ) -> None:
        """All-reduce the shards' dense partial input-gradient
        contributions into full dX replicas (2(S-1)/S x |dX| per
        participant on the wire)."""
        reg = itasks.registry
        s_count = self.num_shards
        parts = [reg.grad_part(boundary, mb, s).tid for s in range(s_count)]
        fulls = [reg.act_grad(boundary, mb, s).tid for s in range(s_count)]
        grad_bytes = self.model.layer(boundary).out_bytes(self.microbatch_size)
        task = Task(
            tid=self._tid(),
            kind=TaskKind.ALLREDUCE,
            label=f"gradreduce[L{boundary}]/mb{mb}",
            layers=(boundary,),
            microbatch=mb,
            reads=tuple(parts),
            writes=tuple(fulls),
            frees=tuple(parts),
            comm_bytes=2 * (s_count - 1) / s_count * grad_bytes,
            participants=tuple(f"shard{s}" for s in range(s_count)),
            deps=frozenset(
                itasks.bwd[(s, boundary + 1, mb)].tid for s in range(s_count)
            ),
        )
        itasks.graph.add(task)
        itasks.grad_coll[(boundary, mb)] = task

    # -- update ------------------------------------------------------------------

    def _emit_update(self, itasks: ShardedIterationTasks) -> None:
        """Per-shard updates: every shard owns its W/dW/K slice, so no
        gradient synchronization is needed — a structural advantage of
        operation decomposition over data parallelism."""
        reg = itasks.registry
        last_mb = self.num_microbatches - 1
        for layer in range(len(self.model)):
            spec = self.model.layer(layer)
            for s in range(self.num_shards):
                tensors = [
                    reg.weight_grad(layer, s).tid,
                    reg.weight(layer, s).tid,
                    reg.opt_state(layer, s).tid,
                ]
                task = Task(
                    tid=self._tid(),
                    kind=TaskKind.COMPUTE,
                    label=f"upd[L{layer}.s{s}]",
                    phase=Phase.UPDATE,
                    layers=(layer,),
                    replica=s,
                    reads=tuple(tensors),
                    writes=tuple(tensors),
                    flops=spec.flops(Phase.UPDATE, 1) / self.num_shards,
                    deps=frozenset({itasks.bwd[(s, layer, last_mb)].tid}),
                )
                itasks.graph.add(task)
                itasks.upd[(s, layer)] = task
