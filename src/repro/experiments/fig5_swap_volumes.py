"""Fig. 5 + the §3 analytical comparison: weight swap volumes.

The paper derives, for an R-layer model with m microbatches per GPU on
N GPUs:

* DP + per-GPU virtualization:  (4m + 2) N |W|   (Fig. 5(b))
* Harmony-DP:                    3 N |W|          (Fig. 5(c))
* Harmony-PP:                    3 |W|            (Fig. 4's schedule)

This driver validates the simulator against those closed forms in the
paper's idealized setting: uniform layers ("like Transformers"), GPU
capacity that "permits it to only hold one layer-level operation on 1
micro-batch at any time", and a baseline swapper with no reuse window.
The baseline must match *exactly*; the Harmony schedules are allowed
to come in at-or-under the formula (the closed form ignores the
boundary adjacencies a real schedule exploits, e.g. the top layer's
weights are still resident when its backward group starts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytic.volumes import (
    weight_volume_baseline_dp,
    weight_volume_harmony_dp,
    weight_volume_harmony_pp,
)
from repro.hardware import presets
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.topology import Topology
from repro.memory.policy import MemoryPolicy
from repro.models import zoo
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig
from repro.schedulers.dp_baseline import DataParallelBaseline
from repro.schedulers.harmony_dp import HarmonyDP
from repro.schedulers.harmony_pp import HarmonyPP
from repro.sim.executor import Executor
from repro.tensors.tensor import TensorKind
from repro.units import GB, MB, TFLOP
from repro.util.tables import Table


@dataclass(frozen=True)
class VolumeRow:
    scheme: str
    num_gpus: int
    num_microbatches: int
    analytic_bytes: float
    simulated_bytes: float

    @property
    def ratio(self) -> float:
        if self.analytic_bytes == 0:
            return 0.0
        return self.simulated_bytes / self.analytic_bytes


def _ideal_setting(
    num_layers: int, num_gpus: int
) -> tuple[ModelGraph, Topology]:
    """Uniform layers; capacity fits one layer-level op (the largest
    working set is the update: |W| + |dW| + |K| = 400 MB here)."""
    model = zoo.synthetic_uniform(
        num_layers=num_layers,
        param_bytes_per_layer=100 * MB,
        activation_bytes=25 * MB,
    )
    topology = presets.commodity_server(
        num_gpus=num_gpus,
        gpu_factory=lambda name: DeviceSpec(
            name, DeviceKind.GPU, 420 * MB, 4.5 * TFLOP
        ),
    )
    return model, topology


def run(
    num_layers: int = 4, num_gpus: int = 2, num_microbatches: int = 3
) -> list[VolumeRow]:
    model, topology = _ideal_setting(num_layers, num_gpus)
    batch = BatchConfig(1, num_microbatches)
    m, n = num_microbatches, num_gpus
    rows = []

    plan = DataParallelBaseline(
        model, topology, batch, policy=MemoryPolicy.paper_baseline()
    ).plan()
    result = Executor(topology, plan).run()
    rows.append(
        VolumeRow(
            "dp-baseline", n, m,
            weight_volume_baseline_dp(model, m, n),
            result.stats.kind_swap_volume(TensorKind.WEIGHT),
        )
    )

    plan = HarmonyDP(model, topology, batch).plan()
    result = Executor(topology, plan).run()
    rows.append(
        VolumeRow(
            "harmony-dp", n, m,
            weight_volume_harmony_dp(model, m, n),
            result.stats.kind_swap_volume(TensorKind.WEIGHT),
        )
    )

    plan = HarmonyPP(model, topology, batch).plan()
    result = Executor(topology, plan).run()
    rows.append(
        VolumeRow(
            "harmony-pp", n, m,
            weight_volume_harmony_pp(model, m, n),
            result.stats.kind_swap_volume(TensorKind.WEIGHT),
        )
    )
    return rows


def table(rows: list[VolumeRow] | None = None) -> Table:
    rows = rows if rows is not None else run()
    out = Table(
        ["scheme", "N", "m", "analytic (GB)", "simulated (GB)", "sim/analytic"],
        title="Fig. 5 / paper-section-3: per-iteration weight swap volume",
    )
    for row in rows:
        out.add_row(
            [
                row.scheme,
                row.num_gpus,
                row.num_microbatches,
                f"{row.analytic_bytes / GB:.2f}",
                f"{row.simulated_bytes / GB:.2f}",
                f"{row.ratio:.2f}",
            ]
        )
    return out
