"""Experiment drivers: one module per paper figure/claim.

Each driver returns structured rows (for tests and benchmarks to
assert against) plus a printable table mirroring what the paper's
figure reports.  Benchmarks in ``benchmarks/`` call these; the
``examples/`` scripts print them.
"""

from repro.experiments import fig1_growth
from repro.experiments import fig2a_dp_swap
from repro.experiments import fig2b_interconnect
from repro.experiments import fig2c_pp_imbalance
from repro.experiments import fig4_schedule
from repro.experiments import fig5_swap_volumes
from repro.experiments import sec4_feasibility
from repro.experiments import ablations
from repro.experiments import faults_degradation
from repro.experiments import schedule_zoo

__all__ = [
    "fig1_growth",
    "fig2a_dp_swap",
    "fig2b_interconnect",
    "fig2c_pp_imbalance",
    "fig4_schedule",
    "fig5_swap_volumes",
    "sec4_feasibility",
    "ablations",
    "faults_degradation",
    "schedule_zoo",
]
