"""Fig. 2(a): data-parallel training with per-GPU tensor swapping.

The paper trains BERT (per-GPU batch 5, PyTorch-1.5 + IBM-LMS) on a
4x 1080Ti server and shows that (i) global swap-out volume grows
linearly with the number of GPUs and (ii) throughput is throttled by
the shared host link (strongly sublinear scaling).  This driver runs
the same sweep on the simulated server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import presets
from repro.models.graph import ModelGraph
from repro.models.transformer import bert_large
from repro.schedulers.base import BatchConfig
from repro.schedulers.dp_baseline import DataParallelBaseline
from repro.sim.executor import Executor
from repro.units import GB
from repro.util.tables import Table


@dataclass(frozen=True)
class DpSwapRow:
    num_gpus: int
    throughput: float          # seqs/sec (global)
    swap_out_bytes: float      # global swap-out volume per iteration
    host_traffic_bytes: float
    uplink_utilization: float


def run(
    model: ModelGraph | None = None,
    per_gpu_batch: int = 5,
    max_gpus: int = 4,
) -> list[DpSwapRow]:
    model = model if model is not None else bert_large(seq_len=512)
    rows = []
    for n in range(1, max_gpus + 1):
        topology = presets.gtx1080ti_server(num_gpus=n)
        plan = DataParallelBaseline(
            model, topology, BatchConfig(per_gpu_batch, 1), num_replicas=n
        ).plan()
        result = Executor(topology, plan).run()
        __, utilization = result.bottleneck_link()
        rows.append(
            DpSwapRow(
                num_gpus=n,
                throughput=result.throughput,
                swap_out_bytes=result.swap_out_volume,
                host_traffic_bytes=result.host_traffic,
                uplink_utilization=utilization,
            )
        )
    return rows


def table(rows: list[DpSwapRow] | None = None) -> Table:
    rows = rows if rows is not None else run()
    out = Table(
        ["# GPUs", "throughput (seqs/s)", "swap-out vol (GB)",
         "host traffic (GB)", "uplink util %"],
        title="Fig. 2(a): DP + per-GPU swapping, BERT, per-GPU batch 5",
    )
    for row in rows:
        out.add_row(
            [
                row.num_gpus,
                f"{row.throughput:.2f}",
                f"{row.swap_out_bytes / GB:.1f}",
                f"{row.host_traffic_bytes / GB:.1f}",
                f"{100 * row.uplink_utilization:.0f}",
            ]
        )
    return out
