"""Schedule zoo: per-stage memory footprint vs throughput, all schemes.

The figure behind ``python -m repro compare --schedule-zoo``: every
registered scheduler runs the same workload, and each run reports both
its throughput and the peak *activation-class* bytes resident per
device (``DeviceReport.peak_activation``).  That second axis is what
separates the pipeline schedules: GPipe-style orders stash every
in-flight microbatch, 1F1B bounds the stash by pipeline depth, DAPPLE's
early backward frees it sooner still, and Harmony's interleaved
placement spreads it evenly — differences that throughput alone hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import HarmonyConfig
from repro.errors import PoisonedSpecError, ReproError
from repro.hardware import presets
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.topology import Topology
from repro.models import zoo
from repro.models.graph import ModelGraph
from repro.perf import RunSpec, SweepRunner
from repro.schedulers import scheme_names
from repro.schedulers.base import BatchConfig
from repro.units import MB, TFLOP, fmt_bytes
from repro.util.tables import Table


@dataclass(frozen=True)
class ZooRow:
    """One scheme's point in the memory-vs-throughput plane."""

    scheme: str
    feasible: bool
    reason: str = ""
    throughput: float = 0.0
    makespan: float = 0.0
    swap_out: float = 0.0
    #: device -> peak activation-class bytes resident.
    activation_peaks: dict[str, float] = field(default_factory=dict)

    @property
    def max_stage_activation(self) -> float:
        """The bottleneck stage's activation footprint."""
        return max(self.activation_peaks.values(), default=0.0)


def default_workload() -> tuple[ModelGraph, Topology, BatchConfig]:
    """The Fig. 4 grid (4 uniform layers on two tight GPUs), scaled to
    four microbatches so the pipeline schedules' in-flight behavior is
    visible."""
    model = zoo.synthetic_uniform(
        num_layers=4, param_bytes_per_layer=100 * MB, activation_bytes=25 * MB
    )
    topology = presets.commodity_server(
        num_gpus=2,
        gpu_factory=lambda name: DeviceSpec(
            name, DeviceKind.GPU, 550 * MB, 4.5 * TFLOP
        ),
    )
    return model, topology, BatchConfig(1, 4)


def run(
    model: ModelGraph | None = None,
    topology: Topology | None = None,
    batch: BatchConfig | None = None,
    schemes: tuple[str, ...] | None = None,
    jobs: int = 1,
    cache=None,
    supervisor=None,
) -> list[ZooRow]:
    """Run every scheme (default: the full registry) on one workload.

    Infeasible scheme/workload combinations become rows with
    ``feasible=False`` rather than aborting the sweep — the zoo figure
    is a survey, not a gate.
    """
    if model is None or topology is None or batch is None:
        d_model, d_topo, d_batch = default_workload()
        model = model if model is not None else d_model
        topology = topology if topology is not None else d_topo
        batch = batch if batch is not None else d_batch
    schemes = schemes if schemes is not None else scheme_names()
    specs = [
        RunSpec(model, topology, HarmonyConfig(s, batch=batch), label=s)
        for s in schemes
    ]
    if supervisor is not None:
        outcomes = supervisor.run_specs(specs, return_exceptions=True)
    else:
        outcomes = SweepRunner(jobs=jobs, cache=cache).run_all(
            specs, return_exceptions=True
        )
    rows: list[ZooRow] = []
    for scheme, outcome in zip(schemes, outcomes):
        if isinstance(outcome, (ReproError, PoisonedSpecError)):
            rows.append(ZooRow(scheme=scheme, feasible=False, reason=str(outcome)))
            continue
        rows.append(
            ZooRow(
                scheme=scheme,
                feasible=True,
                throughput=outcome.throughput,
                makespan=outcome.makespan,
                swap_out=outcome.swap_out_volume,
                activation_peaks=outcome.activation_peaks(),
            )
        )
    return rows


def table(rows: list[ZooRow]) -> Table:
    t = Table(
        ["scheme", "samples/s", "makespan s", "swap-out",
         "peak act (bottleneck)", "peak act per device"],
        title="schedule zoo: throughput vs per-stage activation footprint",
    )
    for row in rows:
        if not row.feasible:
            t.add_row([row.scheme, "infeasible", "-", "-", "-", row.reason])
            continue
        per_device = " ".join(
            f"{dev}:{fmt_bytes(peak)}"
            for dev, peak in row.activation_peaks.items()
        )
        t.add_row(
            [
                row.scheme,
                f"{row.throughput:.3f}",
                f"{row.makespan:.3f}",
                fmt_bytes(row.swap_out),
                fmt_bytes(row.max_stage_activation),
                per_device,
            ]
        )
    return t


def stage_memory_figure(rows: list[ZooRow], width: int = 36) -> str:
    """ASCII bars: each scheme's per-device peak activation residency,
    scaled to the zoo-wide maximum (the memory half of the figure)."""
    scale = max(
        (row.max_stage_activation for row in rows if row.feasible), default=0.0
    )
    lines = ["per-stage peak activation (scale: " + fmt_bytes(scale) + ")"]
    if scale <= 0:
        return lines[0]
    name_w = max(len(row.scheme) for row in rows)
    for row in rows:
        if not row.feasible:
            lines.append(f"{row.scheme:<{name_w}}  (infeasible)")
            continue
        for i, (dev, peak) in enumerate(row.activation_peaks.items()):
            label = row.scheme if i == 0 else ""
            bar = "#" * round(peak / scale * width)
            lines.append(
                f"{label:<{name_w}}  {dev} |{bar:<{width}}| {fmt_bytes(peak)}"
            )
    return "\n".join(lines)
