"""Fig. 2(b): intra-server interconnects.

The paper's diagram shows GPUs behind PCIe switches funnelling into a
single host link (4:1/8:1 oversubscription), motivating why host-only
swapping bottlenecks and p2p transfers do not.  This driver turns the
diagram into a measurable microbenchmark: the effective per-GPU swap
bandwidth as concurrent swappers are added, versus the p2p bandwidth
between switch-local GPUs (which does not degrade).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import presets
from repro.hardware.topology import Topology
from repro.sim.engine import ResourceTimeline
from repro.units import GB
from repro.util.tables import Table


@dataclass(frozen=True)
class ContentionRow:
    concurrent_swappers: int
    per_gpu_host_bandwidth: float  # bytes/sec achieved per GPU
    p2p_bandwidth: float           # switch-local GPU-to-GPU, uncontended
    oversubscription: float


def _measure_host_bandwidth(
    topology: Topology, num_swappers: int, volume_bytes: float
) -> float:
    """Simulate ``num_swappers`` GPUs each pushing ``volume_bytes`` to
    host concurrently; return achieved per-GPU bandwidth."""
    links = {name: ResourceTimeline(name) for name in topology.links}
    gpus = topology.gpus()[:num_swappers]
    finish = 0.0
    for gpu in gpus:
        route = topology.host_route(gpu.name)
        duration = route.transfer_time(volume_bytes)
        timelines = [links[link.name] for link in route.links]
        __, end = ResourceTimeline.acquire_all(timelines, 0.0, duration)
        finish = max(finish, end)
    return volume_bytes * num_swappers / finish / num_swappers


def run(
    topology: Topology | None = None, volume_bytes: float = 1 * GB
) -> list[ContentionRow]:
    topology = topology if topology is not None else presets.gtx1080ti_server(4)
    gpus = topology.gpus()
    p2p_bw = 0.0
    if len(gpus) >= 2:
        route = topology.route(gpus[0].name, gpus[1].name)
        p2p_bw = volume_bytes / route.transfer_time(volume_bytes)
    rows = []
    for k in range(1, len(gpus) + 1):
        rows.append(
            ContentionRow(
                concurrent_swappers=k,
                per_gpu_host_bandwidth=_measure_host_bandwidth(
                    topology, k, volume_bytes
                ),
                p2p_bandwidth=p2p_bw,
                oversubscription=topology.host_uplink_oversubscription(),
            )
        )
    return rows


def table(rows: list[ContentionRow] | None = None) -> Table:
    rows = rows if rows is not None else run()
    out = Table(
        ["concurrent swappers", "per-GPU host BW (GB/s)", "p2p BW (GB/s)"],
        title=(
            "Fig. 2(b): host-uplink contention "
            f"({rows[0].oversubscription:.0f}:1 oversubscription)"
        ),
    )
    for row in rows:
        out.add_row(
            [
                row.concurrent_swappers,
                f"{row.per_gpu_host_bandwidth / GB:.2f}",
                f"{row.p2p_bandwidth / GB:.2f}",
            ]
        )
    return out
