"""Paper §4: end-to-end training feasibility arithmetic.

Checks the paper's numbers from first principles:

* GPT-3 pre-training = 314 ZFLOPs (we compute 6 * params * tokens from
  the reconstructed 175 B-parameter model and the published 300 B
  training tokens);
* pre-training on "tens of GPUs" takes years;
* fine-tuning (< 10s of exaFLOPs) takes days on a modest server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytic.feasibility import (
    GPT3_TRAINING_TOKENS,
    FeasibilityCase,
    feasibility_report,
    pretraining_flops,
)
from repro.models.transformer import gpt3_175b
from repro.units import ZFLOP
from repro.util.tables import Table


@dataclass
class FeasibilityResult:
    computed_pretrain_flops: float
    paper_pretrain_flops: float
    cases: list[FeasibilityCase]
    table: Table

    @property
    def flops_relative_error(self) -> float:
        return (
            self.computed_pretrain_flops - self.paper_pretrain_flops
        ) / self.paper_pretrain_flops


def run() -> FeasibilityResult:
    model = gpt3_175b()
    computed = pretraining_flops(model.param_count, GPT3_TRAINING_TOKENS)
    cases, tbl = feasibility_report(gpt3_params=model.param_count)
    return FeasibilityResult(
        computed_pretrain_flops=computed,
        paper_pretrain_flops=314 * ZFLOP,
        cases=cases,
        table=tbl,
    )
