"""Fig. 4: Harmony-PP on the paper's toy example.

"A simplified example of training a four-layer 'large' model on two
GPUs with virtualized pipeline parallelism in Harmony (assumes
layer-level granularity and layer runtimes are uniform)" — two
microbatches, layers placed L1/L3 on GPU 1 and L2/L4 on GPU 2, each
layer's forward and backward run on both microbatches back-to-back,
boundary tensors travel p2p, and each layer's update runs jit after
its backward group.

This driver builds exactly that configuration, runs it, and exposes
both the per-GPU compute sequences (for structural assertions) and an
ASCII timeline (the figure itself).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import HarmonyConfig, Parallelism
from repro.core.session import HarmonySession
from repro.hardware import presets
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.models import zoo
from repro.schedulers.base import BatchConfig
from repro.schedulers.options import HarmonyOptions
from repro.sim.result import RunResult
from repro.sim.trace import render_timeline
from repro.units import MB, TFLOP


@dataclass
class ScheduleExample:
    result: RunResult
    sequences: dict[str, list[str]]
    timeline: str
    session: HarmonySession


def run(
    num_layers: int = 4,
    num_gpus: int = 2,
    num_microbatches: int = 2,
    param_bytes_per_layer: float = 100 * MB,
    capacity_bytes: float = 550 * MB,
) -> ScheduleExample:
    """The Fig. 4 setting: a 'large' model (4 layers x 100 MB weights +
    optimizer state ~= 1.6 GB of training state) on two small GPUs
    whose capacity holds roughly one layer's working set."""
    model = zoo.synthetic_uniform(
        num_layers=num_layers,
        param_bytes_per_layer=param_bytes_per_layer,
        activation_bytes=25 * MB,
    )
    topology = presets.commodity_server(
        num_gpus=num_gpus,
        gpu_factory=lambda name: DeviceSpec(
            name, DeviceKind.GPU, capacity_bytes, 4.5 * TFLOP
        ),
    )
    config = HarmonyConfig(
        parallelism=Parallelism.HARMONY_PP,
        batch=BatchConfig(microbatch_size=1, num_microbatches=num_microbatches),
        options=HarmonyOptions(),  # grouping + jit + p2p, layer granularity
    )
    session = HarmonySession(model, topology, config)
    result = session.run()
    sequences = {
        device: result.trace.compute_sequence(device)
        for device in sorted(result.devices)
    }
    return ScheduleExample(
        result=result,
        sequences=sequences,
        timeline=render_timeline(result.trace, width=100),
        session=session,
    )


def describe(example: ScheduleExample | None = None) -> str:
    example = example if example is not None else run()
    lines = ["Fig. 4: Harmony-PP schedule (4 layers, 2 GPUs, 2 microbatches)", ""]
    for device, sequence in example.sequences.items():
        lines.append(f"{device}: " + " -> ".join(sequence))
    lines.append("")
    lines.append(example.timeline)
    return "\n".join(lines)
