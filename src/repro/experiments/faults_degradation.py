"""Graceful degradation under faults: Harmony vs the rigid baselines.

The sweep injects device losses at decreasing MTTF (mean time to
failure, expressed in fault-free iteration times) into a fixed
multi-iteration workload and measures the goodput each scheme retains.
Harmony's late-binding design re-plans the remaining work onto the
survivors and restarts from the last checkpoint; the per-GPU-
virtualization baselines are pinned to their world size, so a loss
invalidates their checkpoints and rolls back every credited iteration.
The claim mirrored here: Harmony schemes degrade strictly more
gracefully than their corresponding baseline under the same fault plan.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.faults.report import FaultReport
    from repro.supervisor import Supervisor

from repro.core.config import HarmonyConfig
from repro.faults.detection import DetectorConfig
from repro.faults.model import (
    DeviceLoss,
    DeviceReturn,
    FaultPlan,
    SpareDevice,
    TransientTransferError,
    mttf_loss_plan,
)
from repro.faults.recovery import recovery_names
from repro.faults.resilience import ResiliencePolicy
from repro.faults.runner import run_resilient
from repro.hardware import presets
from repro.hardware.topology import Topology
from repro.models import zoo
from repro.models.graph import ModelGraph
from repro.schedulers.base import BatchConfig
from repro.sim.executor import ExecOptions, Executor
from repro.schedulers import build_scheduler
from repro.units import GB
from repro.util.tables import Table

#: (harmony scheme, rigid baseline it is compared against)
SCHEME_PAIRS = (
    ("harmony-dp", "dp-baseline"),
    ("harmony-pp", "pp-baseline"),
)


@dataclass(frozen=True)
class DegradationRow:
    """One (scheme, MTTF) cell of the sweep."""

    scheme: str
    mttf_iters: float          # MTTF in fault-free iteration times (inf = healthy)
    losses: int
    replans: int
    iterations_redone: int
    retried_gb: float
    goodput: float             # credited samples / total wall-clock
    goodput_ratio: float       # vs the scheme's own fault-free run
    recovered: bool


def _iteration_time(
    scheme: str, model: ModelGraph, topology: Topology, batch: BatchConfig
) -> float:
    plan = build_scheduler(scheme, model, topology, batch).plan()
    return Executor(topology, plan, options=ExecOptions()).run().makespan


def _run_cell(payload) -> "FaultReport":
    """Process-pool worker for one (MTTF, scheme) cell (top-level for
    pickling); only the fault report travels back to the parent."""
    model, topology, config, plan, iterations = payload
    result = run_resilient(model, topology, config, plan, iterations=iterations)
    return result.faults


def run(
    model: ModelGraph | None = None,
    num_gpus: int = 4,
    iterations: int = 6,
    mttf_iters: tuple[float, ...] = (float("inf"), 8.0, 4.0, 2.5),
    transient_probability: float = 0.02,
    seed: int = 1,
    batch: BatchConfig | None = None,
    jobs: int = 1,
    supervisor: "Supervisor | None" = None,
) -> list[DegradationRow]:
    """Sweep fault rates over every scheme pair; rows are grouped by
    MTTF so the table reads as Fig.-style columns per scheme.

    Every (MTTF, scheme) cell is an independent resilient run whose
    fault plan is fully determined by ``seed``, so with ``jobs > 1``
    the cells fan out over a process pool; results come back in cell
    order, keeping the table byte-identical to a serial sweep.  With a
    ``supervisor`` the cells run as journaled, watchdogged tasks
    instead — an interrupted MTTF sweep resumes from its last
    completed cell (the CLI's ``--journal``)."""
    model = model if model is not None else zoo.synthetic_uniform(num_layers=8)
    topology = presets.gtx1080ti_server(num_gpus=num_gpus)
    batch = batch if batch is not None else BatchConfig()
    schemes = [s for pair in SCHEME_PAIRS for s in pair]
    iter_time = {
        scheme: _iteration_time(scheme, model, topology, batch)
        for scheme in schemes
    }

    cells: list[tuple[float, str]] = [
        (mttf, scheme) for mttf in mttf_iters for scheme in schemes
    ]
    payloads = []
    for mttf, scheme in cells:
        faults: tuple = ()
        if transient_probability > 0:
            faults = (
                TransientTransferError(probability=transient_probability),
            )
        if mttf != float("inf"):
            # MTTF measured in this scheme's own iteration times, so
            # every scheme faces proportionally equal fault pressure.
            horizon = iter_time[scheme] * iterations
            plan = mttf_loss_plan(
                [g.name for g in topology.gpus()],
                mttf=mttf * iter_time[scheme],
                horizon=horizon,
                seed=seed,
                extra=faults,
            )
        else:
            plan = FaultPlan(seed=seed, faults=faults)
        config = HarmonyConfig(scheme, batch=batch)
        payloads.append((model, topology, config, plan, iterations))

    if supervisor is not None:
        from repro.perf.fingerprint import FingerprintError, fingerprint
        from repro.supervisor import Task

        tasks = []
        for (mttf, scheme), payload in zip(cells, payloads):
            model_, topology_, config, _, _ = payload
            try:
                content = fingerprint(model_, topology_, config)
            except FingerprintError:
                content = "nokey"
            tasks.append(
                Task(
                    key=(
                        f"faults:{content}:mttf={mttf:g}:iters={iterations}"
                        f":seed={seed}:tp={transient_probability:g}"
                    ),
                    fn=_run_cell,
                    payload=payload,
                    label=f"{scheme}@mttf={mttf:g}",
                    cacheable=True,
                )
            )
        reports = supervisor.run_tasks(tasks)
    elif jobs > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
            # pool.map preserves input order: parallel rows land in the
            # same (mttf, scheme) order the serial loop produces.
            reports = list(pool.map(_run_cell, payloads))
    else:
        reports = [_run_cell(p) for p in payloads]

    rows: list[DegradationRow] = []
    for (mttf, scheme), report in zip(cells, reports):
        rows.append(
            DegradationRow(
                scheme=scheme,
                mttf_iters=mttf,
                losses=len(report.device_losses),
                replans=report.replans,
                iterations_redone=report.iterations_redone,
                retried_gb=report.retried_bytes / GB,
                goodput=report.goodput,
                goodput_ratio=report.goodput_ratio,
                recovered=report.recovered,
            )
        )
    return rows


def table(rows: list[DegradationRow] | None = None) -> Table:
    rows = rows if rows is not None else run()
    out = Table(
        ["mttf (iters)", "scheme", "losses", "replans", "redone",
         "retried GB", "goodput", "vs fault-free", "recovered"],
        title="graceful degradation under device loss (goodput ratio, higher is better)",
    )
    for row in rows:
        mttf = "healthy" if row.mttf_iters == float("inf") else f"{row.mttf_iters:g}"
        out.add_row([
            mttf,
            row.scheme,
            str(row.losses),
            str(row.replans),
            str(row.iterations_redone),
            f"{row.retried_gb:.3f}",
            f"{row.goodput:.3f}",
            f"{row.goodput_ratio:.3f}",
            "yes" if row.recovered else "NO",
        ])
    return out


# -- recovery-policy sweep (MTTR x policy x scheme) ---------------------------

#: Schemes the recovery sweep crosses with every registered policy:
#: both Harmony/baseline DP flavors plus Harmony's pipeline scheme.
RECOVERY_SCHEMES = ("harmony-dp", "dp-baseline", "harmony-pp")


@dataclass(frozen=True)
class RecoveryRow:
    """One (scheme, recovery policy) cell of the MTTR sweep."""

    scheme: str
    policy: str
    losses: int
    rejoins: int
    spares_used: int
    mttr_p50: float            # median time-to-repair across incidents
    mttr_p95: float
    stall_seconds: float       # grace-window holds (wait-rejoin)
    goodput: float
    goodput_ratio: float       # vs the scheme's own fault-free run
    recovered: bool


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a sorted sample (0.0 when empty)."""
    if not values:
        return 0.0
    idx = min(len(values) - 1, max(0, int(round(q * (len(values) - 1)))))
    return values[idx]


def _run_recovery_cell(payload) -> "FaultReport":
    """Process-pool worker for one (scheme, policy) cell."""
    model, topology, config, plan, policy, iterations = payload
    result = run_resilient(
        model, topology, config, plan, policy=policy, iterations=iterations
    )
    return result.faults


def run_recovery(
    model: ModelGraph | None = None,
    num_gpus: int = 4,
    iterations: int = 6,
    policies: tuple[str, ...] | None = None,
    schemes: tuple[str, ...] = RECOVERY_SCHEMES,
    seed: int = 1,
    batch: BatchConfig | None = None,
    jobs: int = 1,
) -> list[RecoveryRow]:
    """Cross every recovery policy with ``schemes`` on one *fixed* fault
    scenario — a mid-run device loss, a return inside the grace window,
    and one cold spare — so the policies differ only in what they do
    about it.  Detection runs the adaptive phi-accrual detector; the
    loss is timed per scheme in its own iteration times so every scheme
    faces the same relative disruption.  Deterministic in ``seed``."""
    model = model if model is not None else zoo.synthetic_uniform(num_layers=8)
    topology = presets.gtx1080ti_server(num_gpus=num_gpus)
    batch = batch if batch is not None else BatchConfig()
    policies = policies if policies is not None else recovery_names()
    iter_time = {
        scheme: _iteration_time(scheme, model, topology, batch)
        for scheme in schemes
    }
    victim = topology.gpus()[0].name

    cells: list[tuple[str, str]] = [
        (scheme, policy) for scheme in schemes for policy in policies
    ]
    payloads = []
    for scheme, policy_name in cells:
        t_iter = iter_time[scheme]
        plan = FaultPlan(seed=seed, faults=(
            DeviceLoss(victim, at=1.5 * t_iter),
            # Comes back three-quarters of an iteration later: inside
            # wait-rejoin's grace window below.
            DeviceReturn(victim, at=2.25 * t_iter),
            SpareDevice("spare0"),
        ))
        policy = replace(
            ResiliencePolicy.for_scheme(scheme),
            recovery=policy_name,
            grace_window=1.5 * t_iter,
            spare_attach_seconds=0.05 * t_iter,
            detection=DetectorConfig(kind="phi-accrual"),
        )
        config = HarmonyConfig(scheme, batch=batch)
        payloads.append((model, topology, config, plan, policy, iterations))

    if jobs > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
            reports = list(pool.map(_run_recovery_cell, payloads))
    else:
        reports = [_run_recovery_cell(p) for p in payloads]

    rows: list[RecoveryRow] = []
    for (scheme, policy_name), report in zip(cells, reports):
        mttrs = report.mttr_values()
        rows.append(
            RecoveryRow(
                scheme=scheme,
                policy=policy_name,
                losses=len(report.device_losses),
                rejoins=report.rejoins,
                spares_used=report.spares_used,
                mttr_p50=_percentile(mttrs, 0.50),
                mttr_p95=_percentile(mttrs, 0.95),
                stall_seconds=report.stall_seconds,
                goodput=report.goodput,
                goodput_ratio=report.goodput_ratio,
                recovered=report.recovered,
            )
        )
    return rows


def recovery_table(rows: list[RecoveryRow] | None = None) -> Table:
    rows = rows if rows is not None else run_recovery()
    out = Table(
        ["scheme", "policy", "losses", "rejoins", "spares",
         "mttr p50 (s)", "mttr p95 (s)", "stalled (s)", "goodput",
         "vs fault-free", "recovered"],
        title="recovery-policy zoo: MTTR and goodput per policy (fixed fault plan)",
    )
    for row in rows:
        out.add_row([
            row.scheme,
            row.policy,
            str(row.losses),
            str(row.rejoins),
            str(row.spares_used),
            f"{row.mttr_p50:.3f}",
            f"{row.mttr_p95:.3f}",
            f"{row.stall_seconds:.3f}",
            f"{row.goodput:.3f}",
            f"{row.goodput_ratio:.3f}",
            "yes" if row.recovered else "NO",
        ])
    return out


def gracefulness(rows: list[DegradationRow]) -> list[tuple[str, str, float, float, float]]:
    """(harmony scheme, baseline, mttf, harmony ratio, baseline ratio)
    for every cell where a device loss actually struck both schemes —
    the quantity the claim test asserts on.  Cells whose MTTF exceeds
    the run's horizon see no loss and carry only retry noise, so they
    say nothing about degradation."""
    by_key = {(r.scheme, r.mttf_iters): r for r in rows}
    out = []
    for harmony, baseline in SCHEME_PAIRS:
        for (scheme, mttf), row in sorted(by_key.items()):
            if scheme != harmony or mttf == float("inf"):
                continue
            base = by_key[(baseline, mttf)]
            if row.losses == 0 or base.losses == 0:
                continue
            out.append((harmony, baseline, mttf, row.goodput_ratio, base.goodput_ratio))
    return out
