"""Ablations: attribute Harmony's win to its individual mechanisms.

The paper's §3 lists four optimizations (input-batch grouping,
just-in-time scheduling, p2p transfers, task packing) plus the memory
manager's dirty-bit tracking.  Each ablation disables exactly one
mechanism on a weight-dominated workload (model state >> per-GPU
memory, the regime the paper targets) and reports the throughput and
swap-volume cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import HarmonyConfig, Parallelism
from repro.errors import CapacityError
from repro.core.session import HarmonySession
from repro.hardware import presets
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.models.transformer import gpt2_xl
from repro.schedulers.base import BatchConfig
from repro.schedulers.options import HarmonyOptions
from repro.units import GB
from repro.util.tables import Table


@dataclass(frozen=True)
class AblationRow:
    variant: str
    throughput: float
    swap_out_bytes: float
    host_traffic_bytes: float
    p2p_bytes: float
    feasible: bool = True


def default_workload() -> tuple[ModelGraph, Topology, BatchConfig]:
    """GPT-2 XL on the 4x 1080Ti server: 25 GB of training state vs
    11 GB per GPU — weights must swap, the regime of the paper's
    analytical comparison."""
    return (
        gpt2_xl(seq_len=1024),
        presets.gtx1080ti_server(num_gpus=4),
        BatchConfig(microbatch_size=1, num_microbatches=4),
    )


def _variants(parallelism: Parallelism) -> list[tuple[str, HarmonyOptions]]:
    full = HarmonyOptions()
    rows = [
        ("full harmony", full),
        ("no grouping", HarmonyOptions(grouping=False)),
        ("no jit update", HarmonyOptions(jit_update=False)),
        ("no p2p", HarmonyOptions(p2p=False)),
        ("no dirty-bit tracking", HarmonyOptions(track_clean=False)),
        ("pack=2", HarmonyOptions(pack_size=2)),
        ("pack=4", HarmonyOptions(pack_size=4)),
    ]
    return rows


def run(
    parallelism: Parallelism | str = Parallelism.HARMONY_PP,
    model: ModelGraph | None = None,
    topology: Topology | None = None,
    batch: BatchConfig | None = None,
) -> list[AblationRow]:
    if model is None or topology is None or batch is None:
        default_model, default_topo, default_batch = default_workload()
        model = model if model is not None else default_model
        topology = topology if topology is not None else default_topo
        batch = batch if batch is not None else default_batch
    parallelism = Parallelism.parse(parallelism)
    rows = []
    for label, options in _variants(parallelism):
        session = HarmonySession(
            model,
            topology,
            HarmonyConfig(parallelism=parallelism, batch=batch, options=options),
        )
        try:
            result = session.run()
        except CapacityError:
            # A coarser pack can exceed device memory on tight
            # configurations — that infeasibility is itself a data point
            # of the memory-performance tango.
            rows.append(
                AblationRow(
                    variant=label, throughput=0.0, swap_out_bytes=0.0,
                    host_traffic_bytes=0.0, p2p_bytes=0.0, feasible=False,
                )
            )
            continue
        rows.append(
            AblationRow(
                variant=label,
                throughput=result.throughput,
                swap_out_bytes=result.swap_out_volume,
                host_traffic_bytes=result.host_traffic,
                p2p_bytes=result.stats.p2p_volume(),
            )
        )
    return rows


def table(rows: list[AblationRow] | None = None, title: str | None = None) -> Table:
    rows = rows if rows is not None else run()
    out = Table(
        ["variant", "samples/s", "swap-out (GB)", "host traffic (GB)", "p2p (GB)"],
        title=title or "Harmony optimization ablations (GPT-2 XL, 4x 1080Ti)",
    )
    for row in rows:
        out.add_row(
            [
                row.variant if row.feasible else f"{row.variant} (infeasible)",
                f"{row.throughput:.3f}",
                f"{row.swap_out_bytes / GB:.1f}",
                f"{row.host_traffic_bytes / GB:.1f}",
                f"{row.p2p_bytes / GB:.1f}",
            ]
        )
    return out
