"""Fig. 2(c): pipeline-parallel training with per-GPU tensor swapping.

The paper shows per-GPU memory footprint across the four pipeline
stages of BERT under 1F1B: the head stage's footprint far exceeds GPU
capacity ("Heavy Swap"), decreasing monotonically to the tail which
does not swap at all — the bottleneck-stage problem of per-GPU
virtualization without global context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import presets
from repro.models.graph import ModelGraph
from repro.models.transformer import bert_large
from repro.schedulers.base import BatchConfig
from repro.schedulers.harmony_pp import HarmonyPP
from repro.schedulers.pp_baseline import PipelineBaseline
from repro.sim.executor import Executor
from repro.units import GB
from repro.util.tables import Table


@dataclass(frozen=True)
class StageRow:
    gpu_index: int            # 1-based, as the paper's x-axis
    device: str
    demand_bytes: float       # peak live footprint (the paper's "Mem Usage")
    capacity_bytes: float
    swap_bytes: float         # host traffic attributable to this GPU
    pressure: str             # "heavy swap" / "light swap" / "no swap"


def run(
    model: ModelGraph | None = None,
    num_gpus: int = 4,
    microbatch_size: int = 8,
    num_microbatches: int = 8,
    schedule: str = "1f1b",
) -> list[StageRow]:
    model = model if model is not None else bert_large(seq_len=512)
    topology = presets.gtx1080ti_server(num_gpus=num_gpus)
    plan = PipelineBaseline(
        model, topology, BatchConfig(microbatch_size, num_microbatches),
        schedule=schedule,
    ).plan()
    result = Executor(topology, plan).run()
    rows = []
    for i, device in enumerate(sorted(result.devices)):
        report = result.devices[device]
        rows.append(
            StageRow(
                gpu_index=i + 1,
                device=device,
                demand_bytes=report.peak_demand,
                capacity_bytes=report.capacity,
                swap_bytes=report.swap_in_bytes + report.swap_out_bytes,
                pressure=report.swap_pressure,
            )
        )
    return rows


def run_harmony(
    model: ModelGraph | None = None,
    num_gpus: int = 4,
    microbatch_size: int = 8,
    num_microbatches: int = 8,
) -> list[StageRow]:
    """The same workload under Harmony-PP: interleaved late binding
    spreads the stash load that 1F1B concentrates on the head stage —
    the paper's fourth principle ('Balance load ... multi-dimensional
    load balancing aids in parallel training schedules without pipeline
    bottlenecks')."""
    model = model if model is not None else bert_large(seq_len=512)
    topology = presets.gtx1080ti_server(num_gpus=num_gpus)
    plan = HarmonyPP(
        model, topology, BatchConfig(microbatch_size, num_microbatches)
    ).plan()
    result = Executor(topology, plan).run()
    rows = []
    for i, device in enumerate(sorted(result.devices)):
        report = result.devices[device]
        rows.append(
            StageRow(
                gpu_index=i + 1,
                device=device,
                demand_bytes=report.peak_demand,
                capacity_bytes=report.capacity,
                swap_bytes=report.swap_in_bytes + report.swap_out_bytes,
                pressure=report.swap_pressure,
            )
        )
    return rows


def imbalance_ratio(rows: list[StageRow]) -> float:
    """Max/min per-GPU footprint — 1.0 is perfectly balanced."""
    demands = [r.demand_bytes for r in rows]
    return max(demands) / min(demands)


def table(rows: list[StageRow] | None = None) -> Table:
    rows = rows if rows is not None else run()
    out = Table(
        ["GPU index", "mem usage (GB)", "capacity (GB)", "swap traffic (GB)",
         "pressure"],
        title="Fig. 2(c): PP + per-GPU swapping, BERT, 1F1B stages",
    )
    for row in rows:
        out.add_row(
            [
                row.gpu_index,
                f"{row.demand_bytes / GB:.1f}",
                f"{row.capacity_bytes / GB:.1f}",
                f"{row.swap_bytes / GB:.1f}",
                row.pressure,
            ]
        )
    return out
