"""Fig. 1: DNN model size growth, LeNet (1998) through GPT-3 (2020).

The paper plots published parameter counts on a log scale.  We
reconstruct each model from its architecture and report both the
published figure and our reconstruction, so the reproduction checks
the data rather than copying it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models import zoo
from repro.units import fmt_count
from repro.util.tables import Table


@dataclass(frozen=True)
class GrowthRow:
    name: str
    year: int
    task: str
    published_params: float
    built_params: float

    @property
    def relative_error(self) -> float:
        return (self.built_params - self.published_params) / self.published_params


def run() -> list[GrowthRow]:
    rows = []
    for entry in zoo.growth_series():
        model = entry.builder()
        rows.append(
            GrowthRow(
                name=entry.name,
                year=entry.year,
                task=entry.task,
                published_params=entry.published_params,
                built_params=model.param_count,
            )
        )
    return rows


def table(rows: list[GrowthRow] | None = None) -> Table:
    rows = rows if rows is not None else run()
    out = Table(
        ["model", "year", "task", "published", "reconstructed", "error"],
        title="Fig. 1: model size growth (parameters, log scale in the paper)",
    )
    for row in rows:
        out.add_row(
            [
                row.name,
                row.year,
                row.task,
                fmt_count(row.published_params),
                fmt_count(row.built_params),
                f"{100 * row.relative_error:+.1f}%",
            ]
        )
    return out
