"""Command-line interface: ``python -m repro <command>``.

Commands
--------
figures
    Regenerate every paper figure/table as text (Fig. 1-5, §4).
zoo
    List the model zoo with published vs reconstructed parameter counts.
compare MODEL
    Run all training schemes for MODEL on the 4x 1080Ti server and
    print the comparison table.
tune MODEL
    Run the performance tuner for MODEL (harmony-pp granularity search).
timeline MODEL SCHEME
    Print the ASCII schedule timeline for one scheme.
audit MODEL
    Audit every scheme's run against the physical-consistency
    invariants and cross-check the schedulers differentially
    (``repro.validate``).  ``compare``/``timeline`` also accept
    ``--audit`` to self-check as they run.
faults
    MTTF sweep under seeded fault injection (``repro.faults``):
    harmony-dp/harmony-pp vs their rigid baselines at increasing
    device-loss rates, each faulty run audited.  Exits nonzero when any
    run fails to recover or fails its audit.  ``--trace-out`` dumps the
    deterministic merged trace of one seeded faulty run (running twice
    with the same seed must produce byte-identical files).
bench
    Tracked benchmark harness (``repro.perf``): single-run wall time
    and events/sec on the Fig. 4 workload, cache hit latency, and
    parallel-sweep scaling.  ``--out BENCH_sim.json`` records the
    numbers; ``--check BENCH_sim.json`` is the CI regression gate.
resume
    Re-run the command recorded in a ``--journal`` file, replaying
    every spec the interrupted run completed and executing only the
    remainder.  Output (minus ``supervisor:`` status lines) is
    byte-identical to an uninterrupted run.
serve
    Long-running multi-tenant job server (``repro.serve``): tenants
    POST simulate/sweep/tune/faults jobs as JSON, jobs run under
    per-job supervisors sharing one run cache, and admission is
    bounded by per-tenant quotas (429) and a global queue limit
    (503 + Retry-After).  SIGTERM drains gracefully; restarting with
    the same ``--state-dir`` recovers acknowledged jobs from the
    fsync'd ledger and replays journal-settled specs byte-identically.

Sweep-shaped commands (``figures``, ``compare``, ``tune``, ``faults``,
``bench``) accept ``--jobs N`` to fan independent simulations out over
a process pool; output is byte-identical to ``--jobs 1`` because
results always come back in submission order.  ``compare``/``tune``/
``bench`` also accept ``--cache-dir``/``--no-cache`` to control the
content-addressed run cache (see ``docs/INTERNALS.md``, Performance).

The same commands accept ``--steady-state {auto,off,force}``: ``auto``
(the default) detects when an iteration replays its predecessor
bit-for-bit and fast-forwards the remaining iterations analytically
(``repro.steady``), ``off`` simulates every iteration in full
fidelity, and ``force`` errors unless the fast path engaged.  Results
are identical either way; only wall-clock changes.  ``compare`` also
accepts ``--iterations N`` to size multi-iteration runs.

The same sweep-shaped commands accept ``--journal PATH`` to run under
the crash-safe supervisor (``repro.supervisor``): every spec outcome
is journaled to an fsync'd JSONL write-ahead log, crashed workers are
respawned, hung specs are killed after ``--spec-timeout`` seconds, and
flaky specs retry with backoff until ``--max-attempts`` before being
quarantined.  The supervisor prints a ``supervisor:`` report after the
sweep; all of its status lines carry that prefix so determinism checks
can filter them out.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from concurrent.futures import ProcessPoolExecutor

from repro import BatchConfig, HarmonyConfig, HarmonySession, compare_runs
from repro.core.report import audit_summary
from repro.errors import (
    AuditError,
    ConfigError,
    DrainedError,
    PoisonedSpecError,
    ReproError,
)
from repro.hardware import presets
from repro.models import zoo
from repro.perf import RunCache, RunSpec, SweepRunner
from repro.schedulers import scheme_names
from repro.tuner.search import tune
from repro.units import GB
from repro.validate import differential_check

#: Every registered scheme, in registry order — the single list the
#: compare/timeline/audit/faults commands enumerate or offer as
#: ``--scheme`` choices.  Grows automatically with the registry.
SCHEMES = list(scheme_names())


def _jobs(args: argparse.Namespace, fallback: int = 1) -> int:
    """Resolve ``--jobs``: the flag when given, else the command's
    natural default."""
    jobs = getattr(args, "jobs", None)
    return jobs if jobs is not None else fallback


def _default_cache_dir() -> str:
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def _make_cache(args: argparse.Namespace) -> RunCache | None:
    """The run cache a command should use: disabled by ``--no-cache``,
    on-disk under ``--cache-dir`` (bare flag means ``~/.cache/repro``),
    otherwise in-memory for the life of the process."""
    if getattr(args, "no_cache", False):
        return None
    return RunCache(cache_dir=getattr(args, "cache_dir", None))


def _make_supervisor(
    args: argparse.Namespace,
    cache: RunCache | None = None,
    jobs: int | None = None,
):
    """The durable-execution layer behind ``--journal``/``--spec-timeout``;
    ``None`` when neither was given (commands keep their plain pool
    paths, whose behavior predates the supervisor)."""
    journal = getattr(args, "journal", None)
    timeout = getattr(args, "spec_timeout", None)
    if journal is None and timeout is None:
        return None
    from repro.supervisor import RetryPolicy, Supervisor

    return Supervisor(
        jobs=jobs if jobs is not None else _jobs(args),
        cache=cache,
        policy=RetryPolicy(
            max_attempts=getattr(args, "max_attempts", 3), timeout=timeout
        ),
        journal=journal,
        command=getattr(args, "_argv", None),
    )


def _drain_scope(sup):
    """Signal scope for supervised runs: the first SIGTERM/SIGINT
    requests a graceful drain (in-flight specs settle and are
    journaled, unstarted ones are left for a resume) instead of
    killing the sweep mid-write.  A second signal interrupts as
    usual.  No-op without a supervisor."""
    if sup is None:
        return contextlib.nullcontext()
    from repro.supervisor import drain_on_signals

    return drain_on_signals(sup)


# Figure sections as top-level functions so ``figures --jobs N`` can
# ship them to pool workers (closures don't pickle).
def _render_fig1() -> str:
    from repro.experiments import fig1_growth
    return fig1_growth.table().render()


def _render_fig2a() -> str:
    from repro.experiments import fig2a_dp_swap
    return fig2a_dp_swap.table().render()


def _render_fig2b() -> str:
    from repro.experiments import fig2b_interconnect
    return fig2b_interconnect.table().render()


def _render_fig2c() -> str:
    from repro.experiments import fig2c_pp_imbalance
    return fig2c_pp_imbalance.table().render()


def _render_fig4() -> str:
    from repro.experiments import fig4_schedule
    return fig4_schedule.describe()


def _render_fig5() -> str:
    from repro.experiments import fig5_swap_volumes
    return fig5_swap_volumes.table().render()


def _render_sec4() -> str:
    from repro.experiments import sec4_feasibility
    return sec4_feasibility.run().table.render()


_FIGURE_SECTIONS = [
    ("Fig. 1", _render_fig1),
    ("Fig. 2(a)", _render_fig2a),
    ("Fig. 2(b)", _render_fig2b),
    ("Fig. 2(c)", _render_fig2c),
    ("Fig. 4", _render_fig4),
    ("Fig. 5", _render_fig5),
    ("Section 4", _render_sec4),
]


def _render_section(index: int) -> str:
    """Pool worker: render one figure section to a string."""
    return _FIGURE_SECTIONS[index][1]()


def cmd_figures(args: argparse.Namespace) -> int:
    jobs = _jobs(args)
    indices = range(len(_FIGURE_SECTIONS))
    sup = _make_supervisor(args)
    if sup is not None:
        from repro.supervisor import Task

        tasks = [
            Task(
                key=f"figure:{title}", fn=_render_section, payload=i,
                label=title,
            )
            for i, (title, _) in enumerate(_FIGURE_SECTIONS)
        ]
        with _drain_scope(sup):
            rendered = sup.run_tasks(tasks, return_exceptions=True)
        drained = [
            title
            for (title, _), text in zip(_FIGURE_SECTIONS, rendered)
            if isinstance(text, DrainedError)
        ]
        if drained:
            print(
                f"supervisor: drained before rendering {', '.join(drained)}; "
                "resume with the same journal to finish"
            )
            print(sup.report.render())
            return 1
        for text in rendered:
            if isinstance(text, ReproError):
                raise text
    elif jobs > 1:
        workers = min(jobs, len(_FIGURE_SECTIONS))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map preserves section order: output is byte-identical
            # to the serial run no matter which section finishes first.
            rendered = list(pool.map(_render_section, indices))
    else:
        rendered = [_render_section(i) for i in indices]
    for (title, _), text in zip(_FIGURE_SECTIONS, rendered):
        print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
        print(text)
    if sup is not None:
        print(sup.report.render())
    return 0


def cmd_zoo(_: argparse.Namespace) -> int:
    from repro.experiments import fig1_growth

    print(fig1_growth.table().render())
    return 0


def _build(args: argparse.Namespace):
    model = zoo.build(args.model)
    server = presets.gtx1080ti_server(num_gpus=args.gpus)
    batch = BatchConfig(args.microbatch_size, args.microbatches)
    return model, server, batch


def cmd_compare(args: argparse.Namespace) -> int:
    model, server, batch = _build(args)
    if args.schedule_zoo:
        from repro.experiments import schedule_zoo

        cache = _make_cache(args)
        sup = _make_supervisor(args, cache=cache)
        rows = schedule_zoo.run(
            model, server, batch, jobs=_jobs(args), cache=cache,
            supervisor=sup,
        )
        print(schedule_zoo.table(rows).render())
        print()
        print(schedule_zoo.stage_memory_figure(rows))
        if sup is not None:
            print(sup.report.render())
        return 0
    print(model.describe())
    state = model.param_bytes + model.grad_bytes + model.optimizer_bytes
    print(f"training state: {state / GB:.1f} GB; {args.gpus} GPUs x 11 GB\n")
    specs = [
        RunSpec(
            model, server,
            HarmonyConfig(
                scheme, batch=batch, audit=args.audit,
                iterations=args.iterations,
                steady_state=args.steady_state,
            ),
            label=scheme,
        )
        for scheme in SCHEMES
    ]
    cache = _make_cache(args)
    sup = _make_supervisor(args, cache=cache)
    if sup is not None:
        with _drain_scope(sup):
            outcomes = sup.run_specs(specs, return_exceptions=True)
    else:
        outcomes = SweepRunner(jobs=_jobs(args), cache=cache).run_all(
            specs, return_exceptions=True
        )
    results = []
    for scheme, outcome in zip(SCHEMES, outcomes):
        if isinstance(outcome, AuditError):
            print(f"{scheme}: FAILED AUDIT ({outcome})")
            return 1
        if isinstance(outcome, PoisonedSpecError):
            print(f"{scheme}: QUARANTINED ({outcome})")
        elif isinstance(outcome, DrainedError):
            print(f"{scheme}: DRAINED (not started; resume with the same journal)")
        elif isinstance(outcome, ReproError):
            print(f"{scheme}: infeasible ({outcome})")
        else:
            results.append(outcome)
    print(compare_runs(results).render())
    if args.audit:
        print()
        print(audit_summary([r.audit for r in results if r.audit]).render())
    if cache is not None and args.cache_dir:
        print(f"\n{cache.describe()}")
    if sup is not None:
        print(sup.report.render())
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    model, server, batch = _build(args)
    cache = _make_cache(args)
    # The profiler does its own cache accounting, so the supervisor
    # runs cache-blind: a replay comes from the journal, not the cache.
    sup = _make_supervisor(args, cache=None)
    checkpoints = None
    if args.profile_iterations > 1 or args.checkpoint_dir:
        from repro.perf.incremental import CheckpointStore

        checkpoints = CheckpointStore(args.checkpoint_dir)
    with _drain_scope(sup):
        outcome = tune(
            model, server, batch.per_replica_batch, cache=cache,
            jobs=_jobs(args), supervisor=sup,
            profile_iterations=args.profile_iterations,
            steady_state=args.steady_state,
            checkpoints=checkpoints,
        )
    print(outcome.table().render())
    print(f"\nbest: {outcome.best.label} at {outcome.best.throughput:.3f} samples/s")
    if cache is not None:
        print(
            f"cache: {outcome.cache_hits} hits / "
            f"{outcome.cache_misses} misses "
            f"(hill-climb hit rate {100 * outcome.hill_climb_hit_rate:.0f}%)"
        )
    if checkpoints is not None:
        print(checkpoints.describe())
        if outcome.prefix_hits or outcome.prefix_misses:
            print(
                f"prefix reuse: {outcome.prefix_hits} restores / "
                f"{outcome.prefix_misses} cold probes "
                f"({100 * outcome.prefix_hit_rate:.0f}% hit rate), "
                f"{outcome.saved_iterations} iteration(s) skipped"
            )
    if sup is not None:
        print(sup.report.render())
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    model, server, batch = _build(args)
    session = HarmonySession(
        model, server, HarmonyConfig(args.scheme, batch=batch, audit=args.audit)
    )
    print(session.summary())
    print()
    print(session.timeline(width=110))
    if args.audit:
        print()
        print(session.audit_report().render())
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    model, server, batch = _build(args)
    schemes = [args.scheme] if args.scheme else SCHEMES
    reports = []
    failed = False
    for scheme in schemes:
        session = HarmonySession(model, server, HarmonyConfig(scheme, batch=batch))
        try:
            report = session.audit_report()
        except ReproError as exc:
            print(f"{scheme}: infeasible ({exc})")
            continue
        reports.append(report)
        failed = failed or not report.passed
    print(audit_summary(reports).render())
    for report in reports:
        if not report.passed:
            print()
            print(report.table().render())
    if args.differential and not args.scheme:
        # The cross-scheduler check needs a global batch divisible by
        # the GPU count; scale the per-replica figure up.
        print()
        diff = differential_check(
            model, server, args.microbatches * args.gpus,
            microbatch_size=args.microbatch_size,
        )
        print(diff.render())
        failed = failed or not diff.passed
    return 1 if failed else 0


def _dump_resilient_trace(result, path: str) -> None:
    """Serialize a resilient run deterministically (``repr`` floats keep
    full precision): the CI determinism job runs the same seeded sweep
    twice and byte-diffs these files."""
    fr = result.faults
    lines = [f"label={result.label}"]
    for seg in fr.segments:
        lines.append(
            f"segment {seg.index} iteration={seg.iteration} "
            f"start={seg.started_at!r} duration={seg.duration!r} "
            f"aborted={seg.aborted} lost={seg.lost_device}"
        )
        for ev in seg.result.trace.events:
            lines.append(
                f"  {ev.device} {ev.category} {ev.label} "
                f"{ev.start!r} {ev.end!r} {ev.nbytes!r}"
            )
    for inc in fr.incidents:
        lines.append(
            f"incident {inc.device} {inc.kind} occurred={inc.occurred_at!r} "
            f"suspected={inc.suspected_at!r} confirmed={inc.confirmed_at!r} "
            f"exonerated={inc.exonerated_at!r} recovered={inc.recovered_at!r} "
            f"action={inc.action} false_positive={inc.false_positive} "
            f"detector={inc.detector}"
        )
    lines.append(
        f"makespan={fr.total_makespan!r} samples={fr.samples} "
        f"retried_bytes={fr.retried_bytes!r} retry_events={fr.retry_events} "
        f"losses={fr.device_losses!r} replans={fr.replans} "
        f"rejoins={fr.rejoins} spares={fr.spares_used} "
        f"stall={fr.stall_seconds!r} heartbeats={fr.heartbeats_observed} "
        f"recovered={fr.recovered}"
    )
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def _validate_faults_args(args: argparse.Namespace) -> None:
    """Structured validation for ``repro faults`` — every rejection
    names the offending value and the valid range."""
    if args.iterations < 1:
        raise ConfigError(
            f"--iterations must be >= 1, got {args.iterations}"
        )
    if args.gpus < 1:
        raise ConfigError(f"--gpus must be >= 1, got {args.gpus}")
    for mttf in args.mttf or ():
        if not mttf > 0:
            raise ConfigError(
                f"--mttf values must be > 0 iteration times, got {mttf:g} "
                f"(use 'inf' for a healthy column)"
            )
    if not 0.0 <= args.transient_probability < 1.0:
        raise ConfigError(
            f"--transient-probability must be in [0, 1), got "
            f"{args.transient_probability:g}"
        )
    if args.grace < 0:
        raise ConfigError(
            f"--grace must be >= 0 seconds (the wait-rejoin hold), got "
            f"{args.grace:g}"
        )
    if args.spares < 0:
        raise ConfigError(
            f"--spares must be >= 0 standby devices, got {args.spares}"
        )
    if args.straggler != 0 and args.straggler < 1:
        raise ConfigError(
            f"--straggler must be 0 (off) or a slowdown >= 1, got "
            f"{args.straggler:g}"
        )


def cmd_faults(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from repro.experiments import faults_degradation
    from repro.faults import (
        ComputeStraggler,
        DetectorConfig,
        ResiliencePolicy,
        SpareDevice,
        mttf_loss_plan,
        run_resilient,
    )
    from repro.validate import audit_resilient

    _validate_faults_args(args)
    model = (
        zoo.build(args.model)
        if args.model
        else zoo.synthetic_uniform(num_layers=8)
    )
    mttfs = tuple(args.mttf) if args.mttf else (float("inf"), 8.0, 4.0, 2.5)

    failed: list = []
    if args.recovery:
        # MTTR x policy x scheme sweep on a fixed fault scenario.
        rows = faults_degradation.run_recovery(
            model=model,
            num_gpus=args.gpus,
            iterations=args.iterations,
            seed=args.seed,
            jobs=_jobs(args),
        )
        print(faults_degradation.recovery_table(rows).render())
        failed = [r for r in rows if not r.recovered]
        for row in failed:
            print(f"RECOVERY FAILED: {row.scheme} under {row.policy}")
    else:
        sup = _make_supervisor(args)
        with _drain_scope(sup):
            rows = faults_degradation.run(
                model=model,
                num_gpus=args.gpus,
                iterations=args.iterations,
                mttf_iters=mttfs,
                transient_probability=args.transient_probability,
                seed=args.seed,
                jobs=_jobs(args),
                supervisor=sup,
            )
        print(faults_degradation.table(rows).render())
        if sup is not None:
            print(sup.report.render())

        comparisons = faults_degradation.gracefulness(rows)
        if comparisons:
            print()
            for harmony, baseline, mttf, h_ratio, b_ratio in comparisons:
                verdict = "more graceful" if h_ratio > b_ratio else "NOT more graceful"
                print(
                    f"mttf={mttf:g}: {harmony} retains {h_ratio:.3f} vs "
                    f"{baseline} {b_ratio:.3f} -> {verdict}"
                )

        failed = [r for r in rows if not r.recovered]
        for row in failed:
            print(f"RECOVERY FAILED: {row.scheme} at mttf={row.mttf_iters:g}")

    if args.trace_out:
        # One seeded faulty run, dumped deterministically for the CI
        # determinism diff.  --recovery-policy/--detector/--straggler/
        # --spares/--grace shape this run only, so CI can byte-diff a
        # false-positive suspicion case too.
        server = presets.gtx1080ti_server(num_gpus=args.gpus)
        finite = [m for m in mttfs if m != float("inf")]
        mttf = min(finite) if finite else 2.5
        config = HarmonyConfig(args.scheme)
        extra: list = [SpareDevice(f"spare{i}") for i in range(args.spares)]
        if args.straggler:
            # Throttle the last GPU from the start.  With the heartbeat
            # interval pinned to mttf/8 below, its first stretched gap
            # (slowdown x mttf/8) both trips the adaptive detector and
            # completes before the earliest loss (at mttf) — one
            # deterministic false positive, exonerated on resumption.
            extra.append(ComputeStraggler(
                server.gpus()[-1].name, slowdown=args.straggler,
                start=0.0, end=0.5 * mttf,
            ))
        plan = mttf_loss_plan(
            [g.name for g in server.gpus()],
            mttf=mttf,  # absolute seconds here; fine for a replay check
            horizon=mttf * args.iterations,
            seed=args.seed,
            extra=tuple(extra),
        )
        policy = dc_replace(
            ResiliencePolicy.for_scheme(args.scheme),
            recovery=args.recovery_policy,
            grace_window=args.grace,
            detection=(
                # Interval pinned to the fault horizon, not the (model-
                # dependent) iteration time, so the false-positive
                # window is stable across workloads.
                DetectorConfig(kind=args.detector, interval=mttf / 8.0)
                if args.detector != "none" else None
            ),
        )
        result = run_resilient(
            model, server, config, plan,
            policy=policy, iterations=args.iterations,
        )
        audit = audit_resilient(result.faults)
        if not audit.passed:
            print(audit.table().render())
            return 1
        _dump_resilient_trace(result, args.trace_out)
        print(f"\nwrote deterministic trace to {args.trace_out}")

    return 1 if failed else 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import bench

    # Sections run one at a time under the supervisor (jobs=1) so the
    # wall-clock measurements aren't perturbed by sibling sections.
    sup = _make_supervisor(args, jobs=1)
    report = bench.run_bench(
        quick=args.quick,
        jobs=_jobs(args, fallback=4),
        supervisor=sup,
        profile=args.profile,
    )
    print(bench.render(report))
    if sup is not None:
        print(sup.report.render())
    if args.out:
        bench.write_json(report, args.out)
        print(f"\nwrote {args.out}")
    if args.check:
        print()
        return bench.check_regression(report, args.check)
    return 0


def _rewrite_journal_path(argv: list[str], path: str) -> list[str]:
    """Point the recorded command's ``--journal`` at the file we are
    resuming from — the journal may have been renamed or moved since
    the interrupted run wrote its header."""
    out = list(argv)
    for i, token in enumerate(out):
        if token == "--journal" and i + 1 < len(out):
            out[i + 1] = path
            return out
        if token.startswith("--journal="):
            out[i] = f"--journal={path}"
            return out
    return out + ["--journal", path]


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve import JobServer, ServeConfig
    from repro.serve.tenants import TenantPolicy, parse_tenant_policies

    tenants = {}
    if args.tenant_config:
        with open(args.tenant_config) as fh:
            tenants = parse_tenant_policies(json.load(fh))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        workers=args.workers,
        sup_jobs=_jobs(args),
        isolation=args.isolation,
        max_queue=args.max_queue,
        default_tenant=TenantPolicy(max_jobs=args.tenant_max_jobs),
        tenants=tenants,
        max_attempts=args.max_attempts,
        spec_timeout=args.spec_timeout,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        drain_grace=args.drain_grace,
    )
    return JobServer(config).run()


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.supervisor import load_journal

    state = load_journal(args.journal)
    if not state.command:
        print(
            f"error: {args.journal} records no command to resume "
            "(missing or torn journal header)",
            file=sys.stderr,
        )
        return 1
    if state.command[0] == "resume":
        print(
            f"error: {args.journal} was written by a resume command; "
            "refusing to recurse",
            file=sys.stderr,
        )
        return 1
    argv = _rewrite_journal_path(list(state.command), args.journal)
    print(f"supervisor: resuming `repro {' '.join(argv)}` ({state.describe()})")
    return main(argv)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Harmony (HotOS '21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan independent simulations out over N worker processes "
             "(results stay in deterministic order; default 1)",
    )

    cache_parent = argparse.ArgumentParser(add_help=False)
    cache_parent.add_argument(
        "--cache-dir", nargs="?", const=_default_cache_dir(), default=None,
        metavar="DIR",
        help="persist the run cache on disk (bare flag: ~/.cache/repro)",
    )
    cache_parent.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed run cache entirely",
    )

    steady_parent = argparse.ArgumentParser(add_help=False)
    steady_parent.add_argument(
        "--steady-state", choices=["auto", "off", "force"], default=None,
        dest="steady_state", metavar="MODE",
        help="periodicity fast-forward (repro.steady): auto detects "
             "steady state and skips proven-identical iterations "
             "analytically (default), off simulates every iteration, "
             "force errors unless the fast path engaged",
    )

    journal_parent = argparse.ArgumentParser(add_help=False)
    journal_parent.add_argument(
        "--journal", default=None, metavar="PATH",
        help="run under the crash-safe supervisor, journaling every spec "
             "outcome to PATH (fsync'd JSONL); re-running with the same "
             "journal — or `repro resume --journal PATH` — replays "
             "completed specs and executes only the remainder",
    )
    journal_parent.add_argument(
        "--spec-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog: kill the worker pool and retry any spec that runs "
             "longer than this (implies the supervisor; default: no limit)",
    )
    journal_parent.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="quarantine a spec after N failed attempts (crash, hang, or "
             "retryable error; default 3)",
    )

    sub.add_parser(
        "figures", parents=[jobs_parent, journal_parent, steady_parent],
        help="regenerate every paper figure",
    )
    sub.add_parser("zoo", help="list the model zoo (Fig. 1 data)")

    def add_workload(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", choices=zoo.names(), help="model zoo entry")
        p.add_argument("--gpus", type=int, default=4)
        p.add_argument("--microbatch-size", type=int, default=1)
        p.add_argument("--microbatches", type=int, default=4)

    compare_p = sub.add_parser(
        "compare",
        parents=[jobs_parent, cache_parent, journal_parent, steady_parent],
        help="run all schemes head-to-head",
    )
    add_workload(compare_p)
    compare_p.add_argument(
        "--audit", action="store_true",
        help="audit every run's physical consistency as it executes",
    )
    compare_p.add_argument(
        "--iterations", type=int, default=1, metavar="N",
        help="training iterations per scheme (multi-iteration runs are "
             "eligible for --steady-state fast-forward; default 1)",
    )
    compare_p.add_argument(
        "--schedule-zoo", action="store_true", dest="schedule_zoo",
        help="print the schedule-zoo figure instead of the comparison "
             "table: per-stage peak activation memory vs throughput "
             "across every registered scheduler",
    )

    tune_p = sub.add_parser(
        "tune",
        parents=[jobs_parent, cache_parent, journal_parent, steady_parent],
        help="search task granularity",
    )
    add_workload(tune_p)
    tune_p.add_argument(
        "--profile-iterations", type=int, default=1, metavar="N",
        help="simulated iterations per probe (settled throughput rather "
             "than a first-iteration estimate; default 1)",
    )
    tune_p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="prefix-checkpoint store for multi-iteration probes: "
             "re-probes restore the deepest shared iteration boundary "
             "instead of cold-starting (byte-identical); persists "
             "across runs when DIR is given",
    )

    timeline_p = sub.add_parser("timeline", help="print a schedule timeline")
    add_workload(timeline_p)
    timeline_p.add_argument("--scheme", choices=SCHEMES, default="harmony-pp")
    timeline_p.add_argument(
        "--audit", action="store_true",
        help="audit the run's physical consistency",
    )

    audit_p = sub.add_parser(
        "audit", help="audit runs against the physical-consistency invariants"
    )
    add_workload(audit_p)
    audit_p.add_argument(
        "--scheme", choices=SCHEMES, default=None,
        help="audit one scheme only (default: all)",
    )
    audit_p.add_argument(
        "--no-differential", dest="differential", action="store_false",
        help="skip the cross-scheduler differential check",
    )

    faults_p = sub.add_parser(
        "faults", parents=[jobs_parent, journal_parent, steady_parent],
        help="MTTF sweep: goodput degradation under fault injection",
    )
    faults_p.add_argument(
        "--model", choices=zoo.names(), default=None,
        help="model zoo entry (default: a fast synthetic model)",
    )
    faults_p.add_argument("--gpus", type=int, default=4)
    faults_p.add_argument("--iterations", type=int, default=6)
    faults_p.add_argument(
        "--mttf", type=float, nargs="*", default=None,
        help="MTTF values in fault-free iteration times "
             "(default: inf 8 4 2.5; 'inf' allowed)",
    )
    faults_p.add_argument("--seed", type=int, default=1)
    faults_p.add_argument(
        "--transient-probability", type=float, default=0.02,
        help="per-transfer transient failure probability",
    )
    faults_p.add_argument(
        "--scheme", choices=SCHEMES, default="harmony-dp",
        help="scheme for the --trace-out determinism run",
    )
    faults_p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="dump the deterministic trace of one seeded faulty run",
    )
    faults_p.add_argument(
        "--recovery", action="store_true",
        help="sweep the recovery-policy zoo instead: MTTR and goodput "
             "per (scheme, policy) on a fixed fault scenario",
    )
    from repro.faults.detection import detector_names
    from repro.faults.recovery import recovery_names

    faults_p.add_argument(
        "--recovery-policy", choices=recovery_names(),
        default="restart-replan",
        help="recovery policy for the --trace-out determinism run",
    )
    faults_p.add_argument(
        "--detector", choices=("none",) + detector_names(), default="none",
        help="failure detector for the --trace-out run (none = instant "
             "detection, no heartbeats)",
    )
    faults_p.add_argument(
        "--grace", type=float, default=0.0,
        help="wait-rejoin grace window in simulated seconds (>= 0)",
    )
    faults_p.add_argument(
        "--spares", type=int, default=0,
        help="cold standby devices added to the --trace-out plan (>= 0)",
    )
    faults_p.add_argument(
        "--straggler", type=float, default=0.0,
        help="throttle one device by this slowdown (0 = off, else >= 1) "
             "to reproduce a detector false positive",
    )

    bench_p = sub.add_parser(
        "bench",
        parents=[jobs_parent, cache_parent, journal_parent, steady_parent],
        help="benchmark the simulator (events/sec, cache, sweep scaling)",
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="fewer repeats and a smaller sweep grid (CI smoke mode)",
    )
    bench_p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report (the tracked file is BENCH_sim.json)",
    )
    bench_p.add_argument(
        "--check", default=None, metavar="PATH",
        help="regression gate: exit nonzero if measured events/sec falls "
             ">30%% below the committed baseline in PATH",
    )
    bench_p.add_argument(
        "--profile", action="store_true",
        help="run one large-fleet simulation under cProfile and append "
             "the top functions by cumulative time to the report "
             "(deterministic call counts; ignored by --check)",
    )

    serve_p = sub.add_parser(
        "serve", parents=[jobs_parent, cache_parent],
        help="run the multi-tenant simulation job server (repro.serve)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks a free port; default 8080)",
    )
    serve_p.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durability root: jobs ledger, per-job journals, endpoint "
             "file; restarting with the same DIR recovers acknowledged "
             "jobs (default: ephemeral, no crash recovery)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent jobs (--jobs sets worker processes per job; "
             "default 2)",
    )
    serve_p.add_argument(
        "--isolation", choices=["process", "inline"], default="process",
        help="run each spec in a supervised worker process (crash "
             "isolation + watchdog) or inline in the job thread "
             "(lower overhead; default process)",
    )
    serve_p.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="global admission bound: queued jobs beyond N are refused "
             "with 503 + Retry-After (default 64)",
    )
    serve_p.add_argument(
        "--tenant-max-jobs", type=int, default=8, metavar="N",
        help="default per-tenant quota: jobs queued+running at once "
             "before 429 (default 8)",
    )
    serve_p.add_argument(
        "--tenant-config", default=None, metavar="PATH",
        help='JSON file of per-tenant policies: '
             '{"alice": {"weight": 2.0, "max_jobs": 16}}',
    )
    serve_p.add_argument(
        "--spec-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog ceiling per spec attempt (also clamps per-job "
             "timeout_sec requests; process isolation only)",
    )
    serve_p.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="quarantine a spec after N failed attempts (default 3)",
    )
    serve_p.add_argument(
        "--drain-grace", type=float, default=None, metavar="SECONDS",
        help="on SIGTERM, wait this long for running jobs before "
             "draining their supervisors (default: wait indefinitely)",
    )

    resume_p = sub.add_parser(
        "resume",
        help="re-run the command recorded in a journal, replaying every "
             "spec it completed before being interrupted",
    )
    resume_p.add_argument(
        "--journal", required=True, metavar="PATH",
        help="journal written by an interrupted --journal run",
    )

    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = parser.parse_args(raw_argv)
    # The exact argv, recorded in the journal header so `repro resume`
    # can re-invoke the interrupted command.
    args._argv = raw_argv
    if hasattr(args, "steady_state"):
        # Process-wide default so experiment code that builds configs
        # internally (figures, faults sweeps) honors the flag; configs
        # that set steady_state explicitly (compare) still win.
        from repro.steady import set_default_mode

        set_default_mode(args.steady_state or "auto")
    handlers = {
        "figures": cmd_figures,
        "zoo": cmd_zoo,
        "compare": cmd_compare,
        "tune": cmd_tune,
        "timeline": cmd_timeline,
        "audit": cmd_audit,
        "faults": cmd_faults,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "resume": cmd_resume,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
