"""Command-line interface: ``python -m repro <command>``.

Commands
--------
figures
    Regenerate every paper figure/table as text (Fig. 1-5, §4).
zoo
    List the model zoo with published vs reconstructed parameter counts.
compare MODEL
    Run all training schemes for MODEL on the 4x 1080Ti server and
    print the comparison table.
tune MODEL
    Run the performance tuner for MODEL (harmony-pp granularity search).
timeline MODEL SCHEME
    Print the ASCII schedule timeline for one scheme.
audit MODEL
    Audit every scheme's run against the physical-consistency
    invariants and cross-check the schedulers differentially
    (``repro.validate``).  ``compare``/``timeline`` also accept
    ``--audit`` to self-check as they run.
faults
    MTTF sweep under seeded fault injection (``repro.faults``):
    harmony-dp/harmony-pp vs their rigid baselines at increasing
    device-loss rates, each faulty run audited.  Exits nonzero when any
    run fails to recover or fails its audit.  ``--trace-out`` dumps the
    deterministic merged trace of one seeded faulty run (running twice
    with the same seed must produce byte-identical files).
"""

from __future__ import annotations

import argparse
import sys

from repro import BatchConfig, HarmonyConfig, HarmonySession, compare_runs
from repro.core.report import audit_summary
from repro.errors import AuditError, ReproError
from repro.hardware import presets
from repro.models import zoo
from repro.tuner.search import tune
from repro.units import GB
from repro.validate import differential_check

SCHEMES = [
    "single", "dp-baseline", "harmony-dp", "pp-baseline", "harmony-pp",
    "harmony-tp",
]


def cmd_figures(_: argparse.Namespace) -> int:
    from repro.experiments import (
        fig1_growth,
        fig2a_dp_swap,
        fig2b_interconnect,
        fig2c_pp_imbalance,
        fig4_schedule,
        fig5_swap_volumes,
        sec4_feasibility,
    )

    sections = [
        ("Fig. 1", lambda: fig1_growth.table().render()),
        ("Fig. 2(a)", lambda: fig2a_dp_swap.table().render()),
        ("Fig. 2(b)", lambda: fig2b_interconnect.table().render()),
        ("Fig. 2(c)", lambda: fig2c_pp_imbalance.table().render()),
        ("Fig. 4", fig4_schedule.describe),
        ("Fig. 5", lambda: fig5_swap_volumes.table().render()),
        ("Section 4", lambda: sec4_feasibility.run().table.render()),
    ]
    for title, render in sections:
        print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
        print(render())
    return 0


def cmd_zoo(_: argparse.Namespace) -> int:
    from repro.experiments import fig1_growth

    print(fig1_growth.table().render())
    return 0


def _build(args: argparse.Namespace):
    model = zoo.build(args.model)
    server = presets.gtx1080ti_server(num_gpus=args.gpus)
    batch = BatchConfig(args.microbatch_size, args.microbatches)
    return model, server, batch


def cmd_compare(args: argparse.Namespace) -> int:
    model, server, batch = _build(args)
    print(model.describe())
    state = model.param_bytes + model.grad_bytes + model.optimizer_bytes
    print(f"training state: {state / GB:.1f} GB; {args.gpus} GPUs x 11 GB\n")
    results = []
    for scheme in SCHEMES:
        session = HarmonySession(
            model, server, HarmonyConfig(scheme, batch=batch, audit=args.audit)
        )
        try:
            results.append(session.run())
        except AuditError as exc:
            print(f"{scheme}: FAILED AUDIT ({exc})")
            return 1
        except ReproError as exc:
            print(f"{scheme}: infeasible ({exc})")
    print(compare_runs(results).render())
    if args.audit:
        print()
        print(audit_summary([r.audit for r in results if r.audit]).render())
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    model, server, batch = _build(args)
    outcome = tune(model, server, batch.per_replica_batch)
    print(outcome.table().render())
    print(f"\nbest: {outcome.best.label} at {outcome.best.throughput:.3f} samples/s")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    model, server, batch = _build(args)
    session = HarmonySession(
        model, server, HarmonyConfig(args.scheme, batch=batch, audit=args.audit)
    )
    print(session.summary())
    print()
    print(session.timeline(width=110))
    if args.audit:
        print()
        print(session.audit_report().render())
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    model, server, batch = _build(args)
    schemes = [args.scheme] if args.scheme else SCHEMES
    reports = []
    failed = False
    for scheme in schemes:
        session = HarmonySession(model, server, HarmonyConfig(scheme, batch=batch))
        try:
            report = session.audit_report()
        except ReproError as exc:
            print(f"{scheme}: infeasible ({exc})")
            continue
        reports.append(report)
        failed = failed or not report.passed
    print(audit_summary(reports).render())
    for report in reports:
        if not report.passed:
            print()
            print(report.table().render())
    if args.differential and not args.scheme:
        # The cross-scheduler check needs a global batch divisible by
        # the GPU count; scale the per-replica figure up.
        print()
        diff = differential_check(
            model, server, args.microbatches * args.gpus,
            microbatch_size=args.microbatch_size,
        )
        print(diff.render())
        failed = failed or not diff.passed
    return 1 if failed else 0


def _dump_resilient_trace(result, path: str) -> None:
    """Serialize a resilient run deterministically (``repr`` floats keep
    full precision): the CI determinism job runs the same seeded sweep
    twice and byte-diffs these files."""
    fr = result.faults
    lines = [f"label={result.label}"]
    for seg in fr.segments:
        lines.append(
            f"segment {seg.index} iteration={seg.iteration} "
            f"start={seg.started_at!r} duration={seg.duration!r} "
            f"aborted={seg.aborted} lost={seg.lost_device}"
        )
        for ev in seg.result.trace.events:
            lines.append(
                f"  {ev.device} {ev.category} {ev.label} "
                f"{ev.start!r} {ev.end!r} {ev.nbytes!r}"
            )
    lines.append(
        f"makespan={fr.total_makespan!r} samples={fr.samples} "
        f"retried_bytes={fr.retried_bytes!r} retry_events={fr.retry_events} "
        f"losses={fr.device_losses!r} replans={fr.replans} "
        f"recovered={fr.recovered}"
    )
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments import faults_degradation
    from repro.faults import mttf_loss_plan, run_resilient
    from repro.validate import audit_resilient

    model = (
        zoo.build(args.model)
        if args.model
        else zoo.synthetic_uniform(num_layers=8)
    )
    mttfs = tuple(args.mttf) if args.mttf else (float("inf"), 8.0, 4.0, 2.5)
    rows = faults_degradation.run(
        model=model,
        num_gpus=args.gpus,
        iterations=args.iterations,
        mttf_iters=mttfs,
        transient_probability=args.transient_probability,
        seed=args.seed,
    )
    print(faults_degradation.table(rows).render())

    comparisons = faults_degradation.gracefulness(rows)
    if comparisons:
        print()
        for harmony, baseline, mttf, h_ratio, b_ratio in comparisons:
            verdict = "more graceful" if h_ratio > b_ratio else "NOT more graceful"
            print(
                f"mttf={mttf:g}: {harmony} retains {h_ratio:.3f} vs "
                f"{baseline} {b_ratio:.3f} -> {verdict}"
            )

    failed = [r for r in rows if not r.recovered]
    for row in failed:
        print(f"RECOVERY FAILED: {row.scheme} at mttf={row.mttf_iters:g}")

    if args.trace_out:
        # One seeded faulty run, dumped deterministically for the CI
        # determinism diff.
        server = presets.gtx1080ti_server(num_gpus=args.gpus)
        finite = [m for m in mttfs if m != float("inf")]
        mttf = min(finite) if finite else 2.5
        config = HarmonyConfig(args.scheme)
        plan = mttf_loss_plan(
            [g.name for g in server.gpus()],
            mttf=mttf,  # absolute seconds here; fine for a replay check
            horizon=mttf * args.iterations,
            seed=args.seed,
        )
        result = run_resilient(
            model, server, config, plan, iterations=args.iterations
        )
        audit = audit_resilient(result.faults)
        if not audit.passed:
            print(audit.table().render())
            return 1
        _dump_resilient_trace(result, args.trace_out)
        print(f"\nwrote deterministic trace to {args.trace_out}")

    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Harmony (HotOS '21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="regenerate every paper figure")
    sub.add_parser("zoo", help="list the model zoo (Fig. 1 data)")

    def add_workload(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", choices=zoo.names(), help="model zoo entry")
        p.add_argument("--gpus", type=int, default=4)
        p.add_argument("--microbatch-size", type=int, default=1)
        p.add_argument("--microbatches", type=int, default=4)

    compare_p = sub.add_parser("compare", help="run all schemes head-to-head")
    add_workload(compare_p)
    compare_p.add_argument(
        "--audit", action="store_true",
        help="audit every run's physical consistency as it executes",
    )

    tune_p = sub.add_parser("tune", help="search task granularity")
    add_workload(tune_p)

    timeline_p = sub.add_parser("timeline", help="print a schedule timeline")
    add_workload(timeline_p)
    timeline_p.add_argument("--scheme", choices=SCHEMES, default="harmony-pp")
    timeline_p.add_argument(
        "--audit", action="store_true",
        help="audit the run's physical consistency",
    )

    audit_p = sub.add_parser(
        "audit", help="audit runs against the physical-consistency invariants"
    )
    add_workload(audit_p)
    audit_p.add_argument(
        "--scheme", choices=SCHEMES, default=None,
        help="audit one scheme only (default: all)",
    )
    audit_p.add_argument(
        "--no-differential", dest="differential", action="store_false",
        help="skip the cross-scheduler differential check",
    )

    faults_p = sub.add_parser(
        "faults", help="MTTF sweep: goodput degradation under fault injection"
    )
    faults_p.add_argument(
        "--model", choices=zoo.names(), default=None,
        help="model zoo entry (default: a fast synthetic model)",
    )
    faults_p.add_argument("--gpus", type=int, default=4)
    faults_p.add_argument("--iterations", type=int, default=6)
    faults_p.add_argument(
        "--mttf", type=float, nargs="*", default=None,
        help="MTTF values in fault-free iteration times "
             "(default: inf 8 4 2.5; 'inf' allowed)",
    )
    faults_p.add_argument("--seed", type=int, default=1)
    faults_p.add_argument(
        "--transient-probability", type=float, default=0.02,
        help="per-transfer transient failure probability",
    )
    faults_p.add_argument(
        "--scheme", choices=SCHEMES, default="harmony-dp",
        help="scheme for the --trace-out determinism run",
    )
    faults_p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="dump the deterministic trace of one seeded faulty run",
    )

    args = parser.parse_args(argv)
    handlers = {
        "figures": cmd_figures,
        "zoo": cmd_zoo,
        "compare": cmd_compare,
        "tune": cmd_tune,
        "timeline": cmd_timeline,
        "audit": cmd_audit,
        "faults": cmd_faults,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
