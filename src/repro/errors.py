"""Exception hierarchy for the Harmony reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A user-supplied configuration is invalid or inconsistent."""


class TopologyError(ConfigError):
    """A hardware topology is malformed (unknown device, no route, ...)."""


class ModelError(ConfigError):
    """A model graph is malformed (empty, negative sizes, bad layer refs)."""


class CapacityError(ReproError):
    """A task's working set cannot fit in device memory even after
    evicting everything evictable.

    This is the simulated analogue of a CUDA out-of-memory error: the
    memory manager raises it when a single task's pinned working set
    exceeds the device's capacity, which no amount of swapping can fix.
    """


class SchedulingError(ReproError):
    """The scheduler produced an inconsistent plan (cycle, unplaced task,
    dependency on a task that never runs)."""


class SimulationError(ReproError):
    """The discrete-event engine detected an internal invariant violation
    (e.g. deadlock: tasks remain but nothing can make progress)."""


class TensorStateError(ReproError):
    """An illegal tensor lifetime transition was attempted."""


class FaultError(ReproError):
    """An injected fault could not be absorbed by the resilience layer
    (retries exhausted, no surviving devices, re-planning impossible)."""


class DeviceLostError(FaultError):
    """A device was lost mid-run (the simulated analogue of a GPU
    falling off the bus).

    Raised out of the event loop at the injected loss time; the
    resilient runner catches it, accounts the lost work, and re-plans
    the remaining work onto the surviving devices.  ``device`` names the
    lost device and ``at`` is the *local* simulation time of the loss
    within the interrupted segment.
    """

    def __init__(self, device: str, at: float):
        self.device = device
        self.at = at
        super().__init__(f"device {device} lost at t={at:.6g}s")


class AuditError(ReproError):
    """A finished run failed its post-hoc physical-consistency audit.

    Carries the structured violation records so callers can render or
    inspect them; ``str(exc)`` summarizes the first few.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        kinds = sorted({str(v.kind) for v in self.violations})
        preview = "; ".join(v.message for v in self.violations[:3])
        super().__init__(
            f"run failed audit with {len(self.violations)} violation(s) "
            f"[{', '.join(kinds)}]: {preview}"
        )
