"""Exception hierarchy for the Harmony reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A user-supplied configuration is invalid or inconsistent."""


class TopologyError(ConfigError):
    """A hardware topology is malformed (unknown device, no route, ...)."""


class ModelError(ConfigError):
    """A model graph is malformed (empty, negative sizes, bad layer refs)."""


class CapacityError(ReproError):
    """A task's working set cannot fit in device memory even after
    evicting everything evictable.

    This is the simulated analogue of a CUDA out-of-memory error: the
    memory manager raises it when a single task's pinned working set
    exceeds the device's capacity, which no amount of swapping can fix.
    """


class SchedulingError(ReproError):
    """The scheduler produced an inconsistent plan (cycle, unplaced task,
    dependency on a task that never runs)."""


class SimulationError(ReproError):
    """The discrete-event engine detected an internal invariant violation
    (e.g. deadlock: tasks remain but nothing can make progress)."""


class SteadyStateError(SimulationError):
    """``--steady-state force`` demanded a fast-forwarded run but the
    executor never proved periodicity (too few iterations for a
    warm-up + detection + final live iteration, or a run whose state
    genuinely never converges to a cycle)."""


class TensorStateError(ReproError):
    """An illegal tensor lifetime transition was attempted."""


class FaultError(ReproError):
    """An injected fault could not be absorbed by the resilience layer
    (retries exhausted, no surviving devices, re-planning impossible)."""


class DeviceLostError(FaultError):
    """A device was lost mid-run (the simulated analogue of a GPU
    falling off the bus).

    Raised out of the event loop at the injected loss time; the
    resilient runner catches it, accounts the lost work, and re-plans
    the remaining work onto the surviving devices.  ``device`` names the
    lost device and ``at`` is the *local* simulation time of the loss
    within the interrupted segment.
    """

    def __init__(self, device: str, at: float):
        self.device = device
        self.at = at
        super().__init__(f"device {device} lost at t={at:.6g}s")


class WorkerError(ReproError):
    """An unexpected (non-:class:`ReproError`) exception escaped a sweep
    worker.

    Raw third-party exceptions are not guaranteed to survive the pickle
    round-trip back to the parent process (and an unpicklable exception
    tears down the whole pool), so workers wrap them in this flat,
    always-picklable record: the failing spec's label, the original
    exception type and message, and the formatted traceback text.

    The supervisor treats a ``WorkerError`` as *possibly transient* —
    it retries the spec under the backoff policy — whereas ordinary
    :class:`ReproError` outcomes are deterministic domain results
    (infeasible spec, audit failure) and are never retried.
    """

    def __init__(
        self,
        label: str,
        exc_type: str,
        exc_message: str,
        traceback_text: str = "",
    ):
        self.label = label
        self.exc_type = exc_type
        self.exc_message = exc_message
        self.traceback_text = traceback_text
        super().__init__(
            f"worker failed on {label or 'spec'}: {exc_type}: {exc_message}"
        )

    def __reduce__(self):
        # BaseException pickles via ``(cls, self.args)``; our args hold
        # the formatted message, not the constructor signature, so spell
        # the reconstruction out.
        return (
            type(self),
            (self.label, self.exc_type, self.exc_message, self.traceback_text),
        )

    @classmethod
    def from_exception(cls, label: str, exc: BaseException) -> "WorkerError":
        import traceback

        return cls(
            label,
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
        )


class PoisonedSpecError(ReproError):
    """A spec was quarantined: every attempt the supervisor's retry
    budget allowed ended in a crash, hang, or unexpected worker error.

    The sweep completes with this error in the spec's result slot
    instead of aborting; ``history`` carries one line per failed
    attempt so the quarantine decision is auditable.
    """

    def __init__(self, label: str, attempts: int, history=()):
        self.label = label
        self.attempts = attempts
        self.history = tuple(history)
        tail = f"; last failure: {self.history[-1]}" if self.history else ""
        super().__init__(
            f"spec {label or '?'} quarantined after "
            f"{attempts} attempt(s){tail}"
        )

    def __reduce__(self):
        return (type(self), (self.label, self.attempts, self.history))


class DrainedError(ReproError):
    """A supervised task was never started because the supervisor was
    asked to drain (:meth:`~repro.supervisor.Supervisor.request_drain`).

    Unlike :class:`PoisonedSpecError` this is not a verdict about the
    task — it was simply not reached before shutdown.  Drained tasks
    are *not* journaled, so resuming the same journal executes them.
    """

    def __init__(self, label: str):
        self.label = label
        super().__init__(
            f"task {label or '?'} not started: supervisor drained"
        )

    def __reduce__(self):
        return (type(self), (self.label,))


class JournalError(ReproError):
    """A sweep journal is unusable (missing header, unreadable file)."""


class ServeError(ReproError):
    """Base class for job-server (``repro.serve``) failures."""


class JobSpecError(ServeError):
    """A submitted job payload is malformed or names unknown entities
    (model, scheme, kind).  Maps to HTTP 400."""


class QuotaExceededError(ServeError):
    """A tenant's admission would exceed its quota.  Maps to HTTP 429
    with a ``Retry-After`` hint.

    ``tenant`` is the offending tenant, ``limit`` its configured cap,
    and ``in_use`` the jobs it already has queued or running.
    """

    def __init__(self, tenant: str, limit: int, in_use: int):
        self.tenant = tenant
        self.limit = limit
        self.in_use = in_use
        super().__init__(
            f"tenant {tenant!r} quota exceeded: "
            f"{in_use}/{limit} job(s) already queued or running"
        )

    def __reduce__(self):
        return (type(self), (self.tenant, self.limit, self.in_use))


class QueueFullError(ServeError):
    """The server's global admission queue is at capacity.  Maps to
    HTTP 503 with a ``Retry-After`` hint (``retry_after`` seconds)."""

    def __init__(self, depth: int, limit: int, retry_after: float = 1.0):
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"admission queue full: {depth}/{limit} job(s) queued"
        )

    def __reduce__(self):
        return (type(self), (self.depth, self.limit, self.retry_after))


class AuditError(ReproError):
    """A finished run failed its post-hoc physical-consistency audit.

    Carries the structured violation records so callers can render or
    inspect them; ``str(exc)`` summarizes the first few.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        kinds = sorted({str(v.kind) for v in self.violations})
        preview = "; ".join(v.message for v in self.violations[:3])
        super().__init__(
            f"run failed audit with {len(self.violations)} violation(s) "
            f"[{', '.join(kinds)}]: {preview}"
        )
