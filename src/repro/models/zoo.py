"""Model zoo: the registry behind the paper's Fig. 1 growth series.

Each entry pairs a published parameter count (as plotted in Fig. 1)
with a builder that reconstructs the model from its architecture, so
tests can verify that the reconstruction lands on the published figure
rather than simply echoing it.

Also exposes ``synthetic_uniform`` — the idealized model of the paper's
§3 analytical comparison (one layer type, identical runtimes and
footprints, "like Transformers").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ModelError
from repro.models.cnn import alexnet, amoebanet_proxy, lenet5
from repro.models.graph import ModelGraph
from repro.models.layer import LayerSpec
from repro.models.rnn import gnmt
from repro.models.transformer import (
    bert_large,
    gpt2_xl,
    gpt3_175b,
    megatron_8b,
    t5_11b,
)
from repro.units import FP32_BYTES, MB


@dataclass(frozen=True)
class ZooEntry:
    """One point in the Fig. 1 growth series."""

    name: str
    year: int
    task: str
    published_params: float
    builder: Callable[[], ModelGraph]


_REGISTRY: dict[str, ZooEntry] = {}


def _register(entry: ZooEntry) -> None:
    _REGISTRY[entry.name] = entry


_register(ZooEntry("lenet", 1998, "image classification", 60e3, lenet5))
_register(ZooEntry("alexnet", 2012, "image classification", 61e6, alexnet))
_register(ZooEntry("gnmt", 2016, "translation", 278e6, gnmt))
_register(
    ZooEntry("amoebanet", 2018, "image classification", 557e6, amoebanet_proxy)
)
_register(ZooEntry("gpt2", 2019, "language modeling", 1.5e9, gpt2_xl))
_register(ZooEntry("t5", 2019, "language modeling", 11e9, t5_11b))
_register(ZooEntry("gpt3", 2020, "language modeling", 175e9, gpt3_175b))
_register(
    ZooEntry("bert-large", 2018, "language modeling", 340e6, bert_large)
)
_register(
    ZooEntry("megatron", 2019, "language modeling", 8.3e9, megatron_8b)
)


def names() -> list[str]:
    """Registered model names, ordered by publication year."""
    return [e.name for e in sorted(_REGISTRY.values(), key=lambda e: (e.year, e.name))]


def entry(name: str) -> ZooEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown model {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def build(name: str) -> ModelGraph:
    """Build a registered model by name."""
    return entry(name).builder()


def growth_series() -> list[ZooEntry]:
    """The exact series the paper's Fig. 1 plots, in order."""
    order = ["lenet", "alexnet", "gnmt", "amoebanet", "gpt2", "t5", "gpt3"]
    return [entry(n) for n in order]


def synthetic_uniform(
    num_layers: int = 4,
    param_bytes_per_layer: float = 100 * MB,
    activation_bytes: float = 25 * MB,
    flops_fwd: float = 1e12,
    stash_multiplier: float = 1.0,
    optimizer_multiplier: float = 2.0,
    dtype_bytes: int = FP32_BYTES,
    name: str | None = None,
) -> ModelGraph:
    """The paper's §3 idealized model: ``num_layers`` identical layers
    ("one type of layer, like Transformers, same runtime and memory
    footprint for forward/backward/update").

    ``activation_bytes`` is per *sample*; the analytical swap-volume
    comparison and the Fig. 4 schedule example both use this model.
    """
    if num_layers < 1:
        raise ModelError("synthetic model needs at least one layer")
    layers = [
        LayerSpec(
            name=f"L{i + 1}",
            param_count=param_bytes_per_layer / dtype_bytes,
            in_bytes_per_sample=activation_bytes,
            out_bytes_per_sample=activation_bytes,
            stash_bytes_per_sample=stash_multiplier * activation_bytes,
            flops_fwd_per_sample=flops_fwd,
            flops_bwd_per_sample=2 * flops_fwd,
            dtype_bytes=dtype_bytes,
            optimizer_multiplier=optimizer_multiplier,
        )
        for i in range(num_layers)
    ]
    return ModelGraph(name=name or f"uniform-{num_layers}", layers=layers)
