"""Transformer model builders (BERT, GPT-2, GPT-3, T5).

Parameter counts follow the standard per-block formula (``12 h^2 + 13 h``
for an encoder block with biases and 4h feed-forward), generalized to
arbitrary feed-forward width, key/value dimension, and decoder
cross-attention so that the published totals the paper plots in Fig. 1
(GPT-2 1.5 B, T5 11 B, GPT-3 175 B) are reproduced from first principles
rather than hard-coded.

FLOP counts use the matmul rule (2 FLOPs per multiply-accumulate) plus
the quadratic attention terms; activation stash sizes follow the usual
"keep everything the backward pass re-reads" accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.models.graph import ModelGraph
from repro.models.layer import LayerSpec
from repro.units import FP32_BYTES


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyperparameters for a transformer LM.

    ``d_ff`` defaults to ``4 * hidden`` and ``d_kv`` to
    ``hidden / heads`` when left as ``None`` (the GPT/BERT convention);
    T5-style models override both.
    """

    name: str
    num_blocks: int
    hidden: int
    heads: int
    seq_len: int
    vocab: int
    max_pos: int | None = None
    d_ff: int | None = None
    d_kv: int | None = None
    bias: bool = True
    tied_head: bool = True
    cross_attention: bool = False
    dtype_bytes: int = FP32_BYTES
    optimizer_multiplier: float = 2.0
    stash_factor: float = 24.0
    attn_stash_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ModelError(f"{self.name}: need at least one block")
        for field_name in ("hidden", "heads", "seq_len", "vocab"):
            if getattr(self, field_name) < 1:
                raise ModelError(f"{self.name}: {field_name} must be >= 1")
        if self.hidden % self.heads != 0 and self.d_kv is None:
            raise ModelError(f"{self.name}: hidden must be divisible by heads")

    @property
    def ff_width(self) -> int:
        return self.d_ff if self.d_ff is not None else 4 * self.hidden

    @property
    def kv_width(self) -> int:
        return self.d_kv if self.d_kv is not None else self.hidden // self.heads

    @property
    def attn_inner(self) -> int:
        """Total width of the attention projection (heads * d_kv)."""
        return self.heads * self.kv_width

    @property
    def positions(self) -> int:
        return self.max_pos if self.max_pos is not None else self.seq_len


def _block_params(cfg: TransformerConfig) -> float:
    """Trainable parameters of one transformer block."""
    h, inner, ff = cfg.hidden, cfg.attn_inner, cfg.ff_width
    attn = 3 * h * inner + inner * h  # q, k, v projections + output projection
    if cfg.bias:
        attn += 3 * inner + h
    if cfg.cross_attention:
        attn *= 2  # decoder blocks carry a second (cross) attention
    mlp = h * ff + ff * h
    if cfg.bias:
        mlp += ff + h
    num_norms = 3 if cfg.cross_attention else 2
    norms = num_norms * (2 * h if cfg.bias else h)
    return float(attn + mlp + norms)


def _block_flops_fwd(cfg: TransformerConfig) -> float:
    """Forward FLOPs per sample for one block: 2 FLOPs per MAC on the
    projections and feed-forward, plus the seq^2 attention matmuls."""
    s, h, inner, ff = cfg.seq_len, cfg.hidden, cfg.attn_inner, cfg.ff_width
    proj = 2 * s * (3 * h * inner + inner * h)
    if cfg.cross_attention:
        proj *= 2
    attn_quadratic = 4 * s * s * inner  # QK^T and attn @ V
    if cfg.cross_attention:
        attn_quadratic *= 2
    mlp = 2 * s * (2 * h * ff)
    return float(proj + attn_quadratic + mlp)


def _block_stash_bytes(cfg: TransformerConfig) -> float:
    """Per-sample activation bytes stashed between forward and backward."""
    s, h = cfg.seq_len, cfg.hidden
    dense = cfg.stash_factor * s * h
    attn = cfg.attn_stash_factor * cfg.heads * s * s
    if cfg.cross_attention:
        attn *= 2
    return float((dense + attn) * cfg.dtype_bytes)


def build_transformer(cfg: TransformerConfig) -> ModelGraph:
    """Materialize a :class:`ModelGraph`: embedding, N blocks, LM head."""
    act = float(cfg.seq_len * cfg.hidden * cfg.dtype_bytes)
    token_ids = float(cfg.seq_len * 4)  # int32 token ids
    layers: list[LayerSpec] = []

    embed_params = float(cfg.vocab * cfg.hidden + cfg.positions * cfg.hidden)
    if cfg.bias:
        embed_params += 2 * cfg.hidden  # embedding layernorm
    layers.append(
        LayerSpec(
            name="embed",
            param_count=embed_params,
            in_bytes_per_sample=token_ids,
            out_bytes_per_sample=act,
            stash_bytes_per_sample=act,
            flops_fwd_per_sample=float(2 * cfg.seq_len * cfg.hidden),
            flops_bwd_per_sample=float(4 * cfg.seq_len * cfg.hidden),
            dtype_bytes=cfg.dtype_bytes,
            optimizer_multiplier=cfg.optimizer_multiplier,
        )
    )

    block_params = _block_params(cfg)
    fwd = _block_flops_fwd(cfg)
    stash = _block_stash_bytes(cfg)
    for i in range(cfg.num_blocks):
        layers.append(
            LayerSpec(
                name=f"block{i}",
                param_count=block_params,
                in_bytes_per_sample=act,
                out_bytes_per_sample=act,
                stash_bytes_per_sample=stash,
                flops_fwd_per_sample=fwd,
                flops_bwd_per_sample=2 * fwd,
                dtype_bytes=cfg.dtype_bytes,
                optimizer_multiplier=cfg.optimizer_multiplier,
            )
        )

    head_params = 0.0 if cfg.tied_head else float(cfg.hidden * cfg.vocab)
    head_flops = float(2 * cfg.seq_len * cfg.hidden * cfg.vocab)
    layers.append(
        LayerSpec(
            name="lm_head",
            param_count=head_params,
            in_bytes_per_sample=act,
            out_bytes_per_sample=float(cfg.seq_len * cfg.vocab * cfg.dtype_bytes),
            stash_bytes_per_sample=act,
            flops_fwd_per_sample=head_flops,
            flops_bwd_per_sample=2 * head_flops,
            dtype_bytes=cfg.dtype_bytes,
            optimizer_multiplier=cfg.optimizer_multiplier,
        )
    )
    model = ModelGraph(name=cfg.name, layers=layers)
    model.validate()
    return model


# -- published configurations ------------------------------------------


def bert_large(seq_len: int = 512, dtype_bytes: int = FP32_BYTES) -> ModelGraph:
    """BERT-large (Devlin et al. '18): 24 blocks, hidden 1024 — the
    workload of the paper's Fig. 2 measurements (~340 M params)."""
    return build_transformer(
        TransformerConfig(
            name="bert-large",
            num_blocks=24,
            hidden=1024,
            heads=16,
            seq_len=seq_len,
            vocab=30522,
            max_pos=512,
            dtype_bytes=dtype_bytes,
        )
    )


def gpt2_xl(seq_len: int = 1024, dtype_bytes: int = FP32_BYTES) -> ModelGraph:
    """GPT-2 XL (Radford et al. '19): 48 blocks, hidden 1600, ~1.5 B."""
    return build_transformer(
        TransformerConfig(
            name="gpt2-xl",
            num_blocks=48,
            hidden=1600,
            heads=25,
            seq_len=seq_len,
            vocab=50257,
            max_pos=1024,
            dtype_bytes=dtype_bytes,
        )
    )


def gpt3_175b(seq_len: int = 2048, dtype_bytes: int = FP32_BYTES) -> ModelGraph:
    """GPT-3 (Brown et al. '20): 96 blocks, hidden 12288, ~175 B."""
    return build_transformer(
        TransformerConfig(
            name="gpt3-175b",
            num_blocks=96,
            hidden=12288,
            heads=96,
            seq_len=seq_len,
            vocab=50257,
            max_pos=2048,
            dtype_bytes=dtype_bytes,
        )
    )


def megatron_8b(seq_len: int = 1024, dtype_bytes: int = FP32_BYTES) -> ModelGraph:
    """Megatron-LM 8.3B (Shoeybi et al. '19, cited by the paper as the
    canonical model-parallel system): 72 blocks, hidden 3072."""
    return build_transformer(
        TransformerConfig(
            name="megatron-8b",
            num_blocks=72,
            hidden=3072,
            heads=24,
            seq_len=seq_len,
            vocab=51200,
            max_pos=1024,
            dtype_bytes=dtype_bytes,
        )
    )


def t5_11b(seq_len: int = 512, dtype_bytes: int = FP32_BYTES) -> ModelGraph:
    """T5-11B (Raffel et al. '19): 24 encoder + 24 decoder blocks with
    d_ff=65536, d_kv=128, no biases — ~11 B parameters.

    Encoder and decoder halves are built separately (decoder blocks
    carry cross-attention) and concatenated into one chain, which is how
    seq2seq training pipelines schedule them.
    """
    common = dict(
        hidden=1024,
        heads=128,
        seq_len=seq_len,
        vocab=32128,
        max_pos=0,  # T5 uses relative position biases (negligible params)
        d_ff=65536,
        d_kv=128,
        bias=False,
        dtype_bytes=dtype_bytes,
    )
    encoder = build_transformer(
        TransformerConfig(name="t5-enc", num_blocks=24, **common)
    )
    decoder = build_transformer(
        TransformerConfig(
            name="t5-dec", num_blocks=24, cross_attention=True, **common
        )
    )
    # Fuse: encoder embed + enc blocks + dec blocks + head.  The decoder
    # embedding is tied to the encoder's, so it is dropped.
    layers = list(encoder.layers[:-1])  # embed + enc blocks
    for layer in decoder.layers[1:-1]:  # dec blocks (skip embed)
        layers.append(
            LayerSpec(
                name=f"dec_{layer.name}",
                param_count=layer.param_count,
                in_bytes_per_sample=layer.in_bytes_per_sample,
                out_bytes_per_sample=layer.out_bytes_per_sample,
                stash_bytes_per_sample=layer.stash_bytes_per_sample,
                flops_fwd_per_sample=layer.flops_fwd_per_sample,
                flops_bwd_per_sample=layer.flops_bwd_per_sample,
                dtype_bytes=layer.dtype_bytes,
                optimizer_multiplier=layer.optimizer_multiplier,
            )
        )
    layers.append(decoder.layers[-1])  # lm head (tied: zero params)
    model = ModelGraph(name="t5-11b", layers=layers)
    model.validate()
    return model
