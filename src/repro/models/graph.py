"""Model graphs: ordered chains of layers.

DNN training pipelines (and the paper's analysis) treat the model as a
sequence of layer-level operations; :class:`ModelGraph` is that chain
plus whole-model footprint accounting used to decide when a model
"fits" and by how much it overflows aggregate GPU memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.models.layer import LayerSpec
from repro.models.phases import Phase
from repro.units import fmt_bytes, fmt_count


@dataclass
class ModelGraph:
    """An ordered chain of layers with training-footprint accounting.

    Attributes
    ----------
    name:
        Model identifier (e.g. ``"bert-large"``).
    layers:
        The chain, in forward order.
    """

    name: str
    layers: list[LayerSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("model name must be non-empty")
        seen: set[str] = set()
        for layer in self.layers:
            if layer.name in seen:
                raise ModelError(f"duplicate layer name {layer.name!r} in {self.name!r}")
            seen.add(layer.name)

    # -- basic shape ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def layer(self, index: int) -> LayerSpec:
        return self.layers[index]

    def index_of(self, name: str) -> int:
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise ModelError(f"no layer named {name!r} in model {self.name!r}")

    def validate(self) -> None:
        """Structural checks: non-empty, activation chain is consistent
        (each layer's input size equals its predecessor's output size)."""
        if not self.layers:
            raise ModelError(f"model {self.name!r} has no layers")
        for prev, cur in zip(self.layers, self.layers[1:]):
            if abs(prev.out_bytes_per_sample - cur.in_bytes_per_sample) > 1e-6:
                raise ModelError(
                    f"model {self.name!r}: activation size mismatch between "
                    f"{prev.name!r} (out {prev.out_bytes_per_sample}) and "
                    f"{cur.name!r} (in {cur.in_bytes_per_sample})"
                )

    # -- aggregate sizes -------------------------------------------------

    @property
    def param_count(self) -> float:
        return sum(layer.param_count for layer in self.layers)

    @property
    def param_bytes(self) -> float:
        return sum(layer.param_bytes for layer in self.layers)

    @property
    def grad_bytes(self) -> float:
        return sum(layer.grad_bytes for layer in self.layers)

    @property
    def optimizer_bytes(self) -> float:
        return sum(layer.optimizer_bytes for layer in self.layers)

    def stash_bytes(self, microbatch_size: int) -> float:
        """Activation stash for one microbatch across the whole model."""
        return sum(layer.stash_bytes(microbatch_size) for layer in self.layers)

    def flops(self, phase: Phase, microbatch_size: int) -> float:
        return sum(layer.flops(phase, microbatch_size) for layer in self.layers)

    def iteration_flops(self, batch_size: int) -> float:
        """FLOPs of a full training iteration on ``batch_size`` samples."""
        return (
            self.flops(Phase.FORWARD, batch_size)
            + self.flops(Phase.BACKWARD, batch_size)
            + self.flops(Phase.UPDATE, 1)
        )

    def training_footprint_bytes(
        self, microbatch_size: int, num_live_microbatches: int = 1
    ) -> float:
        """Total bytes of training state for one model replica: weights,
        gradients, optimizer state, and stashed activations for the given
        number of simultaneously-live microbatches.

        This is the footprint the paper describes as "significantly
        blowing up" beyond the parameter size — the quantity compared
        against GPU memory capacity to decide whether swapping is needed.
        """
        return (
            self.param_bytes
            + self.grad_bytes
            + self.optimizer_bytes
            + num_live_microbatches * self.stash_bytes(microbatch_size)
        )

    def max_layer_working_set(self, microbatch_size: int) -> float:
        """The largest single-task working set across layers and phases —
        the hard lower bound on device capacity (a device that cannot
        hold one task's working set cannot train the model at all)."""
        return max(
            layer.working_set_bytes(phase, microbatch_size)
            for layer in self.layers
            for phase in Phase
        )

    def slice(self, start: int, stop: int, name: str | None = None) -> "ModelGraph":
        """A contiguous sub-chain (used to form pipeline stages)."""
        if not 0 <= start < stop <= len(self.layers):
            raise ModelError(
                f"invalid slice [{start}:{stop}] of model with {len(self.layers)} layers"
            )
        return ModelGraph(
            name=name or f"{self.name}[{start}:{stop}]",
            layers=list(self.layers[start:stop]),
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.layers)} layers, "
            f"{fmt_count(self.param_count)} params ({fmt_bytes(self.param_bytes)})"
        )

    def __str__(self) -> str:
        return self.describe()
