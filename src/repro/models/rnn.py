"""Recurrent model builders (GNMT).

GNMT (Wu et al. '16) is the 278 M-parameter translation model in the
paper's Fig. 1.  The builder reconstructs its published structure —
8-layer encoder (first layer bidirectional), 8-layer decoder with
attention fed to every layer, tied 32 K wordpiece vocabulary — from the
standard LSTM parameter formula ``4 * ((input + hidden) * hidden +
hidden)`` per direction.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.models.graph import ModelGraph
from repro.models.layer import LayerSpec
from repro.units import FP32_BYTES


def lstm_layer(
    name: str,
    input_size: int,
    hidden: int,
    seq_len: int,
    bidirectional: bool = False,
    dtype_bytes: int = FP32_BYTES,
) -> LayerSpec:
    """One (possibly bidirectional) LSTM layer."""
    if min(input_size, hidden, seq_len) < 1:
        raise ModelError(f"lstm layer {name!r}: dimensions must be >= 1")
    directions = 2 if bidirectional else 1
    params = directions * 4 * ((input_size + hidden) * hidden + hidden)
    out_width = directions * hidden
    in_bytes = float(seq_len * input_size * dtype_bytes)
    out_bytes = float(seq_len * out_width * dtype_bytes)
    # Recurrent matmuls: 8 h (input + hidden) MACs per timestep per direction.
    fwd = float(directions * 2 * seq_len * 4 * (input_size + hidden) * hidden)
    return LayerSpec(
        name=name,
        param_count=float(params),
        in_bytes_per_sample=in_bytes,
        out_bytes_per_sample=out_bytes,
        # LSTMs stash per-timestep gates: ~4 gate activations + cell state.
        stash_bytes_per_sample=float(5 * seq_len * out_width * dtype_bytes),
        flops_fwd_per_sample=fwd,
        flops_bwd_per_sample=2 * fwd,
        dtype_bytes=dtype_bytes,
    )


def embedding_layer(
    name: str,
    vocab: int,
    width: int,
    seq_len: int,
    dtype_bytes: int = FP32_BYTES,
) -> LayerSpec:
    out_bytes = float(seq_len * width * dtype_bytes)
    return LayerSpec(
        name=name,
        param_count=float(vocab * width),
        in_bytes_per_sample=float(seq_len * 4),
        out_bytes_per_sample=out_bytes,
        stash_bytes_per_sample=out_bytes,
        flops_fwd_per_sample=float(2 * seq_len * width),
        flops_bwd_per_sample=float(4 * seq_len * width),
        dtype_bytes=dtype_bytes,
    )


def projection_layer(
    name: str,
    in_width: int,
    vocab: int,
    seq_len: int,
    dtype_bytes: int = FP32_BYTES,
) -> LayerSpec:
    fwd = float(2 * seq_len * in_width * vocab)
    in_bytes = float(seq_len * in_width * dtype_bytes)
    return LayerSpec(
        name=name,
        param_count=float(in_width * vocab + vocab),
        in_bytes_per_sample=in_bytes,
        out_bytes_per_sample=float(seq_len * vocab * dtype_bytes),
        stash_bytes_per_sample=in_bytes,
        flops_fwd_per_sample=fwd,
        flops_bwd_per_sample=2 * fwd,
        dtype_bytes=dtype_bytes,
    )


def gnmt(
    vocab: int = 32000,
    hidden: int = 1024,
    enc_layers: int = 8,
    dec_layers: int = 8,
    seq_len: int = 50,
    dtype_bytes: int = FP32_BYTES,
) -> ModelGraph:
    """GNMT: ~278 M parameters with the published defaults."""
    if enc_layers < 2 or dec_layers < 1:
        raise ModelError("gnmt: need >= 2 encoder layers and >= 1 decoder layer")
    layers: list[LayerSpec] = [
        embedding_layer("src_embed", vocab, hidden, seq_len, dtype_bytes),
        lstm_layer("enc0", hidden, hidden, seq_len, bidirectional=True,
                   dtype_bytes=dtype_bytes),
        lstm_layer("enc1", 2 * hidden, hidden, seq_len, dtype_bytes=dtype_bytes),
    ]
    for i in range(2, enc_layers):
        layers.append(
            lstm_layer(f"enc{i}", hidden, hidden, seq_len, dtype_bytes=dtype_bytes)
        )
    layers.append(embedding_layer("tgt_embed", vocab, hidden, seq_len, dtype_bytes))
    # Every decoder layer receives the attention context concatenated to
    # its input (the GNMT "attention is fed to all layers" design).
    for i in range(dec_layers):
        layers.append(
            lstm_layer(
                f"dec{i}", 2 * hidden, hidden, seq_len, dtype_bytes=dtype_bytes
            )
        )
    layers.append(projection_layer("softmax", hidden, vocab, seq_len, dtype_bytes))
    return ModelGraph(name="gnmt", layers=layers)
