"""DNN model descriptions and training cost models.

Models in this library are *metadata-level*: a :class:`ModelGraph` is an
ordered chain of :class:`LayerSpec` records carrying parameter counts,
activation sizes, and FLOP counts — everything the scheduler, memory
manager, and analytical model need, and nothing they don't (no actual
arithmetic is performed).  Builders reconstruct the published models the
paper plots in Fig. 1 (LeNet through GPT-3) plus the BERT workload used
in Fig. 2.
"""

from repro.models.layer import LayerSpec
from repro.models.phases import Phase
from repro.models.graph import ModelGraph
from repro.models.costmodel import CostModel
from repro.models import zoo

__all__ = ["LayerSpec", "Phase", "ModelGraph", "CostModel", "zoo"]
