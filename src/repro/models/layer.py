"""Layer specifications: the unit of task decomposition.

A :class:`LayerSpec` carries the sizes and FLOP counts of one layer.
The paper's analytical model (§3, Fig. 5(a)) reasons about exactly
these tensors per layer:

===========================  =====================================
tensor                       size source
===========================  =====================================
weights ``W``                ``param_bytes``
weight gradients ``dW``      ``param_bytes`` (same shape as W)
optimizer state ``K``        ``optimizer_multiplier * param_bytes``
input activation ``X``       ``in_bytes_per_sample * microbatch``
output activation ``Y``      ``out_bytes_per_sample * microbatch``
stashed tensors for BWD      ``stash_bytes_per_sample * microbatch``
input gradient ``dX``        same size as ``X``
output gradient ``dY``       same size as ``Y``
===========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.models.phases import Phase
from repro.units import FP32_BYTES


@dataclass(frozen=True)
class LayerSpec:
    """Size/cost metadata for one layer of a DNN.

    Attributes
    ----------
    name:
        Unique name within its model (e.g. ``"block12"``).
    param_count:
        Number of trainable parameters.
    dtype_bytes:
        Bytes per parameter / activation element (fp32 by default).
    in_bytes_per_sample / out_bytes_per_sample:
        Input / output activation bytes for a single sample.
    stash_bytes_per_sample:
        Activation bytes that must be *stashed* between this layer's
        forward and backward passes (includes the input plus any
        internal activations the backward pass re-reads).
    flops_fwd_per_sample:
        Forward-pass FLOPs for one sample.
    flops_bwd_per_sample:
        Backward-pass FLOPs for one sample (typically ~2x forward,
        per the paper's note that backward has 2-3x the runtime).
    optimizer_multiplier:
        Optimizer state bytes as a multiple of ``param_bytes``
        (2.0 for Adam's two fp32 moments, 0.0 for vanilla SGD).
    """

    name: str
    param_count: float
    in_bytes_per_sample: float
    out_bytes_per_sample: float
    stash_bytes_per_sample: float
    flops_fwd_per_sample: float
    flops_bwd_per_sample: float
    dtype_bytes: int = FP32_BYTES
    optimizer_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("layer name must be non-empty")
        for field_name in (
            "param_count",
            "in_bytes_per_sample",
            "out_bytes_per_sample",
            "stash_bytes_per_sample",
            "flops_fwd_per_sample",
            "flops_bwd_per_sample",
            "optimizer_multiplier",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ModelError(f"layer {self.name!r}: {field_name} must be >= 0")
        if self.dtype_bytes <= 0:
            raise ModelError(f"layer {self.name!r}: dtype_bytes must be positive")

    # -- derived sizes -----------------------------------------------------

    @property
    def param_bytes(self) -> float:
        """Bytes of the weight tensor W."""
        return self.param_count * self.dtype_bytes

    @property
    def grad_bytes(self) -> float:
        """Bytes of the weight-gradient buffer dW (same shape as W)."""
        return self.param_bytes

    @property
    def optimizer_bytes(self) -> float:
        """Bytes of optimizer state K (e.g. Adam moments)."""
        return self.optimizer_multiplier * self.param_bytes

    def in_bytes(self, microbatch_size: int) -> float:
        return self.in_bytes_per_sample * microbatch_size

    def out_bytes(self, microbatch_size: int) -> float:
        return self.out_bytes_per_sample * microbatch_size

    def stash_bytes(self, microbatch_size: int) -> float:
        return self.stash_bytes_per_sample * microbatch_size

    def flops(self, phase: Phase, microbatch_size: int) -> float:
        """Total FLOPs for one phase over a microbatch.

        The update phase costs a small per-parameter constant (fused
        Adam: ~6 FLOPs/param) and does not scale with batch size.
        """
        if phase is Phase.FORWARD:
            return self.flops_fwd_per_sample * microbatch_size
        if phase is Phase.BACKWARD:
            return self.flops_bwd_per_sample * microbatch_size
        if phase is Phase.UPDATE:
            return 6.0 * self.param_count
        raise ModelError(f"unknown phase {phase!r}")

    def working_set_bytes(self, phase: Phase, microbatch_size: int) -> float:
        """Peak device-resident bytes needed to execute one phase on one
        microbatch — the union of the swap-in and swap-out sets of the
        paper's Fig. 5(a) swap model."""
        m = microbatch_size
        if phase is Phase.FORWARD:
            # in: X, W; out: Y, stashed X (stash is held alongside)
            return self.in_bytes(m) + self.param_bytes + self.out_bytes(m) + max(
                0.0, self.stash_bytes(m) - self.in_bytes(m)
            )
        if phase is Phase.BACKWARD:
            # in: dY, stash, W, dW buffer; out: dX, accumulated dW
            return (
                self.out_bytes(m)
                + self.stash_bytes(m)
                + self.param_bytes
                + self.grad_bytes
                + self.in_bytes(m)
            )
        if phase is Phase.UPDATE:
            # in: dW, W, K; out: W', K', reset dW'
            return self.param_bytes + self.grad_bytes + self.optimizer_bytes
        raise ModelError(f"unknown phase {phase!r}")

    def __str__(self) -> str:
        return f"LayerSpec({self.name}, {self.param_count:.3g} params)"
