"""Runtime cost model: FLOPs -> seconds, bytes -> seconds.

The simulator needs a clock value for every compute task and transfer.
This model converts a task's FLOPs to time using the executing device's
sustained throughput, with a floor representing per-kernel launch
overhead — the paper notes fine-grained tasks "may be as short as a few
microseconds", and the launch floor is what makes over-decomposition
costly (exercised by the task-packing ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.device import DeviceSpec
from repro.models.layer import LayerSpec
from repro.models.phases import Phase
from repro.units import USEC


@dataclass(frozen=True)
class CostModel:
    """Converts work metadata to simulated durations.

    Attributes
    ----------
    kernel_launch_sec:
        Fixed per-task overhead (CUDA kernel launch + framework
        dispatch).  ~10 us is typical for PyTorch eager mode.
    memory_bound_fraction:
        A de-rating applied to layers whose arithmetic intensity is low;
        1.0 means pure FLOP-bound execution.  Kept as a single knob —
        a full roofline model is beyond what the paper's claims need.
    """

    kernel_launch_sec: float = 10 * USEC
    memory_bound_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.kernel_launch_sec < 0:
            raise ConfigError("kernel_launch_sec must be >= 0")
        if not 0 < self.memory_bound_fraction <= 1.0:
            raise ConfigError("memory_bound_fraction must be in (0, 1]")

    def compute_time(
        self,
        layer: LayerSpec,
        phase: Phase,
        microbatch_size: int,
        device: DeviceSpec,
    ) -> float:
        """Simulated duration of one (layer, phase) task on one microbatch."""
        if microbatch_size < 1:
            raise ConfigError("microbatch_size must be >= 1")
        flops = layer.flops(phase, microbatch_size)
        effective = device.flops_per_sec * self.memory_bound_fraction
        return self.kernel_launch_sec + flops / effective

    def task_time(self, flops: float, device: DeviceSpec) -> float:
        """Duration of a task given its total FLOPs (used by the
        executor, whose tasks carry precomputed FLOP counts)."""
        if flops < 0:
            raise ConfigError("flops must be >= 0")
        effective = device.flops_per_sec * self.memory_bound_fraction
        return self.kernel_launch_sec + flops / effective

    def pack_time(
        self,
        layers: list[LayerSpec],
        phase: Phase,
        microbatch_size: int,
        device: DeviceSpec,
    ) -> float:
        """Duration of a *packed* task executing several layers
        back-to-back: one launch overhead, summed FLOPs.  This is the
        benefit side of the paper's task-packing optimization."""
        if not layers:
            return 0.0
        flops = sum(layer.flops(phase, microbatch_size) for layer in layers)
        effective = device.flops_per_sec * self.memory_bound_fraction
        return self.kernel_launch_sec + flops / effective
