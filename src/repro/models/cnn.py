"""Convolutional model builders (LeNet-5, AlexNet, AmoebaNet proxy).

These supply the image-classification half of the paper's Fig. 1 model
growth series.  LeNet-5 and AlexNet are reconstructed layer by layer
with exact classic parameter counts; AmoebaNet — whose evolved cell
structure is far more intricate than this reproduction needs — is
represented by a NASNet-style stacked-cell proxy whose width is
calibrated so the total parameter count matches the published 557 M
(the quantity Fig. 1 actually plots).
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.models.graph import ModelGraph
from repro.models.layer import LayerSpec
from repro.units import FP32_BYTES


def conv_layer(
    name: str,
    in_ch: int,
    out_ch: int,
    kernel: int,
    in_hw: int,
    out_hw: int,
    dtype_bytes: int = FP32_BYTES,
    separable: bool = False,
) -> LayerSpec:
    """A 2-D convolution layer spec from its shape.

    ``separable=True`` models a depthwise-separable convolution (the
    building block of NASNet/AmoebaNet cells).
    """
    if min(in_ch, out_ch, kernel, in_hw, out_hw) < 1:
        raise ModelError(f"conv layer {name!r}: all dimensions must be >= 1")
    if separable:
        params = kernel * kernel * in_ch + in_ch * out_ch + out_ch
        macs_per_px = kernel * kernel * in_ch + in_ch * out_ch
    else:
        params = kernel * kernel * in_ch * out_ch + out_ch
        macs_per_px = kernel * kernel * in_ch * out_ch
    in_bytes = float(in_hw * in_hw * in_ch * dtype_bytes)
    out_bytes = float(out_hw * out_hw * out_ch * dtype_bytes)
    fwd = float(2 * macs_per_px * out_hw * out_hw)
    return LayerSpec(
        name=name,
        param_count=float(params),
        in_bytes_per_sample=in_bytes,
        out_bytes_per_sample=out_bytes,
        stash_bytes_per_sample=in_bytes,
        flops_fwd_per_sample=fwd,
        flops_bwd_per_sample=2 * fwd,
        dtype_bytes=dtype_bytes,
    )


def fc_layer(
    name: str,
    in_features: int,
    out_features: int,
    dtype_bytes: int = FP32_BYTES,
) -> LayerSpec:
    """A fully-connected layer spec."""
    if min(in_features, out_features) < 1:
        raise ModelError(f"fc layer {name!r}: features must be >= 1")
    params = float(in_features * out_features + out_features)
    in_bytes = float(in_features * dtype_bytes)
    out_bytes = float(out_features * dtype_bytes)
    fwd = float(2 * in_features * out_features)
    return LayerSpec(
        name=name,
        param_count=params,
        in_bytes_per_sample=in_bytes,
        out_bytes_per_sample=out_bytes,
        stash_bytes_per_sample=in_bytes,
        flops_fwd_per_sample=fwd,
        flops_bwd_per_sample=2 * fwd,
        dtype_bytes=dtype_bytes,
    )


def _chain(name: str, layers: list[LayerSpec]) -> ModelGraph:
    """Assemble a ModelGraph without enforcing exact activation-size
    continuity (pooling/flatten between conv layers changes sizes in
    ways the LayerSpec chain records faithfully per layer)."""
    return ModelGraph(name=name, layers=layers)


def lenet5(dtype_bytes: int = FP32_BYTES) -> ModelGraph:
    """LeNet-5 (LeCun et al. '98): ~61.7 K parameters, the 60 K point
    in the paper's Fig. 1."""
    return _chain(
        "lenet5",
        [
            conv_layer("conv1", 1, 6, 5, 32, 28, dtype_bytes),
            conv_layer("conv2", 6, 16, 5, 14, 10, dtype_bytes),
            fc_layer("fc1", 16 * 5 * 5, 120, dtype_bytes),
            fc_layer("fc2", 120, 84, dtype_bytes),
            fc_layer("fc3", 84, 10, dtype_bytes),
        ],
    )


def alexnet(dtype_bytes: int = FP32_BYTES) -> ModelGraph:
    """AlexNet (Krizhevsky et al. '12): ~61 M parameters."""
    return _chain(
        "alexnet",
        [
            conv_layer("conv1", 3, 96, 11, 224, 55, dtype_bytes),
            conv_layer("conv2", 96, 256, 5, 27, 27, dtype_bytes),
            conv_layer("conv3", 256, 384, 3, 13, 13, dtype_bytes),
            conv_layer("conv4", 384, 384, 3, 13, 13, dtype_bytes),
            conv_layer("conv5", 384, 256, 3, 13, 13, dtype_bytes),
            fc_layer("fc6", 256 * 6 * 6, 4096, dtype_bytes),
            fc_layer("fc7", 4096, 4096, dtype_bytes),
            fc_layer("fc8", 4096, 1000, dtype_bytes),
        ],
    )


def amoebanet_proxy(
    target_params: float = 557e6,
    num_stages: int = 3,
    cells_per_stage: int = 6,
    ops_per_cell: int = 10,
    dtype_bytes: int = FP32_BYTES,
) -> ModelGraph:
    """A stacked-cell proxy for AmoebaNet-B (557 M params).

    Structure: ``num_stages`` stages of ``cells_per_stage`` cells; each
    cell is modelled as one layer aggregating ``ops_per_cell``
    depthwise-separable convolutions at that stage's width; widths
    double per stage (the NASNet reduction pattern).  The base width is
    solved by bisection so the *total* parameter count lands on the
    published figure — Fig. 1 plots parameter counts, and the swap/
    schedule experiments depend only on per-layer sizes, so this proxy
    preserves everything the reproduction uses.
    """

    def total_for_width(base: int) -> float:
        total = 0.0
        hw = 56
        in_ch = 3
        for stage in range(num_stages):
            width = base * (2**stage)
            for __ in range(cells_per_stage):
                sep = 9 * in_ch + in_ch * width + width
                total += ops_per_cell * sep
                in_ch = width
            hw //= 2
        total += in_ch * 1000 + 1000  # classifier
        return total

    lo, hi = 8, 65536
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if total_for_width(mid) < target_params:
            lo = mid
        else:
            hi = mid
    base = hi if abs(total_for_width(hi) - target_params) < abs(
        total_for_width(lo) - target_params
    ) else lo

    layers: list[LayerSpec] = []
    hw = 56
    in_ch = 3
    for stage in range(num_stages):
        width = base * (2**stage)
        out_hw = max(hw // 2, 1)
        for cell in range(cells_per_stage):
            sep_params = ops_per_cell * (9 * in_ch + in_ch * width + width)
            in_bytes = float(hw * hw * in_ch * dtype_bytes)
            out_bytes = float(hw * hw * width * dtype_bytes)
            fwd = float(2 * ops_per_cell * (9 * in_ch + in_ch * width) * hw * hw)
            layers.append(
                LayerSpec(
                    name=f"s{stage}c{cell}",
                    param_count=float(sep_params),
                    in_bytes_per_sample=in_bytes,
                    out_bytes_per_sample=out_bytes,
                    stash_bytes_per_sample=in_bytes + out_bytes,
                    flops_fwd_per_sample=fwd,
                    flops_bwd_per_sample=2 * fwd,
                    dtype_bytes=dtype_bytes,
                )
            )
            in_ch = width
        hw = out_hw
    layers.append(fc_layer("classifier", in_ch, 1000, dtype_bytes))
    return _chain("amoebanet-proxy", layers)
