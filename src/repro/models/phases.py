"""Training phases of a layer within one iteration.

The paper decomposes a training script into forward, backward, and
weight-update tasks per layer (Fig. 3's Task Decomposer); this enum
names those phases for the cost model, swap model, and task system.
"""

from __future__ import annotations

from repro.util.enums import FastEnum


class Phase(FastEnum):
    FORWARD = "fwd"
    BACKWARD = "bwd"
    UPDATE = "upd"

    def __str__(self) -> str:
        return self.value
