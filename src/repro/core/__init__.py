"""Public API: the "single virtual accelerator" facade.

The paper's ideal: "users could write DNN training programs that target
a single virtual accelerator device with practically unbounded memory."
:class:`HarmonySession` is that facade — give it a model (sequential
chain, as if for one device), a server, and a parallelization choice,
and it decomposes, schedules, and simulates the training iteration.
"""

from repro.core.config import HarmonyConfig, Parallelism
from repro.core.session import HarmonySession
from repro.core.report import compare_runs

__all__ = ["HarmonyConfig", "Parallelism", "HarmonySession", "compare_runs"]
