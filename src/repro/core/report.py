"""Cross-run comparison reports."""

from __future__ import annotations

from typing import Sequence

from repro.sim.result import RunResult
from repro.units import GB
from repro.util.tables import Table
from repro.validate.violations import AuditReport


def compare_runs(results: Sequence[RunResult]) -> Table:
    """One row per scheme: the quantities the paper's figures compare."""
    table = Table(
        ["scheme", "iter (s)", "samples/s", "swap-out (GB)", "host traffic (GB)",
         "p2p (GB)", "bottleneck link", "util%"],
        title="scheme comparison",
    )
    for result in results:
        link, util = result.bottleneck_link()
        table.add_row(
            [
                result.label,
                f"{result.makespan:.3f}",
                f"{result.throughput:.3f}",
                f"{result.swap_out_volume / GB:.2f}",
                f"{result.host_traffic / GB:.2f}",
                f"{result.stats.p2p_volume() / GB:.2f}",
                link,
                f"{100 * util:.0f}",
            ]
        )
    return table


def audit_summary(reports: Sequence[AuditReport]) -> Table:
    """One row per audited run: checks executed, violations found."""
    table = Table(
        ["scheme", "checks", "violations", "kinds"],
        title="physical-consistency audit",
    )
    for report in reports:
        kinds = ", ".join(sorted(str(k) for k in report.kinds())) or "-"
        table.add_row(
            [
                report.label,
                len(report.checks),
                "PASS" if report.passed else str(len(report.violations)),
                kinds,
            ]
        )
    return table
