"""Session configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faults.model import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.models.costmodel import CostModel
from repro.schedulers.base import BatchConfig
from repro.schedulers.options import HarmonyOptions


class Parallelism(enum.Enum):
    """Which schedule drives the iteration.

    ``HARMONY_DP`` / ``HARMONY_PP`` are the paper's proposal; the
    ``*_BASELINE`` values are today's frameworks with per-GPU memory
    virtualization bolted on, and ``SINGLE`` is one virtualized GPU.
    ``PIPEDREAM_1F1B`` and ``DAPPLE`` are the contemporary pipeline
    schedules the paper positions against, likewise virtualized.

    Values mirror the scheduler registry
    (:data:`repro.schedulers.SCHEDULER_REGISTRY`) one-for-one; a test
    keeps the two in sync.
    """

    SINGLE = "single"
    DP_BASELINE = "dp-baseline"
    PP_BASELINE = "pp-baseline"
    HARMONY_DP = "harmony-dp"
    HARMONY_PP = "harmony-pp"
    HARMONY_TP = "harmony-tp"
    PIPEDREAM_1F1B = "pipedream-1f1b"
    DAPPLE = "dapple"

    @staticmethod
    def parse(value: "Parallelism | str") -> "Parallelism":
        if isinstance(value, Parallelism):
            return value
        try:
            return Parallelism(value)
        except ValueError:
            raise ConfigError(
                f"unknown parallelism {value!r}; choose from "
                f"{[p.value for p in Parallelism]}"
            ) from None


@dataclass(frozen=True)
class HarmonyConfig:
    """Everything a :class:`HarmonySession` needs besides model+server.

    Attributes
    ----------
    parallelism:
        Scheme (see :class:`Parallelism`); accepts the string form.
    batch:
        Microbatch shape (``m`` microbatches of ``microbatch_size``).
    options:
        Harmony optimization toggles (ignored by baseline schemes).
    prefetch:
        Double-buffer next-task swap-ins behind current compute.
    cost_model:
        FLOPs -> time conversion knobs.
    audit:
        Run the :mod:`repro.validate` physical-consistency audit after
        every simulation; violations raise
        :class:`~repro.errors.AuditError`.
    faults:
        Seed-driven fault plan (see :mod:`repro.faults`).  When set,
        :meth:`HarmonySession.run` executes through the resilient
        runner: retries with backoff, checkpoint accounting, and mid-run
        re-planning onto the survivors.  ``None`` simulates a healthy
        machine.
    resilience:
        Retry/checkpoint/recovery knobs for faulty runs.  ``None``
        picks the per-scheme default
        (:meth:`~repro.faults.resilience.ResiliencePolicy.for_scheme`):
        Harmony schemes restart from the last checkpoint on survivors;
        rigid baselines restart from scratch.
    iterations:
        Training iterations the run simulates.  Faulty runs need a wall
        long enough for faults to strike; healthy multi-iteration runs
        replay the plan back-to-back and are eligible for steady-state
        fast-forward.
    steady_state:
        Steady-state fast-forward mode — ``"auto"`` (detect periodicity
        and skip proven-identical iterations analytically), ``"off"``
        (full-fidelity simulation of every iteration), or ``"force"``
        (error unless fast-forward engaged).  ``None`` inherits the
        process default (the CLI's ``--steady-state``).  Fault plans
        veto fast-forward wholesale; see :mod:`repro.steady`.
    """

    parallelism: Parallelism | str = Parallelism.HARMONY_PP
    batch: BatchConfig = field(default_factory=BatchConfig)
    options: HarmonyOptions = field(default_factory=HarmonyOptions)
    prefetch: bool = False
    cost_model: CostModel = field(default_factory=CostModel)
    audit: bool = False
    faults: FaultPlan | None = None
    resilience: ResiliencePolicy | None = None
    iterations: int = 1
    steady_state: str | None = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")
        if self.steady_state is not None:
            from repro.steady import SteadyMode

            # Normalize to the canonical string: the field enters the
            # run-cache fingerprint, so "auto" and SteadyMode.AUTO must
            # hash identically.
            object.__setattr__(
                self, "steady_state", SteadyMode.parse(self.steady_state).value
            )

    def resolved_parallelism(self) -> Parallelism:
        return Parallelism.parse(self.parallelism)
