"""Session configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faults.model import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.models.costmodel import CostModel
from repro.schedulers.base import BatchConfig
from repro.schedulers.options import HarmonyOptions


class Parallelism(enum.Enum):
    """Which schedule drives the iteration.

    ``HARMONY_DP`` / ``HARMONY_PP`` are the paper's proposal; the
    ``*_BASELINE`` values are today's frameworks with per-GPU memory
    virtualization bolted on, and ``SINGLE`` is one virtualized GPU.
    """

    SINGLE = "single"
    DP_BASELINE = "dp-baseline"
    PP_BASELINE = "pp-baseline"
    HARMONY_DP = "harmony-dp"
    HARMONY_PP = "harmony-pp"
    HARMONY_TP = "harmony-tp"

    @staticmethod
    def parse(value: "Parallelism | str") -> "Parallelism":
        if isinstance(value, Parallelism):
            return value
        try:
            return Parallelism(value)
        except ValueError:
            raise ConfigError(
                f"unknown parallelism {value!r}; choose from "
                f"{[p.value for p in Parallelism]}"
            ) from None


@dataclass(frozen=True)
class HarmonyConfig:
    """Everything a :class:`HarmonySession` needs besides model+server.

    Attributes
    ----------
    parallelism:
        Scheme (see :class:`Parallelism`); accepts the string form.
    batch:
        Microbatch shape (``m`` microbatches of ``microbatch_size``).
    options:
        Harmony optimization toggles (ignored by baseline schemes).
    prefetch:
        Double-buffer next-task swap-ins behind current compute.
    cost_model:
        FLOPs -> time conversion knobs.
    audit:
        Run the :mod:`repro.validate` physical-consistency audit after
        every simulation; violations raise
        :class:`~repro.errors.AuditError`.
    faults:
        Seed-driven fault plan (see :mod:`repro.faults`).  When set,
        :meth:`HarmonySession.run` executes through the resilient
        runner: retries with backoff, checkpoint accounting, and mid-run
        re-planning onto the survivors.  ``None`` simulates a healthy
        machine.
    resilience:
        Retry/checkpoint/recovery knobs for faulty runs.  ``None``
        picks the per-scheme default
        (:meth:`~repro.faults.resilience.ResiliencePolicy.for_scheme`):
        Harmony schemes restart from the last checkpoint on survivors;
        rigid baselines restart from scratch.
    iterations:
        Training iterations a faulty run executes (faults need a wall
        long enough to strike; healthy runs simulate one iteration as
        before).
    """

    parallelism: Parallelism | str = Parallelism.HARMONY_PP
    batch: BatchConfig = field(default_factory=BatchConfig)
    options: HarmonyOptions = field(default_factory=HarmonyOptions)
    prefetch: bool = False
    cost_model: CostModel = field(default_factory=CostModel)
    audit: bool = False
    faults: FaultPlan | None = None
    resilience: ResiliencePolicy | None = None
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError("iterations must be >= 1")

    def resolved_parallelism(self) -> Parallelism:
        return Parallelism.parse(self.parallelism)
