"""HarmonySession: model + server + config -> plan -> simulated run."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import HarmonyConfig

if TYPE_CHECKING:
    from repro.perf.incremental import CheckpointStore
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.schedulers import build_scheduler
from repro.schedulers.base import Scheduler
from repro.sim.executor import ExecOptions, Executor
from repro.sim.plan import Plan
from repro.sim.result import RunResult
from repro.sim.trace import render_timeline
from repro.util.gcpause import paused_gc
from repro.validate.audit import audit_run
from repro.validate.violations import AuditReport


class HarmonySession:
    """One training setup: build the plan once, simulate on demand.

    >>> from repro.models import zoo
    >>> from repro.hardware import presets
    >>> model = zoo.synthetic_uniform(num_layers=4)
    >>> server = presets.gtx1080ti_server(num_gpus=2)
    >>> session = HarmonySession(model, server, HarmonyConfig("harmony-pp"))
    >>> result = session.run()
    >>> result.samples
    1
    """

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        config: HarmonyConfig | None = None,
        checkpoints: "CheckpointStore | None" = None,
    ):
        self.model = model
        self.topology = topology
        self.config = config if config is not None else HarmonyConfig()
        #: Prefix-checkpoint store (:mod:`repro.perf.incremental`) —
        #: deliberately a constructor argument, not a config field: the
        #: config is fingerprinted, and where a run's snapshots live
        #: must not change what it computes.
        self.checkpoints = checkpoints
        self._plan: Plan | None = None
        self._result: RunResult | None = None

    # -- scheduling ----------------------------------------------------------

    def scheduler(self) -> Scheduler:
        cfg = self.config
        return build_scheduler(
            cfg.resolved_parallelism().value,
            self.model,
            self.topology,
            cfg.batch,
            options=cfg.options,
        )

    def plan(self) -> Plan:
        if self._plan is None:
            # Decomposing and placing a large fleet's graph is an
            # allocation storm over a growing live object graph — the
            # shape that makes generational GC quadratic-ish (see
            # :mod:`repro.util.gcpause`).
            with paused_gc():
                self._plan = self.scheduler().plan()
        return self._plan

    # -- simulation --------------------------------------------------------------

    def run(self, fresh: bool = False) -> RunResult:
        """Simulate a training run (cached unless ``fresh``).

        Healthy configs simulate ``config.iterations`` iterations
        (default one); multi-iteration runs are eligible for
        steady-state fast-forward per ``config.steady_state`` (see
        :mod:`repro.steady`), with the outcome on ``result.steady``.
        With ``config.faults`` set, the run goes through
        :func:`repro.faults.run_resilient`: ``config.iterations``
        iterations under the fault plan, with the aggregate
        :class:`~repro.faults.report.FaultReport` attached to
        ``result.faults`` (and each faulty segment audited when
        ``config.audit`` is on); fault plans veto fast-forward.
        """
        if self._result is None or fresh:
            if self.config.faults is not None:
                from repro.errors import ConfigError
                from repro.steady import SteadyMode, SteadyReport, resolve_mode

                steady_mode = resolve_mode(self.config.steady_state)
                if steady_mode is SteadyMode.FORCE:
                    raise ConfigError(
                        "steady-state 'force' is incompatible with fault "
                        "injection: fault windows veto fast-forward"
                    )
                # Imported lazily: the runner re-invokes build_scheduler
                # mid-run, and keeping it out of the session's import
                # graph keeps healthy runs' startup unchanged.
                from repro.faults.runner import run_resilient

                result = run_resilient(
                    self.model,
                    self.topology,
                    self.config,
                    self.config.faults,
                    policy=self.config.resilience,
                    iterations=self.config.iterations,
                )
                # Fault plans veto fast-forward wholesale: the resilient
                # runner's executors all take the legacy path, keeping
                # faulty runs bit-for-bit identical to pre-steady-state
                # behavior.  Record the veto so callers see why.
                result.steady = SteadyReport(
                    mode=steady_mode.value,
                    live_iterations=self.config.iterations,
                    vetoes=("fault-injection",),
                )
                if self.config.audit:
                    from repro.validate.audit import audit_resilient

                    result.audit = audit_resilient(result.faults)
                    result.audit.raise_if_failed()
                self._result = result
            else:
                checkpoints = self.checkpoints
                checkpoint_key = None
                if checkpoints is not None and self.config.iterations > 1:
                    from repro.perf.fingerprint import (
                        FingerprintError,
                        base_fingerprint,
                    )

                    try:
                        checkpoint_key = base_fingerprint(
                            self.model, self.topology, self.config
                        )
                    except FingerprintError:
                        checkpoint_key = None  # uncacheable spec: run cold
                # One guard spans construction and the run: executor
                # init builds the fleet-sized dependency/device tables,
                # the same allocation shape the plan phase pauses the
                # collector for.
                with paused_gc():
                    executor = Executor(
                        self.topology,
                        self.plan(),
                        cost_model=self.config.cost_model,
                        options=ExecOptions(
                            prefetch=self.config.prefetch,
                            audit=self.config.audit,
                            iterations=self.config.iterations,
                            steady_state=self.config.steady_state,
                            checkpoints=(
                                checkpoints if checkpoint_key is not None else None
                            ),
                            checkpoint_key=checkpoint_key,
                        ),
                    )
                    self._result = executor.run()
        return self._result

    def audit_report(self, fresh: bool = False) -> AuditReport:
        """Audit the simulated iteration against the physical invariants
        (see :mod:`repro.validate`) and return the structured report —
        violations are returned, not raised."""
        result = self.run(fresh=fresh)
        if result.audit is not None:
            return result.audit
        result.audit = audit_run(
            result, self.topology, self.plan(),
            iterations=self.config.iterations,
        )
        return result.audit

    def timeline(self, width: int = 100) -> str:
        """ASCII Gantt chart of the simulated iteration (Fig. 4 style)."""
        return render_timeline(self.run().trace, width=width)

    def summary(self) -> str:
        return self.run().summary()

    def explain(self) -> str:
        """Narrate the Fig. 3 pipeline for this setup — what the
        decomposer produced, how the scheduler bound it to devices, and
        how the model's footprint compares to the hardware — without
        running the simulation."""
        from repro.units import GB

        model, topo = self.model, self.topology
        plan = self.plan()
        state = model.param_bytes + model.grad_bytes + model.optimizer_bytes
        gpus = topo.gpus()
        aggregate = sum(g.memory_bytes for g in gpus)
        stash = model.stash_bytes(self.config.batch.microbatch_size)
        lines = [
            f"model: {model.describe()}",
            (
                f"training state {state / GB:.1f} GB + "
                f"{stash / GB:.2f} GB stash/microbatch vs "
                f"{len(gpus)} GPUs x {gpus[0].memory_bytes / GB:.1f} GB "
                f"(aggregate {aggregate / GB:.1f} GB)"
                + (" -- must swap" if state > aggregate else "")
            ),
            f"hardware: {topo}",
            plan.describe(),
        ]
        collective = plan.total_collective_bytes()
        if collective:
            lines.append(
                f"  collectives: {collective / GB:.2f} GB per-participant wire volume"
            )
        return "\n".join(lines)
