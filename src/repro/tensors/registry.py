"""Tensor registry: allocates and indexes every logical tensor of a run.

The task decomposer asks the registry for tensors by role —
``weight(layer, replica)``, ``activation(boundary, microbatch,
replica)`` — and the registry creates each logical tensor exactly once,
so two tasks naming the same role share the same tensor and therefore
the same residency, which is precisely what makes input-batch grouping
profitable in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.models.graph import ModelGraph
from repro.tensors.tensor import TensorKind, TensorMeta

_Key = tuple[TensorKind, int, int | None, int]


@dataclass
class TensorRegistry:
    """Creates and indexes :class:`TensorMeta` records for one model.

    Attributes
    ----------
    model:
        The model whose layer sizes determine tensor sizes.
    microbatch_size:
        Samples per microbatch (activation sizes scale with this).
    weight_shards:
        When > 1, per-replica weight/gradient/optimizer/stash tensors
        are 1/shards of the full size: the operation-decomposition
        (tensor-parallel) mode, where ``replica`` indexes the shard and
        full activations are replicated per shard after collectives.
    optimizer_shards:
        When > 1, only the *optimizer state* is partitioned across
        replicas (ZeRO stage-1 style, the paper-cited optimizer-state
        sharding [Rajbhandari et al.]): each replica holds full W/dW
        but 1/shards of K, updates its slice of the weights, and an
        all-gather rebuilds full weights afterwards.
    """

    model: ModelGraph
    microbatch_size: int
    weight_shards: int = 1
    optimizer_shards: int = 1
    _by_key: dict[_Key, TensorMeta] = field(default_factory=dict)
    _by_id: list[TensorMeta] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.microbatch_size < 1:
            raise ModelError("microbatch_size must be >= 1")
        if self.weight_shards < 1:
            raise ModelError("weight_shards must be >= 1")
        if self.optimizer_shards < 1:
            raise ModelError("optimizer_shards must be >= 1")

    def _create(self, key: _Key, size_bytes: float) -> TensorMeta:
        kind, layer, microbatch, replica = key
        meta = TensorMeta(
            tid=len(self._by_id),
            kind=kind,
            layer=layer,
            microbatch=microbatch,
            replica=replica,
            size_bytes=size_bytes,
        )
        self._by_key[key] = meta
        self._by_id.append(meta)
        return meta

    # -- persistent state --------------------------------------------------

    def weight(self, layer: int, replica: int = 0) -> TensorMeta:
        key = (TensorKind.WEIGHT, layer, None, replica)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        spec = self.model.layer(layer)
        return self._create(key, spec.param_bytes / self.weight_shards)

    def weight_grad(self, layer: int, replica: int = 0) -> TensorMeta:
        key = (TensorKind.WEIGHT_GRAD, layer, None, replica)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        spec = self.model.layer(layer)
        return self._create(key, spec.grad_bytes / self.weight_shards)

    def opt_state(self, layer: int, replica: int = 0) -> TensorMeta:
        key = (TensorKind.OPT_STATE, layer, None, replica)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        spec = self.model.layer(layer)
        return self._create(
            key, spec.optimizer_bytes / self.weight_shards / self.optimizer_shards
        )

    # -- per-microbatch tensors ---------------------------------------------

    def activation(self, boundary: int, microbatch: int, replica: int = 0) -> TensorMeta:
        """Activation at ``boundary`` (output of layer ``boundary``;
        boundary ``-1`` is the input data batch)."""
        key = (TensorKind.ACTIVATION, boundary, microbatch, replica)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        if boundary == -1:
            size = self.model.layer(0).in_bytes(self.microbatch_size)
        else:
            size = self.model.layer(boundary).out_bytes(self.microbatch_size)
        return self._create(key, size)

    def act_grad(self, boundary: int, microbatch: int, replica: int = 0) -> TensorMeta:
        """Activation gradient at ``boundary`` (layer ``boundary``'s dY,
        layer ``boundary + 1``'s dX)."""
        key = (TensorKind.ACT_GRAD, boundary, microbatch, replica)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        if boundary == -1:
            size = self.model.layer(0).in_bytes(self.microbatch_size)
        else:
            size = self.model.layer(boundary).out_bytes(self.microbatch_size)
        return self._create(key, size)

    def stash(self, layer: int, microbatch: int, replica: int = 0) -> TensorMeta:
        key = (TensorKind.STASH, layer, microbatch, replica)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        spec = self.model.layer(layer)
        return self._create(
            key, spec.stash_bytes(self.microbatch_size) / self.weight_shards
        )

    def checkpoint(self, layer: int, microbatch: int, replica: int = 0) -> TensorMeta:
        """A recompute checkpoint: only the layer's *input* activation is
        retained between forward and backward (Chen et al.'s sublinear
        memory training, cited by the paper as a memory optimization);
        the backward pass recomputes everything else.  Shares the STASH
        kind — a run uses either full stashes or checkpoints, never both
        for the same layer."""
        key = (TensorKind.STASH, layer, microbatch, replica)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        spec = self.model.layer(layer)
        return self._create(key, spec.in_bytes(self.microbatch_size))

    def act_part(self, boundary: int, microbatch: int, shard: int) -> TensorMeta:
        """One shard's partial output at ``boundary`` (1/shards of the
        full activation); all-gathered into full per-shard copies."""
        key = (TensorKind.ACT_PART, boundary, microbatch, shard)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        size = self.model.layer(boundary).out_bytes(self.microbatch_size)
        return self._create(key, size / self.weight_shards)

    def grad_part(self, boundary: int, microbatch: int, shard: int) -> TensorMeta:
        """One shard's partial input-gradient contribution at
        ``boundary`` (full-sized: every shard contributes a dense
        partial sum that the all-reduce combines)."""
        key = (TensorKind.GRAD_PART, boundary, microbatch, shard)
        meta = self._by_key.get(key)
        if meta is not None:
            return meta
        if boundary == -1:
            size = self.model.layer(0).in_bytes(self.microbatch_size)
        else:
            size = self.model.layer(boundary).out_bytes(self.microbatch_size)
        return self._create(key, size)

    # -- queries -------------------------------------------------------------

    def all_tensors(self) -> list[TensorMeta]:
        return list(self._by_id)

    def by_id(self, tid: int) -> TensorMeta:
        return self._by_id[tid]

    def __len__(self) -> int:
        return len(self._by_id)
