"""Tensor lifetime state machine.

The paper (§3): "Harmony's memory manager maintains a state machine
tracking the lifetime of all tensors used."  This module is that state
machine.  A tensor is, at any simulated instant, in exactly one of:

* ``UNMATERIALIZED`` — not yet produced (per-microbatch tensors before
  their producing task runs),
* ``ON_HOST`` — payload lives only in host memory,
* ``SWAPPING_IN`` — in flight host→device (or device→device),
* ``ON_DEVICE`` — resident on exactly one device,
* ``SWAPPING_OUT`` — in flight device→host,
* ``FREED`` — dead; its memory is reclaimed everywhere.

Orthogonally, an ``ON_DEVICE`` tensor is **clean** if host memory holds
a current copy (eviction may then *drop* it without a write-back) or
**dirty** if the device copy is the only current one (eviction must
swap out).  Baseline per-GPU virtualization in the paper's analytical
model does not exploit cleanliness — it writes back on every eviction —
so cleanliness tracking is a policy flag in the memory manager, not a
hard-wired behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TensorStateError
from repro.tensors.tensor import TensorMeta
from repro.util.enums import FastEnum


class TensorState(FastEnum):
    UNMATERIALIZED = "unmaterialized"
    ON_HOST = "on_host"
    SWAPPING_IN = "swapping_in"
    ON_DEVICE = "on_device"
    SWAPPING_OUT = "swapping_out"
    FREED = "freed"


_ALLOWED: dict[TensorState, frozenset[TensorState]] = {
    TensorState.UNMATERIALIZED: frozenset({TensorState.ON_DEVICE, TensorState.ON_HOST}),
    TensorState.ON_HOST: frozenset({TensorState.SWAPPING_IN, TensorState.FREED}),
    TensorState.SWAPPING_IN: frozenset({TensorState.ON_DEVICE}),
    TensorState.ON_DEVICE: frozenset(
        {TensorState.SWAPPING_OUT, TensorState.ON_HOST, TensorState.FREED,
         TensorState.SWAPPING_IN}
    ),
    TensorState.SWAPPING_OUT: frozenset({TensorState.ON_HOST}),
    TensorState.FREED: frozenset(),
}


@dataclass(slots=True)
class TensorRuntime:
    """Mutable lifetime record for one tensor during a simulation.

    Attributes
    ----------
    meta:
        The immutable identity/size record.
    state:
        Current lifetime state.
    device:
        Device name when ``ON_DEVICE``/``SWAPPING_*``; ``None`` otherwise.
    dirty:
        True when the device copy is the only current copy.
    pinned:
        Reference count of in-flight tasks requiring residency; pinned
        tensors are never chosen as eviction victims.
    last_use:
        Monotonic sequence number of the most recent task touching this
        tensor (drives LRU eviction).
    """

    meta: TensorMeta
    state: TensorState = TensorState.UNMATERIALIZED
    device: str | None = None
    dirty: bool = False
    pinned: int = 0
    last_use: int = -1
    #: Which host's DRAM holds the host copy (multi-server topologies
    #: have several hosts; ``None`` means "any" / not yet written back).
    host_device: str | None = None
    _history: list[TensorState] = field(default_factory=list, repr=False)

    def _transition(self, new: TensorState) -> None:
        if new not in _ALLOWED[self.state]:
            raise TensorStateError(
                f"{self.meta.label}: illegal transition {self.state.value} -> {new.value}"
            )
        self._history.append(self.state)
        self.state = new

    # -- transitions -----------------------------------------------------

    # Where a transition method's own precondition check already pins the
    # source state down to one value, the target is recorded directly (the
    # _ALLOWED lookup would re-prove what the precondition guarantees);
    # methods reachable from several states keep the full _transition.

    def materialize_on_host(self) -> None:
        """Initial placement of persistent state (weights, K) in host
        memory before training starts."""
        if self.state is not TensorState.UNMATERIALIZED:
            raise TensorStateError(
                f"{self.meta.label}: materialize_on_host requires "
                f"UNMATERIALIZED, is {self.state.value}"
            )
        self._history.append(self.state)
        self.state = TensorState.ON_HOST
        self.dirty = False

    def materialize_on_device(self, device: str) -> None:
        """A producing task creates this tensor directly on its device."""
        self._transition(TensorState.ON_DEVICE)
        self.device = device
        self.dirty = True  # no host copy exists yet

    def begin_swap_in(self, device: str) -> None:
        if self.state is not TensorState.ON_HOST:
            raise TensorStateError(
                f"{self.meta.label}: swap-in requires ON_HOST, is {self.state.value}"
            )
        self._history.append(self.state)
        self.state = TensorState.SWAPPING_IN
        self.device = device

    def begin_move(self, device: str) -> None:
        """Start a device-to-device (p2p) move."""
        if self.state is not TensorState.ON_DEVICE:
            raise TensorStateError(
                f"{self.meta.label}: p2p move requires ON_DEVICE, is {self.state.value}"
            )
        self._history.append(self.state)
        self.state = TensorState.SWAPPING_IN
        self.device = device

    def finish_swap_in(self) -> None:
        if self.state is not TensorState.SWAPPING_IN:
            raise TensorStateError(
                f"{self.meta.label}: finish_swap_in requires SWAPPING_IN, "
                f"is {self.state.value}"
            )
        self._history.append(self.state)
        self.state = TensorState.ON_DEVICE

    def begin_swap_out(self, force: bool = False) -> None:
        """Start a write-back.  ``force`` lets the owning task's own
        planned out-and-back-in eviction (idealized no-reuse accounting)
        bypass the pin it itself holds."""
        if self.pinned and not force:
            raise TensorStateError(f"{self.meta.label}: cannot evict a pinned tensor")
        self._transition(TensorState.SWAPPING_OUT)

    def finish_swap_out(self) -> None:
        if self.state is not TensorState.SWAPPING_OUT:
            raise TensorStateError(
                f"{self.meta.label}: finish_swap_out requires SWAPPING_OUT, "
                f"is {self.state.value}"
            )
        self._history.append(self.state)
        self.state = TensorState.ON_HOST
        self.device = None
        self.dirty = False

    def drop(self) -> None:
        """Evict without write-back (legal only when clean)."""
        if self.dirty:
            raise TensorStateError(f"{self.meta.label}: cannot drop a dirty tensor")
        if self.pinned:
            raise TensorStateError(f"{self.meta.label}: cannot drop a pinned tensor")
        self._transition(TensorState.ON_HOST)
        self.device = None

    def free(self) -> None:
        """The tensor is dead (its last consumer ran); reclaim memory."""
        if self.pinned:
            raise TensorStateError(f"{self.meta.label}: cannot free a pinned tensor")
        self._transition(TensorState.FREED)
        self.device = None
        self.dirty = False

    def mark_written(self) -> None:
        """A task mutated the device copy; host copy (if any) is stale."""
        if self.state is not TensorState.ON_DEVICE:
            raise TensorStateError(
                f"{self.meta.label}: write requires ON_DEVICE, is {self.state.value}"
            )
        self.dirty = True

    # -- queries -----------------------------------------------------------

    @property
    def resident_on(self) -> str | None:
        return self.device if self.state is TensorState.ON_DEVICE else None

    @property
    def in_flight(self) -> bool:
        return self.state in (TensorState.SWAPPING_IN, TensorState.SWAPPING_OUT)

    @property
    def alive(self) -> bool:
        return self.state not in (TensorState.FREED, TensorState.UNMATERIALIZED)

    def history(self) -> list[TensorState]:
        """All past states, oldest first (excludes the current state)."""
        return list(self._history)
