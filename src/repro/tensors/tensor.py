"""Tensor metadata: identity and size, following Fig. 5(a)'s taxonomy."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.util.enums import FastEnum
from repro.util.lazy import lazy_attr


class TensorKind(FastEnum):
    """The tensor classes of the paper's swap model (Fig. 5(a)).

    ``ACTIVATION`` tensors live at *boundaries*: the activation at
    boundary ``i`` is layer ``i``'s output Y and layer ``i+1``'s input X.
    Boundary ``-1`` is the input data batch.  ``ACT_GRAD`` mirrors this:
    the gradient at boundary ``i`` is layer ``i``'s dY and layer
    ``i+1``'s dX.
    """

    WEIGHT = "W"
    WEIGHT_GRAD = "dW"
    OPT_STATE = "K"
    ACTIVATION = "A"
    ACT_GRAD = "dA"
    STASH = "S"
    #: Per-shard partial output of a decomposed (sharded) operation —
    #: paper key idea #2: "decompose individual operations — such as a
    #: matrix multiplication — into subtasks that can run on different
    #: physical devices".  Combined into a full ACTIVATION by an
    #: all-gather collective.
    ACT_PART = "Ap"
    #: Per-shard partial input-gradient contribution, summed into a
    #: full ACT_GRAD by an all-reduce collective.
    GRAD_PART = "dAp"

    def __str__(self) -> str:
        return self.value


#: Kinds that persist across the whole training run (vs. per-microbatch
#: tensors that are born and die within one iteration).
PERSISTENT_KINDS = frozenset(
    {TensorKind.WEIGHT, TensorKind.WEIGHT_GRAD, TensorKind.OPT_STATE}
)


@dataclass(frozen=True)
class TensorMeta:
    """Identity + size of one logical tensor.

    Attributes
    ----------
    tid:
        Dense integer id, unique within a :class:`TensorRegistry`.
    kind:
        One of the Fig. 5(a) tensor classes.
    layer:
        Layer index for W/dW/K/STASH; *boundary* index for
        ACTIVATION/ACT_GRAD (see :class:`TensorKind`).
    microbatch:
        Microbatch index for per-microbatch tensors; ``None`` for
        persistent state (W, dW, K).
    replica:
        Data-parallel replica index owning this tensor (0 when the
        tensor is not replicated, e.g. pipeline parallelism).
    size_bytes:
        Tensor payload size.
    """

    tid: int
    kind: TensorKind
    layer: int
    microbatch: int | None
    replica: int
    size_bytes: float

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ModelError(f"tensor {self.label}: negative size")
        persistent = self.kind in PERSISTENT_KINDS
        if persistent and self.microbatch is not None:
            raise ModelError(f"tensor {self.label}: persistent kinds have no microbatch")
        if not persistent and self.microbatch is None:
            raise ModelError(f"tensor {self.label}: per-microbatch kinds need one")

    # Cached: identity is immutable, and both are read on every memory
    # operation touching the tensor.
    @lazy_attr
    def persistent(self) -> bool:
        return self.kind in PERSISTENT_KINDS

    @lazy_attr
    def label(self) -> str:
        mb = "" if self.microbatch is None else f"/mb{self.microbatch}"
        rep = f"@r{self.replica}" if self.replica else ""
        return f"{self.kind.value}[L{self.layer}]{mb}{rep}"

    def __str__(self) -> str:
        return self.label
