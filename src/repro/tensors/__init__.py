"""Tensor substrate: metadata, lifetime state machine, and registry.

Tensors here are *metadata only* — a name, a kind from the paper's
Fig. 5(a) swap model (weights W, weight gradients dW, optimizer state K,
activations X/Y, activation gradients dX/dY, stashed tensors), a size,
and an identity tying it to a (layer, microbatch, replica).  The memory
manager tracks each tensor's lifetime through the state machine in
:mod:`repro.tensors.state`, exactly as the paper describes Harmony's
memory manager doing.
"""

from repro.tensors.tensor import TensorKind, TensorMeta
from repro.tensors.state import TensorState, TensorRuntime
from repro.tensors.registry import TensorRegistry

__all__ = [
    "TensorKind",
    "TensorMeta",
    "TensorState",
    "TensorRuntime",
    "TensorRegistry",
]
