"""Harmony reproduction: virtualized parallel training of large DNNs
on commodity multi-GPU servers.

Reproduces "Doing more with less: Training large DNN models on
commodity servers for the masses" (Li, Phanishayee, Murray, Kim —
HotOS '21).  The physical testbed is replaced by a deterministic
discrete-event simulator (see DESIGN.md for the substitution argument);
everything else — task decomposition, late binding, the four Harmony
optimizations, the per-GPU-virtualization baselines, and the analytical
swap-volume model — is implemented in full.

Quickstart::

    from repro import HarmonySession, HarmonyConfig
    from repro.models import zoo
    from repro.hardware import presets

    model = zoo.build("bert-large")
    server = presets.gtx1080ti_server(num_gpus=4)
    session = HarmonySession(model, server, HarmonyConfig("harmony-pp"))
    print(session.summary())
"""

from repro.core.config import HarmonyConfig, Parallelism
from repro.core.session import HarmonySession
from repro.core.report import compare_runs
from repro.schedulers.base import BatchConfig
from repro.schedulers.options import HarmonyOptions
from repro.errors import (
    AuditError,
    CapacityError,
    ConfigError,
    DeviceLostError,
    DrainedError,
    FaultError,
    JobSpecError,
    JournalError,
    ModelError,
    PoisonedSpecError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    SchedulingError,
    ServeError,
    SimulationError,
    SteadyStateError,
    TopologyError,
    WorkerError,
)
from repro.faults import (
    FaultPlan,
    FaultReport,
    ResiliencePolicy,
    mttf_loss_plan,
    run_resilient,
)
from repro.steady import SteadyMode, SteadyReport
from repro.supervisor import RetryPolicy, Supervisor, SupervisorReport
from repro.validate import (
    AuditReport,
    AuditViolation,
    ViolationKind,
    audit_resilient,
    audit_run,
    differential_check,
)

__version__ = "1.0.0"

__all__ = [
    "HarmonySession",
    "HarmonyConfig",
    "Parallelism",
    "BatchConfig",
    "HarmonyOptions",
    "compare_runs",
    "audit_run",
    "audit_resilient",
    "differential_check",
    "FaultPlan",
    "FaultReport",
    "ResiliencePolicy",
    "mttf_loss_plan",
    "run_resilient",
    "AuditReport",
    "AuditViolation",
    "ViolationKind",
    "ReproError",
    "ConfigError",
    "TopologyError",
    "ModelError",
    "CapacityError",
    "SchedulingError",
    "SimulationError",
    "SteadyStateError",
    "SteadyMode",
    "SteadyReport",
    "AuditError",
    "FaultError",
    "DeviceLostError",
    "WorkerError",
    "PoisonedSpecError",
    "JournalError",
    "DrainedError",
    "ServeError",
    "JobSpecError",
    "QuotaExceededError",
    "QueueFullError",
    "Supervisor",
    "RetryPolicy",
    "SupervisorReport",
    "__version__",
]
