"""Post-run audit subsystem: physical-consistency invariants and
differential scheduler cross-checks.

Every figure this repo reproduces is read off the simulator; this
package independently verifies that a finished run was *physically
possible* — no overlapping compute on one device, no link moving bytes
faster than its bandwidth, no device exceeding its memory capacity,
byte-conservation between the stats ledger and the trace, and
dependency order respected — and that all schedulers agree on the
conserved quantities of a fixed workload.

Entry points:

* :func:`audit_run` — audit one ``RunResult`` (also wired behind
  ``ExecOptions.audit`` and ``python -m repro audit``);
* :func:`differential_check` — cross-check every scheduler plus the
  analytic model on one workload.

Violations are structured :class:`AuditViolation` records, never bare
asserts; :meth:`AuditReport.raise_if_failed` converts them into an
:class:`~repro.errors.AuditError` when exception semantics are wanted.
"""

from repro.validate.audit import audit_resilient, audit_run
from repro.validate.differential import (
    DEFAULT_SCHEMES,
    DifferentialReport,
    SchemeQuantities,
    differential_check,
)
from repro.validate.invariants import (
    check_compute_exclusivity,
    check_conservation,
    check_dependency_order,
    check_event_sanity,
    check_link_feasibility,
    check_memory_profile,
    check_retry_ledger,
    check_samples,
    check_task_coverage,
)
from repro.validate.violations import AuditReport, AuditViolation, ViolationKind

__all__ = [
    "audit_run",
    "audit_resilient",
    "differential_check",
    "DifferentialReport",
    "SchemeQuantities",
    "DEFAULT_SCHEMES",
    "AuditReport",
    "AuditViolation",
    "ViolationKind",
    "check_compute_exclusivity",
    "check_conservation",
    "check_dependency_order",
    "check_event_sanity",
    "check_link_feasibility",
    "check_memory_profile",
    "check_retry_ledger",
    "check_samples",
    "check_task_coverage",
]
