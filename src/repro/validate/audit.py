"""Post-run audit: run every physical-consistency invariant.

Usage, after any simulation::

    from repro.validate import audit_run

    report = audit_run(result, topology, plan)
    report.raise_if_failed()          # or render(report.table())

The executor runs this automatically when ``ExecOptions.audit`` is set,
and the CLI exposes it as ``python -m repro audit``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.topology import Topology
from repro.sim.plan import Plan
from repro.sim.result import RunResult
from repro.validate.invariants import (
    _BYTE_TOL,
    _TIME_TOL,
    _close,
    check_compute_events,
    check_compute_exclusivity,
    check_conservation,
    check_dependency_order,
    check_event_sanity,
    check_link_feasibility,
    check_memory_profile,
    check_retry_ledger,
    check_samples,
    check_task_coverage,
)
from repro.validate.violations import AuditReport, AuditViolation, ViolationKind

if TYPE_CHECKING:
    from repro.faults.report import FaultReport


def audit_run(
    result: RunResult,
    topology: Topology,
    plan: Plan,
    iterations: int = 1,
    partial: bool = False,
) -> AuditReport:
    """Audit one finished run against every physical invariant.

    ``iterations`` must match the ``ExecOptions.iterations`` the run
    used — a replayed plan legitimately traces each task that many
    times.

    ``partial`` audits a run a device loss aborted mid-flight: the
    conservation, exclusivity, ordering, and memory invariants must
    still hold on everything that *was* traced, but completeness checks
    (task coverage, sample counts) and link feasibility are skipped —
    in-flight transfers hold link reservations past the abort instant,
    so busy time legitimately exceeds the truncated makespan.

    Compressed periodic traces (steady-state fast-forward, see
    :mod:`repro.steady`) are audited on their expanded-on-demand view:
    every invariant below runs against the full logical event stream,
    bit-for-bit the one full simulation would have traced.  Expansion
    costs O(events x iterations) — auditing deliberately forgoes the
    fast-forward saving.
    """
    if result.trace.is_compressed:
        from dataclasses import replace

        result = replace(result, trace=result.trace.expanded())
    report = AuditReport(label=result.label)
    checks = [
        ("event_sanity", lambda: check_event_sanity(result, topology)),
        ("compute_exclusivity", lambda: check_compute_exclusivity(result)),
        ("memory_profile", lambda: check_memory_profile(result)),
        ("conservation", lambda: check_conservation(result)),
        ("retry_ledger", lambda: check_retry_ledger(result)),
        ("dependency_order", lambda: check_dependency_order(result, plan)),
    ]
    if not partial:
        checks += [
            ("link_feasibility", lambda: check_link_feasibility(result, topology)),
            ("task_coverage", lambda: check_task_coverage(result, plan, iterations)),
            ("samples", lambda: check_samples(result, plan, iterations)),
        ]
    for name, run_check in checks:
        report.checks.append(name)
        report.extend(run_check())
    return report


def audit_resilient(fault_report: "FaultReport") -> AuditReport:
    """Audit a resilient (fault-injected) run, segment by segment plus
    the cross-segment invariants a re-planning runner could break:

    * every segment passes :func:`audit_run` (aborted segments in
      ``partial`` mode);
    * compute exclusivity holds on the *merged* trace — segments shifted
      to global time must never overlap on one device, even across a
      re-plan onto a different topology;
    * the report's retried bytes equal the sum of its segments' retry
      ledgers;
    * the report's wall clock reconciles: segment durations plus
      checkpoint, recovery, and grace-window stalls add up to the
      total makespan;
    * credited samples never exceed what completed segments produced
      (equal when no iteration was rolled back).
    """
    label = (
        fault_report.segments[0].result.label
        if fault_report.segments
        else "resilient"
    )
    report = AuditReport(label=f"{label}+faults")
    for segment in fault_report.segments:
        sub = audit_run(
            segment.result, segment.topology, segment.plan,
            iterations=1, partial=segment.aborted,
        )
        for name in sub.checks:
            check = f"{name}[segment {segment.index}]"
            report.checks.append(check)
        report.extend(sub.violations)

    report.checks.append("cross_segment_exclusivity")
    merged = [
        event._replace(
            start=event.start + segment.started_at,
            end=event.end + segment.started_at,
        )
        for segment in fault_report.segments
        for event in segment.result.trace.events
        if event.category in ("compute", "allreduce")
    ]
    report.extend(check_compute_events(merged))

    report.checks.append("fault_accounting")
    report.extend(_check_fault_accounting(fault_report))
    return report


def _check_fault_accounting(fr: "FaultReport") -> list[AuditViolation]:
    violations: list[AuditViolation] = []
    segment_retries = sum(
        s.result.stats.retried_volume() for s in fr.segments
    )
    if not _close(fr.retried_bytes, segment_retries, _BYTE_TOL):
        violations.append(
            AuditViolation(
                ViolationKind.RETRY_CONSERVATION,
                f"fault report claims {fr.retried_bytes:.6g} B retried but "
                f"segment ledgers sum to {segment_retries:.6g} B",
                subject="retried_bytes",
                expected=segment_retries,
                actual=fr.retried_bytes,
            )
        )

    accounted = (
        sum(s.duration for s in fr.segments)
        + fr.checkpoint_seconds
        + fr.recovery_seconds
        + fr.stall_seconds
    )
    if not _close(fr.total_makespan, accounted, _TIME_TOL):
        violations.append(
            AuditViolation(
                ViolationKind.FAULT_ACCOUNTING,
                f"total makespan {fr.total_makespan:.6g}s != segments + "
                f"checkpoints + recoveries + stalls ({accounted:.6g}s)",
                subject="total_makespan",
                expected=accounted,
                actual=fr.total_makespan,
            )
        )

    produced = sum(s.result.samples for s in fr.segments if s.completed)
    credited_ok = (
        fr.samples == produced
        if fr.iterations_redone == 0
        else fr.samples <= produced
    )
    if not credited_ok:
        violations.append(
            AuditViolation(
                ViolationKind.FAULT_ACCOUNTING,
                f"{fr.samples} credited samples vs {produced} produced by "
                f"completed segments ({fr.iterations_redone} redone)",
                subject="samples",
                expected=float(produced),
                actual=float(fr.samples),
            )
        )
    return violations
