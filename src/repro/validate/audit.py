"""Post-run audit: run every physical-consistency invariant.

Usage, after any simulation::

    from repro.validate import audit_run

    report = audit_run(result, topology, plan)
    report.raise_if_failed()          # or render(report.table())

The executor runs this automatically when ``ExecOptions.audit`` is set,
and the CLI exposes it as ``python -m repro audit``.
"""

from __future__ import annotations

from repro.hardware.topology import Topology
from repro.sim.plan import Plan
from repro.sim.result import RunResult
from repro.validate.invariants import (
    check_compute_exclusivity,
    check_conservation,
    check_dependency_order,
    check_event_sanity,
    check_link_feasibility,
    check_memory_profile,
    check_samples,
    check_task_coverage,
)
from repro.validate.violations import AuditReport


def audit_run(
    result: RunResult,
    topology: Topology,
    plan: Plan,
    iterations: int = 1,
) -> AuditReport:
    """Audit one finished run against every physical invariant.

    ``iterations`` must match the ``ExecOptions.iterations`` the run
    used — a replayed plan legitimately traces each task that many
    times.
    """
    report = AuditReport(label=result.label)
    checks = [
        ("event_sanity", lambda: check_event_sanity(result, topology)),
        ("compute_exclusivity", lambda: check_compute_exclusivity(result)),
        ("link_feasibility", lambda: check_link_feasibility(result, topology)),
        ("memory_profile", lambda: check_memory_profile(result)),
        ("conservation", lambda: check_conservation(result)),
        ("dependency_order", lambda: check_dependency_order(result, plan)),
        ("task_coverage", lambda: check_task_coverage(result, plan, iterations)),
        ("samples", lambda: check_samples(result, plan, iterations)),
    ]
    for name, run_check in checks:
        report.checks.append(name)
        report.extend(run_check())
    return report
