"""Differential cross-checks: run one workload through every scheduler
and the analytic model, and assert agreement on conserved quantities.

The schedulers disagree on *how* an iteration runs (placement, order,
swap policy), but for a fixed global workload they must agree on
*what* ran:

* total samples processed — the global mini-batch is scheme-invariant;
* total forward+backward compute work — the arithmetic of the model
  does not depend on the schedule (updates are excluded: data
  parallelism legitimately repeats the update once per replica);
* swap-volume bounds — Harmony's schedules move **at most** as many
  host-crossing bytes as their baselines (the paper's headline claim),
  and no scheme moves more weight bytes than the §3 idealized
  accounting ``(4m+2) N |W|`` charges the baseline.

Each scheme is handed the same *global* batch: data-parallel schemes
split the microbatches across replicas, so ``total_microbatches`` must
be divisible by the GPU count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytic.volumes import weight_volume_baseline_dp
from repro.errors import ConfigError
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.models.phases import Phase
from repro.tensors.tensor import TensorKind
from repro.util.tables import Table
from repro.validate.violations import AuditViolation, ViolationKind

def _default_schemes() -> tuple[str, ...]:
    from repro.schedulers import scheme_names

    return tuple(s for s in scheme_names() if s != "harmony-tp")


#: The schedulers the cross-check exercises by default — the full
#: registry minus harmony-tp (excluded: sharded matmuls add collective
#: work with no baseline twin).  New registrations join automatically.
DEFAULT_SCHEMES = _default_schemes()

#: (harmony scheme, the baseline whose swap volume must dominate it).
#: The pipedream/dapple pairs hold because all three pipeline schemes
#: decompose into the same task set under the same no-reuse baseline
#: policy — only the order differs — while harmony-pp reuses residency.
_SWAP_BOUND_PAIRS = (
    ("harmony-dp", "dp-baseline"),
    ("harmony-pp", "pp-baseline"),
    ("harmony-pp", "dp-baseline"),
    ("harmony-pp", "pipedream-1f1b"),
    ("harmony-pp", "dapple"),
)

#: Schemes that replicate state across every GPU (per-replica batch =
#: global batch / N); the rest see the global batch directly.
_DATA_PARALLEL = ("dp-baseline", "harmony-dp")

_REL_TOL = 1e-6


@dataclass(frozen=True)
class SchemeQuantities:
    """The conserved quantities one scheme's run produced."""

    scheme: str
    samples: int
    fwd_bwd_flops: float
    swap_out: float
    host_traffic: float
    p2p: float
    weight_host_bytes: float
    makespan: float

    def as_row(self) -> list[object]:
        return [
            self.scheme,
            self.samples,
            f"{self.fwd_bwd_flops:.4g}",
            f"{self.swap_out:.4g}",
            f"{self.host_traffic:.4g}",
            f"{self.p2p:.4g}",
            f"{self.weight_host_bytes:.4g}",
            f"{self.makespan:.4g}",
        ]


@dataclass
class DifferentialReport:
    """Outcome of the cross-scheduler differential check."""

    workload: str
    quantities: list[SchemeQuantities] = field(default_factory=list)
    violations: list[AuditViolation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def scheme(self, name: str) -> SchemeQuantities:
        for q in self.quantities:
            if q.scheme == name:
                return q
        raise KeyError(name)

    def table(self) -> Table:
        table = Table(
            ["scheme", "samples", "fwd+bwd flops", "swap-out B",
             "host B", "p2p B", "W host B", "makespan s"],
            title=(
                f"differential check, {self.workload}: "
                + ("AGREE" if self.passed else f"{len(self.violations)} violation(s)")
            ),
        )
        for q in self.quantities:
            table.add_row(q.as_row())
        return table

    def render(self) -> str:
        lines = [self.table().render()]
        for violation in self.violations:
            lines.append(f"  !! {violation.kind}: {violation.message}")
        return "\n".join(lines)


def differential_check(
    model: ModelGraph,
    topology: Topology,
    total_microbatches: int,
    microbatch_size: int = 1,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    audit: bool = False,
) -> DifferentialReport:
    """Run ``model`` on ``topology`` under every scheme and cross-check
    the conserved quantities.

    ``total_microbatches`` is the global batch; data-parallel schemes
    receive ``total_microbatches / num_gpus`` per replica, so it must be
    divisible by the GPU count.  With ``audit=True`` each run is also
    individually audited (violations surface as :class:`AuditError`).
    """
    from repro.core.config import HarmonyConfig
    from repro.core.session import HarmonySession
    from repro.schedulers.base import BatchConfig

    num_gpus = len(topology.gpus())
    report = DifferentialReport(
        workload=(
            f"{model.name} x {total_microbatches} microbatches "
            f"of {microbatch_size} on {num_gpus} GPU(s)"
        )
    )

    plans = {}
    for scheme in schemes:
        if scheme in _DATA_PARALLEL:
            if total_microbatches % num_gpus:
                raise ConfigError(
                    f"total_microbatches={total_microbatches} must be divisible "
                    f"by num_gpus={num_gpus} for data-parallel schemes"
                )
            batch = BatchConfig(microbatch_size, total_microbatches // num_gpus)
        else:
            batch = BatchConfig(microbatch_size, total_microbatches)
        session = HarmonySession(
            model, topology, HarmonyConfig(scheme, batch=batch, audit=audit)
        )
        plan = session.plan()
        result = session.run()
        plans[scheme] = plan
        report.quantities.append(
            SchemeQuantities(
                scheme=scheme,
                samples=result.samples,
                fwd_bwd_flops=sum(
                    t.flops
                    for t in plan.graph.compute_tasks()
                    if t.phase in (Phase.FORWARD, Phase.BACKWARD)
                ),
                swap_out=result.swap_out_volume,
                host_traffic=result.host_traffic,
                p2p=result.stats.p2p_volume(),
                weight_host_bytes=result.stats.kind_swap_volume(TensorKind.WEIGHT),
                makespan=result.makespan,
            )
        )

    _check_samples(report, total_microbatches * microbatch_size)
    _check_compute_work(report)
    _check_swap_bounds(report)
    _check_analytic_bounds(report, model, total_microbatches, num_gpus)
    return report


def _check_samples(report: DifferentialReport, expected: int) -> None:
    for q in report.quantities:
        if q.samples != expected:
            report.violations.append(
                AuditViolation(
                    ViolationKind.DIFF_SAMPLES,
                    f"{q.scheme} processed {q.samples} samples; the global "
                    f"batch is {expected}",
                    subject=q.scheme,
                    expected=float(expected),
                    actual=float(q.samples),
                )
            )


def _check_compute_work(report: DifferentialReport) -> None:
    if not report.quantities:
        return
    reference = report.quantities[0]
    for q in report.quantities[1:]:
        bound = _REL_TOL * max(abs(q.fwd_bwd_flops), abs(reference.fwd_bwd_flops))
        if abs(q.fwd_bwd_flops - reference.fwd_bwd_flops) > bound:
            report.violations.append(
                AuditViolation(
                    ViolationKind.DIFF_COMPUTE_WORK,
                    f"{q.scheme} schedules {q.fwd_bwd_flops:.6g} fwd+bwd FLOPs "
                    f"but {reference.scheme} schedules "
                    f"{reference.fwd_bwd_flops:.6g}",
                    subject=q.scheme,
                    expected=reference.fwd_bwd_flops,
                    actual=q.fwd_bwd_flops,
                )
            )


def _check_swap_bounds(report: DifferentialReport) -> None:
    present = {q.scheme for q in report.quantities}
    for harmony, baseline in _SWAP_BOUND_PAIRS:
        if harmony not in present or baseline not in present:
            continue
        h, b = report.scheme(harmony), report.scheme(baseline)
        for attr in ("swap_out", "host_traffic"):
            hv, bv = getattr(h, attr), getattr(b, attr)
            if hv > bv * (1 + _REL_TOL) + 1.0:
                report.violations.append(
                    AuditViolation(
                        ViolationKind.DIFF_SWAP_BOUND,
                        f"{harmony} moves {hv:.6g} B of {attr} vs "
                        f"{baseline}'s {bv:.6g} B — Harmony must not swap "
                        f"more than its baseline",
                        subject=harmony,
                        expected=bv,
                        actual=hv,
                    )
                )


def _check_analytic_bounds(
    report: DifferentialReport, model: ModelGraph, total_microbatches: int,
    num_gpus: int,
) -> None:
    """No scheme's host-crossing weight traffic exceeds the §3 idealized
    baseline accounting for its replication factor: ``(4m+2) N |W|``
    charges one full in+out round trip per weight use, the most any
    swapper can move."""
    for q in report.quantities:
        if q.scheme in _DATA_PARALLEL:
            n = num_gpus
            m = total_microbatches // num_gpus
        else:
            n = 1
            m = total_microbatches
        ceiling = weight_volume_baseline_dp(model, m, n)
        if q.weight_host_bytes > ceiling * (1 + _REL_TOL) + 1.0:
            report.violations.append(
                AuditViolation(
                    ViolationKind.DIFF_ANALYTIC_BOUND,
                    f"{q.scheme} moved {q.weight_host_bytes:.6g} B of weights "
                    f"over the host link; the idealized no-reuse accounting "
                    f"bounds it at {ceiling:.6g} B",
                    subject=q.scheme,
                    expected=ceiling,
                    actual=q.weight_host_bytes,
                )
            )
