"""Physical-consistency invariants over a finished run.

Each checker takes the post-run artifacts (:class:`RunResult`,
:class:`Topology`, :class:`Plan`) and returns a list of
:class:`AuditViolation` records — empty when the invariant holds.  The
checks are deliberately *external*: they recompute each quantity from
an independent source (trace vs. stats ledger, trace vs. task graph,
routed bytes vs. link busy time) so an executor bug cannot hide by
corrupting both sides the same way.

Tolerances: simulated times are sums of float arithmetic, so every
comparison uses a relative-plus-absolute slack (``_TIME_TOL`` seconds,
``_BYTE_TOL`` bytes) rather than exact equality.
"""

from __future__ import annotations

from collections import defaultdict

from repro.hardware.topology import Topology
from repro.memory.stats import Direction
from repro.sim.plan import Plan
from repro.sim.result import RunResult
from repro.sim.trace import CATEGORIES, TraceEvent
from repro.tasks.task import TaskKind
from repro.validate.violations import AuditViolation, ViolationKind

_TIME_TOL = 1e-9       # seconds of float slack on event comparisons
_BYTE_TOL = 1.0        # bytes of slack on volume reconciliation
_REL_TOL = 1e-6        # relative slack for large quantities


def _close(a: float, b: float, abs_tol: float) -> bool:
    return abs(a - b) <= abs_tol + _REL_TOL * max(abs(a), abs(b))


def _leq(a: float, b: float, abs_tol: float) -> bool:
    return a <= b + abs_tol + _REL_TOL * max(abs(a), abs(b))


# -- (0) event sanity ---------------------------------------------------------


def check_event_sanity(result: RunResult, topology: Topology) -> list[AuditViolation]:
    """Every trace event is well-formed: a known category on a known
    device, non-negative duration and bytes, inside [0, makespan]."""
    violations: list[AuditViolation] = []
    known = set(topology.devices)
    for event in result.trace.events:
        problems = []
        if event.category not in CATEGORIES:
            problems.append(f"unknown category {event.category!r}")
        if event.device not in known:
            problems.append(f"unknown device {event.device!r}")
        if event.end < event.start - _TIME_TOL:
            problems.append(f"negative duration ({event.start} -> {event.end})")
        if event.start < -_TIME_TOL:
            problems.append(f"starts before t=0 ({event.start})")
        if not _leq(event.end, result.makespan, _TIME_TOL):
            problems.append(
                f"ends after the makespan ({event.end} > {result.makespan})"
            )
        if event.nbytes < 0:
            problems.append(f"negative bytes ({event.nbytes})")
        for problem in problems:
            violations.append(
                AuditViolation(
                    ViolationKind.EVENT_MALFORMED,
                    f"event {event.label!r} on {event.device}: {problem}",
                    device=event.device,
                    subject=event.label,
                )
            )
    return violations


# -- (a) compute exclusivity --------------------------------------------------


def check_compute_exclusivity(result: RunResult) -> list[AuditViolation]:
    """No two compute/allreduce events overlap on one device.

    Swap and p2p events legitimately overlap compute (prefetch, peer
    fetches), but a device has one compute stream: overlapping compute
    means the simulated schedule was physically impossible.
    """
    return check_compute_events(result.trace.events)


def check_compute_events(events: list[TraceEvent]) -> list[AuditViolation]:
    """Compute-exclusivity over a bare event list — also applied to the
    merged (globally-shifted) trace of a resilient run, where events
    from different segments must still never overlap on one device."""
    violations: list[AuditViolation] = []
    per_device: dict[str, list[TraceEvent]] = defaultdict(list)
    for event in events:
        if event.category in ("compute", "allreduce"):
            per_device[event.device].append(event)
    for device, events in sorted(per_device.items()):
        events.sort(key=lambda e: (e.start, e.end))
        for prev, cur in zip(events, events[1:]):
            if cur.start < prev.end - _TIME_TOL:
                violations.append(
                    AuditViolation(
                        ViolationKind.COMPUTE_OVERLAP,
                        f"{device}: {cur.label!r} starts at {cur.start:.6g} "
                        f"before {prev.label!r} ends at {prev.end:.6g}",
                        device=device,
                        subject=cur.label,
                        expected=prev.end,
                        actual=cur.start,
                    )
                )
    return violations


# -- (b) link occupancy -------------------------------------------------------


def check_link_feasibility(
    result: RunResult, topology: Topology
) -> list[AuditViolation]:
    """Link occupancy is physically possible.

    Two independent bounds per link:

    * busy time never exceeds the makespan (a serially-shared wire
      cannot be occupied longer than the run lasted);
    * the swap bytes routed over the link imply at least
      ``bytes / bandwidth`` of busy time — traffic cannot move faster
      than the wire.  Swap-out traffic always rides the device→host
      route; swap-in is charged the same route on single-host
      topologies (multi-host swap-ins may arrive from a remote server,
      so only the lower-bound direction is charged there).  This is how
      host-uplink oversubscription is audited: all GPUs behind one
      uplink charge the same link, and the summed bytes must fit in its
      busy time.
    """
    violations: list[AuditViolation] = []
    for link, busy in sorted(result.link_busy.items()):
        if not _leq(busy, result.makespan, _TIME_TOL):
            violations.append(
                AuditViolation(
                    ViolationKind.LINK_BUSY_EXCEEDS_MAKESPAN,
                    f"link {link}: busy {busy:.6g}s exceeds makespan "
                    f"{result.makespan:.6g}s",
                    subject=link,
                    expected=result.makespan,
                    actual=busy,
                )
            )

    single_host = len(topology.hosts()) == 1
    routed_bytes: dict[str, float] = defaultdict(float)
    for gpu in topology.gpus():
        out_bytes = result.stats.swap_out_volume(gpu.name)
        in_bytes = result.stats.swap_in_volume(gpu.name) if single_host else 0.0
        if out_bytes + in_bytes <= 0:
            continue
        for link in topology.host_route(gpu.name).links:
            routed_bytes[link.name] += out_bytes + in_bytes
    for link_name, nbytes in sorted(routed_bytes.items()):
        spec = topology.links[link_name]
        implied = nbytes / spec.bandwidth_bytes_per_sec
        busy = result.link_busy.get(link_name, 0.0)
        if not _leq(implied, busy, _TIME_TOL):
            violations.append(
                AuditViolation(
                    ViolationKind.LINK_BANDWIDTH_EXCEEDED,
                    f"link {link_name}: {nbytes:.6g} B routed implies "
                    f">= {implied:.6g}s of occupancy but the link was busy "
                    f"only {busy:.6g}s",
                    subject=link_name,
                    expected=implied,
                    actual=busy,
                )
            )
    return violations


# -- (c) memory profile -------------------------------------------------------


def check_memory_profile(result: RunResult) -> list[AuditViolation]:
    """Per-device memory usage stays within capacity and reconciles
    with the reported peak.

    The branches are mutually exclusive per device so mutation tests
    can assert one exact violation kind: an over-capacity sample
    reports ``MEMORY_OVER_CAPACITY``; a within-capacity profile whose
    maximum disagrees with ``DeviceReport.peak_used`` reports
    ``MEMORY_PEAK_MISMATCH``.
    """
    violations: list[AuditViolation] = []
    for device, report in sorted(result.devices.items()):
        profile = result.memory_profile.get(device, [])
        profile_max = max((used for _, used in profile), default=0.0)
        over = [
            (t, used)
            for t, used in profile
            if not _leq(used, report.capacity, _BYTE_TOL)
        ]
        if not _leq(report.peak_used, report.capacity, _BYTE_TOL):
            violations.append(
                AuditViolation(
                    ViolationKind.MEMORY_OVER_CAPACITY,
                    f"{device}: peak_used {report.peak_used:.6g} B exceeds "
                    f"capacity {report.capacity:.6g} B",
                    device=device,
                    expected=report.capacity,
                    actual=report.peak_used,
                )
            )
        elif over:
            t, used = over[0]
            violations.append(
                AuditViolation(
                    ViolationKind.MEMORY_OVER_CAPACITY,
                    f"{device}: {used:.6g} B resident at t={t:.6g} exceeds "
                    f"capacity {report.capacity:.6g} B "
                    f"({len(over)} sample(s) over)",
                    device=device,
                    expected=report.capacity,
                    actual=used,
                )
            )
        elif profile and not _leq(profile_max, report.peak_used, _BYTE_TOL):
            violations.append(
                AuditViolation(
                    ViolationKind.MEMORY_PEAK_MISMATCH,
                    f"{device}: profile reaches {profile_max:.6g} B but "
                    f"peak_used reports {report.peak_used:.6g} B",
                    device=device,
                    expected=report.peak_used,
                    actual=profile_max,
                )
            )
    return violations


# -- (d) conservation ---------------------------------------------------------


def check_conservation(result: RunResult) -> list[AuditViolation]:
    """Every byte the stats ledger claims moved appears in the trace,
    and the per-device :class:`DeviceReport` counters reconcile with
    the ledger.

    * per device: swap-in/swap-out ledger volume == byte sum of the
      device's ``swap_in``/``swap_out`` trace events;
    * per device: p2p-in ledger volume == byte sum of ``p2p`` +
      ``allreduce`` trace events (collectives ride device links and are
      accounted receiver-side);
    * globally: p2p-out ledger volume == byte sum of ``p2p`` events
      (each p2p move traced once, on the receiver);
    * ``DeviceReport.swap_in_bytes`` / ``swap_out_bytes`` equal the
      ledger.
    """
    violations: list[AuditViolation] = []
    trace_bytes: dict[tuple[str, str], float] = defaultdict(float)
    for event in result.trace.events:
        trace_bytes[(event.device, event.category)] += event.nbytes

    stats_devices = set(result.stats.devices())
    trace_devices = {d for d, _ in trace_bytes}
    for device in sorted(stats_devices | trace_devices):
        by_direction = result.stats.direction_volumes(device)
        pairs = [
            (Direction.SWAP_IN, trace_bytes[(device, "swap_in")], "swap-in"),
            (Direction.SWAP_OUT, trace_bytes[(device, "swap_out")], "swap-out"),
            (
                Direction.P2P_IN,
                trace_bytes[(device, "p2p")] + trace_bytes[(device, "allreduce")],
                "p2p+allreduce",
            ),
        ]
        for direction, traced, label in pairs:
            ledger = by_direction[direction]
            if not _close(ledger, traced, _BYTE_TOL):
                violations.append(
                    AuditViolation(
                        ViolationKind.SWAP_CONSERVATION,
                        f"{device}: stats ledger records {ledger:.6g} B of "
                        f"{label} but trace events sum to {traced:.6g} B",
                        device=device,
                        subject=label,
                        expected=ledger,
                        actual=traced,
                    )
                )

    p2p_out = result.stats.volume(None, None, Direction.P2P_OUT)
    p2p_traced = sum(v for (_, cat), v in trace_bytes.items() if cat == "p2p")
    if not _close(p2p_out, p2p_traced, _BYTE_TOL):
        violations.append(
            AuditViolation(
                ViolationKind.SWAP_CONSERVATION,
                f"global p2p: ledger sent {p2p_out:.6g} B but trace records "
                f"{p2p_traced:.6g} B received",
                subject="p2p-out",
                expected=p2p_out,
                actual=p2p_traced,
            )
        )

    for device, report in sorted(result.devices.items()):
        for attr, direction in (
            ("swap_in_bytes", Direction.SWAP_IN),
            ("swap_out_bytes", Direction.SWAP_OUT),
        ):
            reported = getattr(report, attr)
            ledger = result.stats.volume(device, None, direction)
            if not _close(reported, ledger, _BYTE_TOL):
                violations.append(
                    AuditViolation(
                        ViolationKind.DEVICE_REPORT_MISMATCH,
                        f"{device}: DeviceReport.{attr} = {reported:.6g} B but "
                        f"the stats ledger records {ledger:.6g} B",
                        device=device,
                        subject=attr,
                        expected=ledger,
                        actual=reported,
                    )
                )
    return violations


# -- (d') retry ledger --------------------------------------------------------


def check_retry_ledger(result: RunResult) -> list[AuditViolation]:
    """Retried bytes are a subset of the volume ledger.

    A failed transfer attempt occupies the wire, so its bytes land in
    *both* ledgers (see :meth:`SwapStats.record_retry`); per device and
    direction the retry ledger can therefore never exceed the volume
    ledger.  This is what keeps trace<->ledger conservation exact under
    fault injection."""
    violations: list[AuditViolation] = []
    for device in result.stats.devices():
        for direction in Direction:
            retried = result.stats.retried_volume(device, None, direction)
            if retried <= 0:
                continue
            total = result.stats.volume(device, None, direction)
            if not _leq(retried, total, _BYTE_TOL):
                violations.append(
                    AuditViolation(
                        ViolationKind.RETRY_CONSERVATION,
                        f"{device}: {retried:.6g} B of {direction.value} "
                        f"retries exceed the {total:.6g} B volume ledger",
                        device=device,
                        subject=direction.value,
                        expected=total,
                        actual=retried,
                    )
                )
    return violations


# -- (e) dependency order -----------------------------------------------------


def _events_by_label(result: RunResult) -> dict[str, list[TraceEvent]]:
    grouped: dict[str, list[TraceEvent]] = defaultdict(list)
    for event in result.trace.events:
        if event.category in ("compute", "allreduce"):
            grouped[event.label].append(event)
    for events in grouped.values():
        events.sort(key=lambda e: (e.start, e.end))
    return grouped


def check_dependency_order(result: RunResult, plan: Plan) -> list[AuditViolation]:
    """The trace respects the task graph: occurrence ``i`` of a task
    starts no earlier than occurrence ``i`` of each dependency ends
    (iteration ``i`` of a replayed plan must re-satisfy every edge).

    Allreduce tasks are traced once per participant; their occurrence
    ``i`` is taken as the ``i``-th synchronized window (participants
    share start/end), so the per-participant copies collapse.
    """
    violations: list[AuditViolation] = []
    grouped = _events_by_label(result)

    def occurrences(task) -> list[TraceEvent]:
        events = grouped.get(task.label, [])
        if task.kind is TaskKind.ALLREDUCE and task.participants:
            # One traced copy per participant per iteration.
            step = len(task.participants)
            return [events[i] for i in range(0, len(events), step)]
        return events

    for task in plan.graph:
        task_events = occurrences(task)
        for dep_tid in task.all_deps:
            dep = plan.graph.task(dep_tid)
            dep_events = occurrences(dep)
            for i, event in enumerate(task_events):
                if i >= len(dep_events):
                    break  # dependency untraced (zero-duration); skip
                if event.start < dep_events[i].end - _TIME_TOL:
                    violations.append(
                        AuditViolation(
                            ViolationKind.DEPENDENCY_ORDER,
                            f"{task.label!r} (iteration {i}) starts at "
                            f"{event.start:.6g} before its dependency "
                            f"{dep.label!r} ends at {dep_events[i].end:.6g}",
                            device=event.device,
                            subject=task.label,
                            expected=dep_events[i].end,
                            actual=event.start,
                        )
                    )
    return violations


# -- task coverage and samples ------------------------------------------------


def check_task_coverage(
    result: RunResult, plan: Plan, iterations: int = 1
) -> list[AuditViolation]:
    """Every task in the plan ran the expected number of times: compute
    tasks once per iteration, allreduce tasks once per participant per
    iteration (zero-duration compute is still traced; zero-duration
    collectives are tolerated as absent)."""
    violations: list[AuditViolation] = []
    grouped = _events_by_label(result)
    for task in plan.graph:
        count = len(grouped.get(task.label, []))
        if task.kind is TaskKind.COMPUTE:
            expected = iterations
            tolerate_zero = False
        else:
            expected = iterations * len(task.participants)
            tolerate_zero = True  # sub-latency collectives are untraced
        if count != expected and not (tolerate_zero and count == 0):
            violations.append(
                AuditViolation(
                    ViolationKind.TASK_COUNT,
                    f"{task.label!r} appears {count} time(s) in the trace, "
                    f"expected {expected}",
                    device=task.device,
                    subject=task.label,
                    expected=float(expected),
                    actual=float(count),
                )
            )
    return violations


def check_samples(
    result: RunResult, plan: Plan, iterations: int = 1
) -> list[AuditViolation]:
    """The reported sample count equals the plan's per-iteration sample
    total times the number of iterations."""
    per_iteration = sum(t.samples for t in plan.graph.compute_tasks())
    if per_iteration == 0:
        # Plans without per-task sample counts report the static
        # per-iteration figure once, regardless of replay count.
        expected = plan.samples_per_iteration
    else:
        expected = per_iteration * iterations
    if result.samples != expected:
        return [
            AuditViolation(
                ViolationKind.SAMPLES_MISMATCH,
                f"run reports {result.samples} samples, plan implies "
                f"{expected} ({per_iteration}/iteration x {iterations})",
                expected=float(expected),
                actual=float(result.samples),
            )
        ]
    return []
