"""Structured audit findings.

The audit layer never asserts: every failed invariant becomes an
:class:`AuditViolation` record carrying the check kind, the device or
task it concerns, and the expected/actual quantities, so the report
layer can render a table and tests can assert on exact kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AuditError
from repro.util.tables import Table


class ViolationKind(enum.Enum):
    """What physical invariant a violation breaks."""

    #: Two compute/allreduce events overlap on one device.
    COMPUTE_OVERLAP = "compute_overlap"
    #: A link's recorded busy time exceeds the run's makespan.
    LINK_BUSY_EXCEEDS_MAKESPAN = "link_busy_exceeds_makespan"
    #: Bytes routed over a link imply more transfer time than the link
    #: was busy (traffic faster than the wire allows).
    LINK_BANDWIDTH_EXCEEDED = "link_bandwidth_exceeded"
    #: A device's memory usage sample exceeds its capacity.
    MEMORY_OVER_CAPACITY = "memory_over_capacity"
    #: Memory profile disagrees with the reported peak usage.
    MEMORY_PEAK_MISMATCH = "memory_peak_mismatch"
    #: SwapStats ledger disagrees with the byte sum of trace events.
    SWAP_CONSERVATION = "swap_conservation"
    #: DeviceReport swap counters disagree with the SwapStats ledger.
    DEVICE_REPORT_MISMATCH = "device_report_mismatch"
    #: A task ran before one of its dependencies finished.
    DEPENDENCY_ORDER = "dependency_order"
    #: A trace event is malformed (negative duration, outside the run
    #: window, unknown device, negative bytes, unknown category).
    EVENT_MALFORMED = "event_malformed"
    #: A task appears in the trace the wrong number of times.
    TASK_COUNT = "task_count"
    #: Reported sample count disagrees with the plan.
    SAMPLES_MISMATCH = "samples_mismatch"
    #: Retry ledger inconsistent: retried bytes not a subset of the
    #: volume ledger, or the fault report disagrees with the segments.
    RETRY_CONSERVATION = "retry_conservation"
    #: Fault-report accounting inconsistent with its segments (wall
    #: clock, credited samples).
    FAULT_ACCOUNTING = "fault_accounting"
    #: Differential check: schedulers disagree on total samples.
    DIFF_SAMPLES = "diff_samples"
    #: Differential check: schedulers disagree on total compute work.
    DIFF_COMPUTE_WORK = "diff_compute_work"
    #: Differential check: Harmony swap volume exceeds its baseline.
    DIFF_SWAP_BOUND = "diff_swap_bound"
    #: Differential check: simulated volume exceeds the analytic bound.
    DIFF_ANALYTIC_BOUND = "diff_analytic_bound"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AuditViolation:
    """One failed invariant, with enough context to act on it."""

    kind: ViolationKind
    message: str
    device: str | None = None
    subject: str | None = None  # task label, link name, tensor, scheme...
    expected: float | None = None
    actual: float | None = None

    def as_row(self) -> list[str]:
        def fmt(x: float | None) -> str:
            return "" if x is None else f"{x:.6g}"

        return [
            str(self.kind),
            self.device or "",
            self.subject or "",
            fmt(self.expected),
            fmt(self.actual),
            self.message,
        ]


@dataclass
class AuditReport:
    """Outcome of auditing one run: which checks ran, what they found."""

    label: str
    checks: list[str] = field(default_factory=list)
    violations: list[AuditViolation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def kinds(self) -> set[ViolationKind]:
        return {v.kind for v in self.violations}

    def by_kind(self, kind: ViolationKind) -> list[AuditViolation]:
        return [v for v in self.violations if v.kind is kind]

    def extend(self, violations: list[AuditViolation]) -> None:
        self.violations.extend(violations)

    def raise_if_failed(self) -> None:
        if self.violations:
            raise AuditError(self.violations)

    def table(self) -> Table:
        table = Table(
            ["kind", "device", "subject", "expected", "actual", "message"],
            title=(
                f"audit {self.label!r}: {len(self.checks)} checks, "
                + ("PASS" if self.passed else f"{len(self.violations)} violation(s)")
            ),
        )
        for violation in self.violations:
            table.add_row(violation.as_row())
        return table

    def render(self) -> str:
        if self.passed:
            return (
                f"audit {self.label!r}: PASS "
                f"({len(self.checks)} checks: {', '.join(self.checks)})"
            )
        return self.table().render()
