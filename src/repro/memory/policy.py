"""Memory-management policy knobs.

The paper's baseline ("per-GPU memory virtualization") and Harmony's
memory manager differ in mechanism, not just schedule; this dataclass
names each mechanism so schedulers and ablations can toggle them
independently:

* ``track_clean`` — Harmony drops tensors whose host copy is current
  (no write-back); the baseline swapper writes back on every eviction,
  which is what makes its weight traffic ``(4m+2)N|W|`` rather than
  ``(2m+2)N|W|`` in the paper's analytical model.
* ``p2p_enabled`` — Harmony moves tensors directly between GPUs over
  peer links; the baseline can only swap device<->host (paper §2,
  inefficiency #3 "Only CPU-GPU Swaps").
* ``eviction`` — victim selection order; LRU matches the reference
  swappers, ``largest_first`` is an ablation alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Victim-selection orders:
#: * ``lru`` — least-recently-used first (the reference swappers);
#: * ``largest_first`` — biggest tensors first (fewest transfers);
#: * ``activations_first`` — per-microbatch tensors (activations,
#:   stashes, gradients-in-flight) before persistent state, LRU within
#:   each class — the vDNN design point of preferentially offloading
#:   feature maps so weights stay hot.
_EVICTION_ORDERS = ("lru", "largest_first", "activations_first")


@dataclass(frozen=True)
class MemoryPolicy:
    track_clean: bool = True
    p2p_enabled: bool = True
    eviction: str = "lru"
    keep_resident: bool = True
    #: Allow evictions to target a peer GPU's spare memory over p2p links
    #: (paper §2 inefficiency #3 notes baselines "can only swap to host").
    #: Off by default: profitable only when some GPU has slack, which the
    #: dedicated ablation benchmark sets up explicitly.
    swap_to_peer: bool = False
    #: Allow swap-outs to target a *neighbor server's* host DRAM when
    #: the local host is full — the rack-scale extension of the paper's
    #: "use all the memory you have" stance.  The manager picks the
    #: nearest host with room (``Topology.hosts_by_distance``); the
    #: swap then rides the inter-server network, and the later swap-in
    #: fetches from wherever the copy landed.  Off by default: local
    #: host DRAM is modelled as ample on single-server presets.
    remote_swap: bool = False

    def __post_init__(self) -> None:
        if self.eviction not in _EVICTION_ORDERS:
            raise ConfigError(
                f"unknown eviction order {self.eviction!r}; "
                f"choose from {_EVICTION_ORDERS}"
            )

    @staticmethod
    def baseline() -> "MemoryPolicy":
        """Per-GPU memory virtualization as measured in the paper's
        Fig. 2: write-back on every eviction, host-only swapping.
        Tensors do stay cached while memory allows (LRU), as the real
        LMS-style swappers behave."""
        return MemoryPolicy(track_clean=False, p2p_enabled=False)

    @staticmethod
    def paper_baseline() -> "MemoryPolicy":
        """The paper's *idealized* baseline accounting (§3): the swapper
        has no reuse window at all — every task's inputs are swapped in
        and its working set swapped back out (``keep_resident=False``).
        This is the assumption under which the weight swap volume is
        exactly ``(4m+2)N|W|``; the Fig. 5 benchmark validates the
        simulator against the closed form using this policy."""
        return MemoryPolicy(
            track_clean=False, p2p_enabled=False, keep_resident=False
        )

    @staticmethod
    def harmony() -> "MemoryPolicy":
        """Harmony's coherent virtual memory."""
        return MemoryPolicy(track_clean=True, p2p_enabled=True)
