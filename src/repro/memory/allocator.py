"""Per-device memory pools.

A :class:`DevicePool` does byte-level accounting for one device:

* ``used`` — bytes physically resident (or reserved for an in-flight
  swap-in); bounded by ``capacity``.
* ``demand`` — bytes of *live* state assigned to this device whether
  resident or swapped out.  This is the "Mem Usage" quantity of the
  paper's Fig. 2(c): a pipeline stage's footprint can exceed its GPU's
  capacity, and the excess is exactly what must swap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, SimulationError


@dataclass(slots=True)
class DevicePool:
    name: str
    capacity: float
    used: float = 0.0
    peak_used: float = 0.0
    demand: float = 0.0
    peak_demand: float = 0.0
    #: Bytes made unavailable by an injected memory-pressure window
    #: (:class:`~repro.faults.model.MemoryPressure`): shrinks the
    #: effective capacity for future reservations without evicting
    #: anything already resident.
    pressure: float = 0.0
    _reservations: dict[int, float] = field(default_factory=dict)

    @property
    def effective_capacity(self) -> float:
        return self.capacity - self.pressure

    @property
    def free(self) -> float:
        return self.effective_capacity - self.used

    def add_pressure(self, nbytes: float) -> None:
        """Open (positive) or close (negative) a pressure window."""
        self.pressure += nbytes
        if self.pressure < -1e-6 or self.pressure > self.capacity:
            raise SimulationError(
                f"{self.name}: pressure {self.pressure:.3g} B outside "
                f"[0, capacity={self.capacity:.3g} B]"
            )

    def reserve(self, tid: int, nbytes: float) -> None:
        """Claim bytes for a tensor (on alloc or at swap-in start)."""
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative reservation")
        if tid in self._reservations:
            raise SimulationError(f"{self.name}: tensor {tid} already reserved")
        used = self.used + nbytes
        if used > (self.capacity - self.pressure) * (1 + 1e-9):
            raise CapacityError(
                f"{self.name}: reserving {nbytes:.3g} B would exceed capacity "
                f"({self.used:.3g}/{self.effective_capacity:.3g} B used"
                + (f", {self.pressure:.3g} B under pressure" if self.pressure else "")
                + ")"
            )
        self._reservations[tid] = nbytes
        self.used = used
        if used > self.peak_used:
            self.peak_used = used

    def release(self, tid: int) -> float:
        """Return a tensor's bytes to the pool (eviction done or freed)."""
        try:
            nbytes = self._reservations.pop(tid)
        except KeyError:
            raise SimulationError(
                f"{self.name}: releasing tensor {tid} that holds no reservation"
            ) from None
        self.used -= nbytes
        return nbytes

    def holds(self, tid: int) -> bool:
        return tid in self._reservations

    def resident_tensors(self) -> list[int]:
        return list(self._reservations)

    # -- demand (footprint) accounting ------------------------------------

    def assign_demand(self, nbytes: float) -> None:
        self.demand += nbytes
        self.peak_demand = max(self.peak_demand, self.demand)

    def unassign_demand(self, nbytes: float) -> None:
        self.demand -= nbytes
        if self.demand < -1e-6:
            raise SimulationError(f"{self.name}: negative demand")
