"""Swap-volume accounting, broken down the way the paper reasons.

The analytical comparison in §3 talks about per-tensor-kind volumes
("here we focus on model weights W"); Fig. 2(a) plots *global swap-out
volume*; Fig. 2(c) needs per-device views.  :class:`SwapStats` records
every byte moved, keyed by (device, tensor kind, direction), so all
three views — and the exact weight-only cross-check against the
closed-form model — fall out of one ledger.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.tensors.tensor import TensorKind
from repro.units import GB
from repro.util.enums import FastEnum


class Direction(FastEnum):
    SWAP_IN = "swap_in"        # host -> device over the host link
    SWAP_OUT = "swap_out"      # device -> host over the host link
    P2P_IN = "p2p_in"          # device -> device (receiving side)
    P2P_OUT = "p2p_out"        # device -> device (sending side)
    DROP = "drop"              # clean eviction, no traffic

    def __str__(self) -> str:
        return self.value


_HOST_DIRECTIONS = (Direction.SWAP_IN, Direction.SWAP_OUT)


@dataclass
class SwapStats:
    """Ledger of all data movement in one simulated run."""

    _volume: dict[tuple[str, TensorKind, Direction], float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _events: dict[tuple[str, TensorKind, Direction], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: Bytes re-sent after transient transfer failures, ledgered
    #: separately: a retried attempt occupies the wire (and therefore
    #: *also* lands in ``_volume``, keeping trace<->ledger conservation
    #: exact), but this ledger isolates the waste for the fault report.
    _retried: dict[tuple[str, TensorKind, Direction], float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _retry_events: dict[tuple[str, TensorKind, Direction], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: Running device roster: every device that ever appeared in a
    #: record.  Maintained incrementally so :meth:`devices` (called by
    #: the validation layer per run) never rescans the whole ledger —
    #: on wide fleets the ledger has O(devices x kinds x directions)
    #: keys and the rescan was a per-call fleet-sized cost.  Code that
    #: replaces the ledger wholesale (checkpoint restore) must rebuild
    #: this set from the new keys; steady-state fast-forward only folds
    #: existing keys, so the roster is untouched there.
    _devices: set[str] = field(default_factory=set, repr=False)
    #: When set (a list), every record also appends ``(key, nbytes)`` —
    #: the per-iteration delta capture behind steady-state fast-forward
    #: (see :mod:`repro.steady.cycle`), which must replay the exact
    #: per-key record *sequence* rather than a per-key total to stay
    #: bitwise-faithful.  ``None`` (the default) costs one branch.
    _journal: list | None = field(default=None, repr=False)

    def record(
        self, device: str, kind: TensorKind, direction: Direction, nbytes: float
    ) -> None:
        key = (device, kind, direction)
        self._volume[key] += nbytes
        self._events[key] += 1
        self._devices.add(device)
        if self._journal is not None:
            self._journal.append((key, nbytes))

    def record_retry(
        self, device: str, kind: TensorKind, direction: Direction, nbytes: float
    ) -> None:
        """Ledger one failed transfer attempt whose bytes must move
        again: counted in the main volume ledger (the wire really was
        occupied) *and* in the separate retry ledger."""
        self.record(device, kind, direction, nbytes)
        self._retried[(device, kind, direction)] += nbytes
        self._retry_events[(device, kind, direction)] += 1

    # -- aggregated views --------------------------------------------------

    def volume(
        self,
        device: str | None = None,
        kind: TensorKind | None = None,
        direction: Direction | None = None,
    ) -> float:
        """Total bytes matching the given filters (None = any)."""
        return sum(
            v
            for (d, k, dr), v in self._volume.items()
            if (device is None or d == device)
            and (kind is None or k == kind)
            and (direction is None or dr == direction)
        )

    def volume_by_device(self, direction: Direction) -> dict[str, float]:
        """Per-device totals for one direction in a single ledger pass —
        bitwise equal to calling :meth:`volume` once per device (each
        per-device sum adds the same values in the same order), without
        rescanning the ledger per device.  Devices with no matching
        entries are absent."""
        out: dict[str, float] = {}
        get = out.get
        for (d, _, dr), v in self._volume.items():
            if dr == direction:
                out[d] = get(d, 0) + v
        return out

    def events(
        self,
        device: str | None = None,
        kind: TensorKind | None = None,
        direction: Direction | None = None,
    ) -> int:
        return sum(
            c
            for (d, k, dr), c in self._events.items()
            if (device is None or d == device)
            and (kind is None or k == kind)
            and (direction is None or dr == direction)
        )

    def host_traffic(self, device: str | None = None) -> float:
        """Bytes crossing the device<->host boundary (both directions) —
        the traffic that rides the oversubscribed uplink."""
        return sum(self.volume(device, None, d) for d in _HOST_DIRECTIONS)

    def swap_out_volume(self, device: str | None = None) -> float:
        """The paper's Fig. 2(a) metric: global swap-out volume."""
        return self.volume(device, None, Direction.SWAP_OUT)

    def swap_in_volume(self, device: str | None = None) -> float:
        return self.volume(device, None, Direction.SWAP_IN)

    def p2p_volume(self) -> float:
        """Bytes moved device-to-device (counted once, receiver side)."""
        return self.volume(None, None, Direction.P2P_IN)

    def kind_swap_volume(self, kind: TensorKind) -> float:
        """Host-crossing volume for one tensor kind (e.g. weights only —
        the quantity in the paper's (4m+2)N|W| analysis)."""
        return self.volume(None, kind, Direction.SWAP_IN) + self.volume(
            None, kind, Direction.SWAP_OUT
        )

    def direction_volumes(self, device: str | None = None) -> dict[Direction, float]:
        """Per-direction byte totals, optionally for one device — the
        breakdown the audit layer reconciles against the trace."""
        out: dict[Direction, float] = {d: 0.0 for d in Direction}
        for (dev, _, dr), v in self._volume.items():
            if device is None or dev == device:
                out[dr] += v
        return out

    def retried_volume(
        self,
        device: str | None = None,
        kind: TensorKind | None = None,
        direction: Direction | None = None,
    ) -> float:
        """Bytes wasted on failed transfer attempts (subset of
        :meth:`volume` — conservation checks include them)."""
        return sum(
            v
            for (d, k, dr), v in self._retried.items()
            if (device is None or d == device)
            and (kind is None or k == kind)
            and (direction is None or dr == direction)
        )

    def retry_events(
        self,
        device: str | None = None,
        kind: TensorKind | None = None,
        direction: Direction | None = None,
    ) -> int:
        return sum(
            c
            for (d, k, dr), c in self._retry_events.items()
            if (device is None or d == device)
            and (kind is None or k == kind)
            and (direction is None or dr == direction)
        )

    def total_volume(self) -> float:
        """Every byte the ledger saw move (all devices, all directions,
        including clean drops) — a cheap conservation checksum."""
        return sum(self._volume.values())

    def devices(self) -> list[str]:
        """Sorted roster of devices that moved any bytes — served from
        the running :attr:`_devices` aggregate, not a ledger scan."""
        return sorted(self._devices)

    def summary(self) -> str:
        # One pass over each ledger instead of devices x directions
        # filtered rescans.  Per-(device, direction) sums accumulate in
        # ledger order, so each total adds the same values in the same
        # order as a filtered volume() call would.
        per_dir: dict[tuple[str, Direction], float] = {}
        for (dev, _, dr), v in self._volume.items():
            k = (dev, dr)
            per_dir[k] = per_dir.get(k, 0.0) + v
        per_retried: dict[str, float] = {}
        for (dev, _, _), v in self._retried.items():
            per_retried[dev] = per_retried.get(dev, 0.0) + v
        lines = ["swap stats (GB):"]
        for device in self.devices():
            parts = []
            for direction in Direction:
                vol = per_dir.get((device, direction), 0.0)
                if vol:
                    parts.append(f"{direction.value}={vol / GB:.2f}")
            retried = per_retried.get(device, 0.0)
            if retried:
                parts.append(f"retried={retried / GB:.2f}")
            lines.append(f"  {device}: " + (", ".join(parts) or "none"))
        return "\n".join(lines)
