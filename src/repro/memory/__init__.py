"""Memory management: device pools, swap decisions, and accounting.

This package implements both sides of the paper's comparison:

* **per-GPU memory virtualization** (the baseline: every eviction is a
  write-back over the host link, no peer-to-peer, no cleanliness
  tracking — the behaviour of vDNN/IBM-LMS-style swappers the paper's
  Fig. 2 measures), and
* **Harmony's coherent virtual memory** across all CPU and GPU memory
  (dirty-bit tracking so clean tensors drop for free, p2p moves between
  GPUs, swap accounting shared with the scheduler).

The difference is entirely in :class:`MemoryPolicy` flags, so ablation
benchmarks can isolate each mechanism.
"""

from repro.memory.policy import MemoryPolicy
from repro.memory.allocator import DevicePool
from repro.memory.stats import SwapStats, Direction
from repro.memory.manager import MemoryManager, MemOp, MemOpKind

__all__ = [
    "MemoryPolicy",
    "DevicePool",
    "SwapStats",
    "Direction",
    "MemoryManager",
    "MemOp",
    "MemOpKind",
]
