"""The memory manager: residency planning, eviction, and coherence.

This is the component the paper describes in §3: "Harmony's memory
manager ... is responsible for swapping in input data and state, either
from host (CPU) to device (GPU) memory or directly between device
memories; it is also responsible for swapping out tensors from device
to host memory based on their usage status and memory pressure [and]
maintains a state machine tracking the lifetime of all tensors used."

The same class also implements the *baseline* per-GPU virtualization
when given :meth:`MemoryPolicy.baseline` — write-back on every
eviction, no peer-to-peer — so baseline and Harmony runs differ only in
policy and schedule, never in accounting.

The manager is passive: it *plans* memory operations
(:class:`MemOp` lists) and applies their state effects; the simulation
engine decides when each operation's transfer occupies which links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import CapacityError, SimulationError
from repro.hardware.topology import Topology
from repro.memory.allocator import DevicePool
from repro.memory.policy import MemoryPolicy
from repro.memory.stats import Direction, SwapStats
from repro.tasks.task import Task
from repro.tensors.registry import TensorRegistry
from repro.tensors.state import TensorRuntime, TensorState
from repro.tensors.tensor import TensorKind, TensorMeta
from repro.units import fmt_bytes
from repro.util.enums import FastEnum


class MemOpKind(FastEnum):
    SWAP_OUT = "swap_out"   # device -> host transfer
    SWAP_IN = "swap_in"     # host -> device transfer
    P2P = "p2p"             # device -> device transfer
    DROP = "drop"           # instant clean eviction
    ALLOC = "alloc"         # instant on-device materialization
    WAIT = "wait"           # barrier on an in-flight transfer elsewhere

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class MemOp:
    """One planned memory operation on one tensor.

    ``forced`` marks an eviction the owning task planned against its own
    (pinned) inputs — the idealized no-reuse accounting swaps a task's
    inputs out and back in, which the pin would otherwise veto.
    """

    kind: MemOpKind
    tensor: TensorMeta
    src: str | None = None
    dst: str | None = None
    forced: bool = False
    #: For SWAP_OUT under ``MemoryPolicy.remote_swap``: the host whose
    #: DRAM receives the copy (chosen once when the transfer is routed,
    #: so retries reuse the same target).  ``None`` = the local host.
    host: str | None = None

    @property
    def is_transfer(self) -> bool:
        return self.kind in (MemOpKind.SWAP_OUT, MemOpKind.SWAP_IN, MemOpKind.P2P)

    def __str__(self) -> str:
        return f"{self.kind.value}({self.tensor.label}, {self.src}->{self.dst})"


class MemoryManager:
    """Tracks every tensor's lifetime and plans residency for tasks."""

    def __init__(
        self,
        topology: Topology,
        registry: TensorRegistry,
        policy: MemoryPolicy,
        stats: SwapStats | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.topology = topology
        self.registry = registry
        self.policy = policy
        self.stats = stats if stats is not None else SwapStats()
        #: Simulated-time source (the executor wires the engine clock in);
        #: drives the per-device memory-usage timeline.
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.pools: dict[str, DevicePool] = {
            gpu.name: DevicePool(gpu.name, gpu.memory_bytes)
            for gpu in topology.gpus()
        }
        self.usage_log: dict[str, list[tuple[float, float]]] = {
            gpu.name: [] for gpu in topology.gpus()
        }
        #: Bytes of non-persistent ("activation-class": A/dA/S and the
        #: pack variants) tensors currently resident per device, and the
        #: high-water mark.  This is the per-stage activation footprint
        #: pipeline schedules trade against throughput (1F1B's in-flight
        #: bound, DAPPLE's early backward); persistent state (W/dW/K) is
        #: excluded so depth effects are not drowned out by weights.
        self.activation_resident: dict[str, float] = {
            gpu.name: 0.0 for gpu in topology.gpus()
        }
        self.activation_peak: dict[str, float] = {
            gpu.name: 0.0 for gpu in topology.gpus()
        }
        # Runtimes are created lazily: the registry keeps growing while
        # the decomposer (or a test) names tensors, and the manager must
        # track whatever exists by the time each tensor is first touched.
        self.runtimes: dict[int, TensorRuntime] = {}
        #: Bytes of swapped-out tensor copies per host device —
        #: ``sum(rt.meta.size_bytes for rt if rt.host_device == host)``,
        #: maintained incrementally by ``op_finish`` so the remote-swap
        #: target choice never scans the runtimes.  Checkpoint restore
        #: snapshots/restores this alongside the runtimes it derives
        #: from.
        self._host_used: dict[str, float] = {}
        self._home: dict[int, str | None] = {}
        self._use_seq = 0
        self._waiters: dict[int, list[Callable[[], None]]] = {}

    # -- initial state -------------------------------------------------------

    def materialize_initial(self) -> None:
        """Place persistent state (W, dW, K) and the input microbatches in
        host memory, as at the start of a steady-state iteration."""
        for meta in self.registry.all_tensors():
            rt = self.runtime(meta.tid)
            is_input = meta.kind is TensorKind.ACTIVATION and meta.layer == -1
            if meta.persistent or is_input:
                rt.materialize_on_host()


    def _track_activation(self, device: str | None, meta: TensorMeta, sign: float) -> None:
        """Mirror one pool reserve (+1) / release (-1) into the
        activation-class footprint counters."""
        if device is None or meta.persistent:
            return
        resident = self.activation_resident[device] + sign * meta.size_bytes
        self.activation_resident[device] = resident
        if resident > self.activation_peak[device]:
            self.activation_peak[device] = resident

    def _log_usage(self, device: str | None) -> None:
        pool = self.pools.get(device)
        if pool is None:
            return
        self.usage_log[device].append((self.clock(), pool.used))

    # -- residency planning ----------------------------------------------------

    def _next_use(self) -> int:
        self._use_seq += 1
        return self._use_seq

    def runtime(self, tid: int) -> TensorRuntime:
        try:
            return self.runtimes[tid]
        except KeyError:
            rt = TensorRuntime(self.registry.by_id(tid))
            self.runtimes[tid] = rt
            self._home[tid] = None
            return rt

    def pool(self, device: str) -> DevicePool:
        try:
            return self.pools[device]
        except KeyError:
            raise SimulationError(f"no memory pool for device {device!r}") from None

    def prepare(
        self, task: Task, device: str, tensors: Sequence[int] | None = None
    ) -> list[MemOp]:
        """Plan the memory operations that make ``task``'s tensors
        resident on ``device``.

        Returns ops in execution order: waits and evictions first, then
        incoming transfers/allocations.  Pins every touched tensor;
        :meth:`task_finished` unpins.  Raises :class:`CapacityError`
        when the working set cannot fit even after evicting everything
        evictable.
        """
        touched = list(dict.fromkeys(tensors)) if tensors is not None else list(
            task.touched
        )
        if device not in self.pools:
            # The task runs on a host (e.g. a CPU-offloaded optimizer
            # step, the ZeRO-Offload design the paper cites): host
            # memory is unbounded, so preparation reduces to writing
            # back any device-resident inputs.
            return self._prepare_on_host(task, touched, set(task.writes))

        policy = self.policy
        # Idealized no-reuse swapper (paper §3 accounting, keep_resident
        # off): every unpinned tensor leaves the device before the task,
        # including this task's own inputs — they are swapped out and
        # back in, exactly as the closed-form volume model counts.
        evict_all: list[MemOp] = []
        evicted_ids: set[int] = set()
        if not policy.keep_resident:
            touched_set = set(touched)
            for rt in self._victim_order(device):
                op = self._eviction_op(rt, device)
                op.forced = rt.meta.tid in touched_set
                evict_all.append(op)
                evicted_ids.add(rt.meta.tid)

        waits: list[MemOp] = []
        incoming: list[MemOp] = []
        append_incoming = incoming.append
        incoming_bytes = 0.0
        self._use_seq += 1
        seq = self._use_seq
        runtimes = self.runtimes
        runtime = self.runtime
        # Hot-loop locals: the state compares below run once per touched
        # tensor per task, and LOAD_FAST beats a global + enum attribute
        # lookup on every compare.
        on_device = TensorState.ON_DEVICE
        on_host = TensorState.ON_HOST
        swap_in_kind = MemOpKind.SWAP_IN
        # get-or-create with a dict fast path: runtimes are always truthy.
        rts = [runtimes.get(tid) or runtime(tid) for tid in touched]
        for tid, rt in zip(touched, rts):
            rt.last_use = seq
            meta = rt.meta
            state = rt.state
            if tid in evicted_ids:
                append_incoming(MemOp(swap_in_kind, meta, None, device))
                incoming_bytes += meta.size_bytes
            elif state is on_device and rt.device == device:
                pass  # already resident
            elif state is on_device:
                # Resident on a peer device: move it here.
                if policy.p2p_enabled:
                    append_incoming(MemOp(MemOpKind.P2P, meta, rt.device, device))
                else:
                    # Bounce through host memory: two host-link transfers.
                    # The outbound half is forced: the planning task has
                    # pinned the tensor (it is its own input in motion).
                    append_incoming(
                        MemOp(MemOpKind.SWAP_OUT, meta, rt.device, None, forced=True)
                    )
                    append_incoming(MemOp(swap_in_kind, meta, None, device))
                incoming_bytes += meta.size_bytes
            elif state is on_host:
                append_incoming(MemOp(swap_in_kind, meta, None, device))
                incoming_bytes += meta.size_bytes
            elif state is TensorState.SWAPPING_OUT:
                waits.append(MemOp(MemOpKind.WAIT, meta))
                append_incoming(MemOp(swap_in_kind, meta, None, device))
                incoming_bytes += meta.size_bytes
            elif state is TensorState.SWAPPING_IN:
                if rt.device != device:
                    raise SimulationError(
                        f"{meta.label}: concurrently swapped into {rt.device} "
                        f"while task {task.label} needs it on {device}"
                    )
                waits.append(MemOp(MemOpKind.WAIT, meta))
            elif state is TensorState.UNMATERIALIZED:
                if tid not in task.writes:
                    raise SimulationError(
                        f"task {task.label} reads unmaterialized tensor {meta.label}"
                    )
                append_incoming(MemOp(MemOpKind.ALLOC, meta, None, device))
                incoming_bytes += meta.size_bytes
            else:  # FREED
                raise SimulationError(
                    f"task {task.label} touches freed tensor {meta.label}"
                )

        # Pin before selecting victims so this task's tensors survive.
        for rt in rts:
            rt.pinned += 1

        try:
            if self.policy.keep_resident:
                evictions = self._plan_evictions(task, device, incoming_bytes)
            else:
                evictions = evict_all
                inflight_waits, inflight = self._inflight_departures(device)
                evictions = inflight_waits + evictions
                freed = sum(
                    op.tensor.size_bytes for op in evict_all if op.tensor
                )
                if incoming_bytes > self.pool(device).free + freed + inflight + 1e-6:
                    raise CapacityError(
                        f"task {task.label} needs {fmt_bytes(incoming_bytes)} "
                        f"incoming on {device} "
                        f"(capacity {fmt_bytes(self.pool(device).capacity)})"
                    )
        except CapacityError:
            for rt in rts:
                rt.pinned -= 1
            raise
        return waits + evictions + incoming

    def _prepare_on_host(
        self, task: Task, touched: list[int], writes: set[int]
    ) -> list[MemOp]:
        """Residency plan for a host-placed task: device-resident inputs
        are written back (their swap-out is this task's data movement);
        host-resident tensors are free to use; written tensors that do
        not exist yet materialize directly in host memory."""
        ops: list[MemOp] = []
        seq = self._next_use()
        rts = [self.runtime(tid) for tid in touched]
        for tid, rt in zip(touched, rts):
            rt.last_use = seq
            if rt.state is TensorState.ON_DEVICE:
                ops.append(
                    MemOp(MemOpKind.SWAP_OUT, rt.meta, rt.device, None, forced=True)
                )
            elif rt.in_flight:
                ops.append(MemOp(MemOpKind.WAIT, rt.meta))
                # If it lands on a device, the defensive re-check in the
                # transfer engine converts the wait into a write-back.
                ops.append(
                    MemOp(MemOpKind.SWAP_OUT, rt.meta, rt.device, None, forced=True)
                )
            elif rt.state is TensorState.UNMATERIALIZED:
                if tid not in writes:
                    raise SimulationError(
                        f"host task {task.label} reads unmaterialized tensor "
                        f"{rt.meta.label}"
                    )
                rt.materialize_on_host()
            elif rt.state is TensorState.FREED:
                raise SimulationError(
                    f"host task {task.label} touches freed tensor {rt.meta.label}"
                )
        for rt in rts:
            rt.pinned += 1
        return ops

    def _plan_evictions(
        self, task: Task, device: str, incoming_bytes: float
    ) -> list[MemOp]:
        pool = self.pool(device)
        deficit = incoming_bytes - pool.free
        if deficit <= 0:
            return []
        ops: list[MemOp] = []
        freed = 0.0
        # Bytes already on their way out (a peer fetched a tensor away,
        # or an earlier eviction's write-back is still in flight) will
        # free themselves; wait for them instead of evicting more.
        waits, inflight = self._inflight_departures(device)
        if inflight:
            ops += waits
            freed += inflight
        for rt in self._victim_order(device):
            if freed >= deficit:
                break
            ops.append(self._eviction_op(rt, device))
            freed += rt.meta.size_bytes
        if freed < deficit - 1e-6:
            # Last resort: unpinned tensors still arriving (a peer parked
            # a cross-device swap here) become evictable once they land.
            for tid in self.pool(device).resident_tensors():
                if freed >= deficit:
                    break
                rt = self.runtime(tid)
                if (
                    rt.state is TensorState.SWAPPING_IN
                    and rt.device == device
                    and rt.pinned == 0
                ):
                    ops.append(MemOp(MemOpKind.WAIT, rt.meta))
                    ops.append(MemOp(MemOpKind.SWAP_OUT, rt.meta, device, None))
                    freed += rt.meta.size_bytes
        if freed < deficit - 1e-6:
            raise CapacityError(
                f"task {task.label} needs {fmt_bytes(incoming_bytes)} incoming on "
                f"{device} but only {fmt_bytes(pool.free + freed)} can be made free "
                f"(capacity {fmt_bytes(pool.capacity)}); reduce pack or microbatch size"
            )
        return ops

    def _inflight_departures(self, device: str) -> tuple[list[MemOp], float]:
        """WAIT ops (and their byte total) for tensors currently leaving
        ``device`` — in-flight swap-outs and p2p moves away."""
        waits: list[MemOp] = []
        total = 0.0
        runtimes = self.runtimes
        for tid in self.pool(device).resident_tensors():
            rt = runtimes[tid]
            leaving = rt.state is TensorState.SWAPPING_OUT or (
                rt.state is TensorState.SWAPPING_IN and rt.device != device
            )
            if leaving:
                waits.append(MemOp(MemOpKind.WAIT, rt.meta))
                total += rt.meta.size_bytes
        return waits, total

    def _victim_order(self, device: str) -> list[TensorRuntime]:
        pool = self.pool(device)
        runtimes = self.runtimes
        candidates = [
            rt
            for rt in (runtimes[tid] for tid in pool.resident_tensors())
            if rt.state is TensorState.ON_DEVICE and rt.pinned == 0
        ]
        if self.policy.eviction == "largest_first":
            candidates.sort(key=lambda rt: (-rt.meta.size_bytes, rt.last_use))
        elif self.policy.eviction == "activations_first":
            # vDNN-style: offload per-microbatch tensors before touching
            # persistent state, LRU within each class.
            candidates.sort(
                key=lambda rt: (rt.meta.persistent, rt.last_use, rt.meta.tid)
            )
        else:  # lru
            candidates.sort(key=lambda rt: (rt.last_use, rt.meta.tid))
        return candidates

    def _eviction_op(self, rt: TensorRuntime, device: str) -> MemOp:
        if self.policy.track_clean and not rt.dirty:
            return MemOp(MemOpKind.DROP, rt.meta, device, None)
        if self.policy.swap_to_peer and self.policy.p2p_enabled:
            peer = self._peer_with_room(device, rt.meta.size_bytes)
            if peer is not None:
                return MemOp(MemOpKind.P2P, rt.meta, device, peer)
        return MemOp(MemOpKind.SWAP_OUT, rt.meta, device, None)

    def _peer_with_room(self, device: str, nbytes: float) -> str | None:
        """Cross-device swap target (paper §2 inefficiency #3: baselines
        'miss the opportunity to use fast device-to-device links for
        cross-device swaps').  Only peers reachable without the host
        uplink and with comfortable headroom qualify."""
        best: str | None = None
        best_free = 0.0
        for name, pool in self.pools.items():
            if name == device:
                continue
            headroom = pool.free - 0.25 * pool.capacity
            if headroom < nbytes:
                continue
            if not self.topology.shares_switch(device, name):
                continue
            if pool.free > best_free:
                best, best_free = name, pool.free
        return best

    def swap_host_for(self, device: str, nbytes: float) -> str:
        """Which host's DRAM a swap-out from ``device`` should target.

        Without ``remote_swap`` (the default) this is always the local
        host, so single-server behavior — and every existing trace — is
        untouched.  With it, the nearest host (by hop count, name-
        ordered within a tier: ``Topology.hosts_by_distance``) whose
        ledgered spill volume leaves room wins; a fleet whose every
        host is full falls back to the local host, which is the
        pre-feature behavior under pressure.
        """
        local = self.topology.host_of(device).name
        if not self.policy.remote_swap:
            return local
        used = self._host_used
        for host in self.topology.hosts_by_distance(device):
            if used.get(host.name, 0.0) + nbytes <= host.memory_bytes:
                return host.name
        return local

    # -- op lifecycle (called by the engine) -------------------------------------

    def op_begin(self, op: MemOp) -> bool:
        """Apply an op's start-of-transfer effects.  Returns False when
        the op has become a no-op (state already satisfied)."""
        rt = self.runtimes.get(op.tensor.tid) or self.runtime(op.tensor.tid)
        kind = op.kind
        meta = rt.meta
        on_device = TensorState.ON_DEVICE
        if kind is MemOpKind.SWAP_OUT:
            if rt.state is not on_device:
                return False
            if op.src is not None and rt.device != op.src:
                return False  # moved elsewhere since planning; not ours to evict
            op.src = rt.device
            rt.begin_swap_out(force=op.forced)
            return True
        if kind is MemOpKind.SWAP_IN:
            if rt.state is on_device and rt.device == op.dst:
                return False
            dst = op.dst
            pool = self.pools[dst]
            pool.reserve(meta.tid, meta.size_bytes)
            self._track_activation(dst, meta, +1.0)
            rt.begin_swap_in(dst)
            self.usage_log[dst].append((self.clock(), pool.used))
            return True
        if kind is MemOpKind.P2P:
            if rt.state is on_device and rt.device == op.dst:
                return False
            dst = op.dst
            pool = self.pools[dst]
            if rt.state is TensorState.ON_HOST:
                # The source copy was evicted in the meantime; degrade
                # to a host fetch.
                op.kind = MemOpKind.SWAP_IN
                op.src = None
                pool.reserve(meta.tid, meta.size_bytes)
                self._track_activation(dst, meta, +1.0)
                rt.begin_swap_in(dst)
                self.usage_log[dst].append((self.clock(), pool.used))
                return True
            op.src = rt.device
            pool.reserve(meta.tid, meta.size_bytes)
            self._track_activation(dst, meta, +1.0)
            rt.begin_move(dst)
            self.usage_log[dst].append((self.clock(), pool.used))
            return True
        if kind is MemOpKind.DROP:
            if rt.state is not on_device:
                return False
            if op.src is not None and rt.device != op.src:
                return False
            if rt.dirty:
                # Written since the drop was planned; degrade to a
                # write-back so the update is not lost.
                op.kind = MemOpKind.SWAP_OUT
                op.src = rt.device
                rt.begin_swap_out()
                return True
            device = rt.device
            rt.drop()
            pool = self.pools[device]
            pool.release(meta.tid)
            self._track_activation(device, meta, -1.0)
            self.usage_log[device].append((self.clock(), pool.used))
            self.stats.record(device, meta.kind, Direction.DROP, meta.size_bytes)
            return True
        if kind is MemOpKind.ALLOC:
            dst = op.dst
            pool = self.pools[dst]
            pool.reserve(meta.tid, meta.size_bytes)
            self._track_activation(dst, meta, +1.0)
            rt.materialize_on_device(dst)
            self.usage_log[dst].append((self.clock(), pool.used))
            self._assign_home(meta.tid, dst, meta.size_bytes)
            return True
        raise SimulationError(f"op_begin on unexpected op {op}")

    def op_finish(self, op: MemOp) -> None:
        """Apply an op's end-of-transfer effects and wake waiters."""
        rt = self.runtimes.get(op.tensor.tid) or self.runtime(op.tensor.tid)
        meta = rt.meta
        kind = op.kind
        stats = self.stats
        if kind is MemOpKind.SWAP_OUT:
            src = op.src
            rt.finish_swap_out()
            host = op.host if op.host is not None else self.topology.host_of(src).name
            old_host = rt.host_device
            if old_host != host:
                used = self._host_used
                if old_host is not None:
                    used[old_host] = used.get(old_host, 0.0) - meta.size_bytes
                used[host] = used.get(host, 0.0) + meta.size_bytes
            rt.host_device = host
            pool = self.pools[src]
            pool.release(meta.tid)
            self._track_activation(src, meta, -1.0)
            self.usage_log[src].append((self.clock(), pool.used))
            stats.record(src, meta.kind, Direction.SWAP_OUT, meta.size_bytes)
        elif kind is MemOpKind.SWAP_IN:
            rt.finish_swap_in()
            rt.dirty = False  # host copy is current right after a swap-in
            stats.record(op.dst, meta.kind, Direction.SWAP_IN, meta.size_bytes)
            self._assign_home(meta.tid, op.dst, meta.size_bytes)
        elif kind is MemOpKind.P2P:
            src = op.src
            rt.finish_swap_in()
            pool = self.pools[src]
            pool.release(meta.tid)
            self._track_activation(src, meta, -1.0)
            self.usage_log[src].append((self.clock(), pool.used))
            stats.record(op.dst, meta.kind, Direction.P2P_IN, meta.size_bytes)
            stats.record(src, meta.kind, Direction.P2P_OUT, meta.size_bytes)
            self._assign_home(meta.tid, op.dst, meta.size_bytes)
        else:
            raise SimulationError(f"op_finish on non-transfer op {op}")
        if self._waiters:  # guard: the waiter map is almost always empty
            self._fire_waiters(meta.tid)

    def _assign_home(self, tid: int, device: str, size: float) -> None:
        old = self._home[tid]
        if old == device:
            return
        if old is not None:
            self.pools[old].unassign_demand(size)
        self.pools[device].assign_demand(size)
        self._home[tid] = device

    def _unassign_home(self, tid: int, size: float) -> None:
        old = self._home[tid]
        if old is not None:
            self.pools[old].unassign_demand(size)
            self._home[tid] = None

    # -- execution-time victim substitution ----------------------------------------

    def substitute_victims(self, op: MemOp) -> list[MemOp] | None:
        """A planned eviction found its victim pinned at execution time
        (a concurrent task on another device claimed it).  Pick other
        victims covering at least the same byte count, or ``None`` if
        nothing is evictable right now."""
        device = op.src
        if device is None:
            return None
        needed = op.tensor.size_bytes
        ops: list[MemOp] = []
        freed = 0.0
        for rt in self._victim_order(device):
            if rt.meta.tid == op.tensor.tid:
                continue
            ops.append(self._eviction_op(rt, device))
            freed += rt.meta.size_bytes
            if freed >= needed:
                return ops
        return None

    # -- waiters ------------------------------------------------------------------

    def add_waiter(self, tid: int, callback: Callable[[], None]) -> None:
        """Register a callback fired when the tensor's in-flight transfer
        completes or its pin count drops to zero (whichever happens
        next); callbacks must re-check state and re-register if their
        condition is still unmet."""
        self._waiters.setdefault(tid, []).append(callback)

    def _fire_waiters(self, tid: int) -> None:
        callbacks = self._waiters.pop(tid, None)
        if callbacks:
            for callback in callbacks:
                callback()

    def in_flight(self, tid: int) -> bool:
        return self.runtime(tid).in_flight

    # -- task completion --------------------------------------------------------------

    def task_finished(self, task: Task, tensors: Sequence[int] | None = None) -> None:
        """Unpin the task's tensors, mark its writes dirty, and free its
        dead tensors."""
        touched = list(tensors) if tensors is not None else list(task.touched)
        touched_set = set(touched)
        self._use_seq += 1
        seq = self._use_seq
        runtimes = self.runtimes
        runtime = self.runtime
        waiters = self._waiters
        for tid in touched:
            rt = runtimes.get(tid) or runtime(tid)
            if rt.pinned <= 0:
                raise SimulationError(
                    f"task {task.label}: unpinning unpinned tensor {rt.meta.label}"
                )
            rt.pinned -= 1
            rt.last_use = seq
            if rt.pinned == 0 and waiters:
                self._fire_waiters(tid)
        for tid in task.writes:
            if tid not in touched_set:
                continue
            # Present in ``runtimes``: the unpin loop above touched it.
            rt = runtimes[tid]
            if rt.state is TensorState.ON_DEVICE:
                rt.mark_written()
        for tid in task.frees:
            if tid not in touched_set and tensors is not None:
                continue
            self._free(tid)

    def _free(self, tid: int) -> None:
        rt = self.runtime(tid)
        state = rt.state
        if state is TensorState.FREED:
            return
        device = rt.device if state is TensorState.ON_DEVICE else None
        if state is TensorState.SWAPPING_IN or state is TensorState.SWAPPING_OUT:
            raise SimulationError(f"freeing in-flight tensor {rt.meta.label}")
        rt.free()
        if device is not None:
            pool = self.pools[device]
            pool.release(tid)
            self._track_activation(device, rt.meta, -1.0)
            self.usage_log[device].append((self.clock(), pool.used))
        self._unassign_home(tid, rt.meta.size_bytes)

    # -- end-of-iteration flush ------------------------------------------------------

    def plan_flush(self) -> list[MemOp]:
        """Write back all dirty device-resident state — the evictions the
        *next* iteration's traffic would inevitably contain, so that a
        one-iteration simulation reports steady-state swap volume."""
        ops: list[MemOp] = []
        for device in sorted(self.pools):
            pool = self.pools[device]
            for tid in sorted(pool.resident_tensors()):
                rt = self.runtime(tid)
                if rt.state is not TensorState.ON_DEVICE:
                    continue
                if rt.dirty:
                    ops.append(MemOp(MemOpKind.SWAP_OUT, rt.meta, device, None))
                else:
                    ops.append(MemOp(MemOpKind.DROP, rt.meta, device, None))
        return ops

    # -- diagnostics ---------------------------------------------------------------------

    def resident_bytes(self, device: str) -> float:
        return self.pool(device).used

    def describe(self) -> str:
        lines = [f"memory manager ({self.policy})"]
        for name in sorted(self.pools):
            pool = self.pools[name]
            lines.append(
                f"  {name}: used {fmt_bytes(pool.used)} / {fmt_bytes(pool.capacity)}, "
                f"peak {fmt_bytes(pool.peak_used)}, demand peak {fmt_bytes(pool.peak_demand)}"
            )
        return "\n".join(lines)
