"""The resilient runner: iteration-granular execution under faults.

A resilient run executes ``iterations`` training iterations as a chain
of *segments*, each a fresh discrete-event simulation of one iteration
(one :class:`~repro.sim.executor.Executor`), stitched together on a
global wall-clock ``offset``.  The :class:`~repro.faults.injector.
FaultInjector` translates the plan's global fault times into each
segment's local time, so one :class:`~repro.faults.model.FaultPlan`
spans the whole run.

Between iterations the runner charges checkpoint cost (training state
streamed to host DRAM over the shared uplink) every
``policy.checkpoint_every`` iterations.  When a :class:`~repro.errors.
DeviceLostError` escapes a segment, the runner

1. collects the aborted segment's partial result and accounts the lost
   wall/compute time,
2. rolls back to the last *usable* checkpoint — everything since it
   must be redone (for rigid baselines no checkpoint survives a
   world-size change, so *all* credited iterations roll back),
3. charges detection + state-reload time,
4. rebuilds the topology without the dead device and re-invokes
   :func:`~repro.schedulers.build_scheduler` on the survivors — the
   mid-run re-planning that Harmony's late-binding design makes cheap,
5. continues until all iterations are credited or recovery becomes
   impossible (no survivors, re-planning fails, retry budgets exhaust),
   in which case the :class:`~repro.faults.report.FaultReport` records
   ``recovered=False`` instead of raising.

The returned :class:`~repro.sim.result.RunResult` aggregates the whole
run (makespan, credited samples) and carries the report in ``.faults``.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.config import HarmonyConfig
from repro.errors import (
    CapacityError,
    ConfigError,
    DeviceLostError,
    FaultError,
    SchedulingError,
    TopologyError,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import DeviceLoss, FaultPlan
from repro.faults.report import FaultReport, SegmentReport
from repro.faults.resilience import ResiliencePolicy
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.schedulers import build_scheduler
from repro.sim.executor import ExecOptions, Executor
from repro.sim.plan import Plan
from repro.sim.result import RunResult

#: Exceptions that mean "the fault could not be absorbed" rather than
#: "the simulator is broken": they end the run with ``recovered=False``.
_RECOVERY_FAILURES = (
    FaultError,
    CapacityError,
    ConfigError,
    SchedulingError,
    TopologyError,
)


def _uplink_bandwidth(topology: Topology) -> float:
    """Bottleneck bandwidth of the slowest GPU->host route — the rate
    checkpoint writes and state reloads move at."""
    gpus = topology.gpus()
    if not gpus:
        raise TopologyError(f"topology {topology.name!r} has no GPUs")
    return min(
        topology.host_route(gpu.name).bottleneck_bandwidth for gpu in gpus
    )


def _compute_seconds(result: RunResult) -> float:
    return sum(d.compute_busy for d in result.devices.values())


class _ResilientRun:
    """Mutable state of one resilient run (the loop in :func:`run_resilient`)."""

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        config: "HarmonyConfig",
        fault_plan: FaultPlan,
        policy: ResiliencePolicy | None,
        iterations: int,
    ):
        if iterations < 1:
            raise ConfigError("iterations must be >= 1")
        self.model = model
        self.config = config
        self.scheme = config.resolved_parallelism().value
        self.fault_plan = fault_plan
        self.policy = (
            policy if policy is not None else ResiliencePolicy.for_scheme(self.scheme)
        )
        self.iterations = iterations
        #: Checkpointable training state: weights + optimizer moments
        #: (gradients are recomputed, activations are per-iteration).
        self.state_bytes = model.param_bytes + model.optimizer_bytes
        self.rng: random.Random = fault_plan.rng()
        self.topo = topology
        self.plan: Plan | None = None
        self.lost: set[str] = set()
        self.pending: deque[DeviceLoss] = deque(fault_plan.device_losses())
        self.offset = 0.0           # global wall-clock
        self.completed = 0          # credited iterations
        self.since_ckpt = 0         # credited since the last checkpoint
        #: (samples, wall seconds, compute seconds) per credited iteration,
        #: popped when a loss rolls iterations back.
        self.credited: list[tuple[int, float, float]] = []
        self.report = FaultReport(plan=fault_plan, policy=self.policy)
        self.last_result: RunResult | None = None

    # -- building blocks ---------------------------------------------------

    def build_plan(self) -> Plan:
        return build_scheduler(
            self.scheme, self.model, self.topo, self.config.batch,
            options=self.config.options,
        ).plan()

    def fault_free_reference(self) -> None:
        """One healthy iteration on the full topology; its plan seeds the
        first segment and its makespan anchors the goodput ratio."""
        self.plan = self.build_plan()
        healthy = Executor(
            self.topo, self.plan, cost_model=self.config.cost_model,
            options=ExecOptions(prefetch=self.config.prefetch),
        ).run()
        self.report.fault_free_makespan = healthy.makespan * self.iterations
        self.report.fault_free_samples = healthy.samples * self.iterations
        self.last_result = healthy

    def fail(self, reason: str) -> None:
        self.report.recovered = False
        self.report.failure_reason = reason

    def absorb_stats(self, result: RunResult) -> None:
        self.report.retried_bytes += result.stats.retried_volume()
        self.report.retry_events += result.stats.retry_events()

    # -- loss recovery -----------------------------------------------------

    def strike(self, device: str, at_global: float) -> bool:
        """Recover from losing ``device`` at global time ``at_global``;
        returns False when recovery is impossible (run over)."""
        self.report.device_losses.append((device, at_global))
        self.lost.add(device)

        # Roll back to the last checkpoint this policy can still use.
        redo = (
            self.since_ckpt
            if self.policy.checkpoint_usable_after_loss
            else self.completed
        )
        redo = min(redo, self.completed)
        for _ in range(redo):
            _, wall, compute = self.credited.pop()
            self.report.lost_wall_seconds += wall
            self.report.lost_compute_seconds += compute
        self.completed -= redo
        self.since_ckpt = 0
        self.report.iterations_redone += redo

        # Survivor topology + state reload + re-plan.
        try:
            survivor = self.topo.without_device(device)
            survivor.validate()
            reload_bytes = self.state_bytes
            if self.policy.partial_reload:
                reload_bytes /= len(survivor.gpus())
            recovery = (
                self.policy.detection_delay
                + reload_bytes / _uplink_bandwidth(survivor)
            )
            self.topo = survivor
            self.plan = self.build_plan()
        except _RECOVERY_FAILURES as exc:
            self.fail(f"lost {device} at t={at_global:.4g}s: {exc}")
            return False
        self.report.replans += 1
        self.report.recovery_seconds += recovery
        self.offset += recovery
        return True

    def drain_pending_losses(self) -> bool:
        """Losses whose global time already passed while no segment was
        running (checkpoint stalls, recovery windows) still kill their
        device — they just abort no in-flight work."""
        while self.pending and self.pending[0].at <= self.offset:
            loss = self.pending.popleft()
            if loss.device in self.lost or loss.device not in self.topo.devices:
                continue
            if not self.strike(loss.device, loss.at):
                return False
        return True

    # -- the loop ----------------------------------------------------------

    def run_segment(self, index: int) -> bool:
        injector = FaultInjector(
            self.fault_plan, self.policy,
            offset=self.offset, rng=self.rng, lost=self.lost,
        )
        executor = Executor(
            self.topo, self.plan, cost_model=self.config.cost_model,
            options=ExecOptions(prefetch=self.config.prefetch, injector=injector),
        )
        try:
            result = executor.run()
        except DeviceLostError as exc:
            partial = executor.partial_result()
            self.absorb_stats(partial)
            self.report.segments.append(SegmentReport(
                index=index, iteration=self.completed, result=partial,
                plan=self.plan, topology=self.topo,
                started_at=self.offset, duration=exc.at,
                aborted=True, lost_device=exc.device,
            ))
            self.report.lost_wall_seconds += exc.at
            self.report.lost_compute_seconds += _compute_seconds(partial)
            self.offset += exc.at
            self.last_result = partial
            return self.strike(exc.device, self.offset)
        except _RECOVERY_FAILURES as exc:
            self.fail(str(exc))
            return False

        self.absorb_stats(result)
        self.report.segments.append(SegmentReport(
            index=index, iteration=self.completed, result=result,
            plan=self.plan, topology=self.topo,
            started_at=self.offset, duration=result.makespan,
        ))
        self.offset += result.makespan
        self.credited.append(
            (result.samples, result.makespan, _compute_seconds(result))
        )
        self.completed += 1
        self.since_ckpt += 1
        self.last_result = result

        # Periodic checkpoint: stream training state to host DRAM over
        # the uplink.  Skipped after the final iteration — there is no
        # more work a restart could need it for.
        if (
            self.policy.checkpoint_every > 0
            and self.since_ckpt >= self.policy.checkpoint_every
            and self.completed < self.iterations
        ):
            cost = self.state_bytes / _uplink_bandwidth(self.topo)
            self.report.checkpoints += 1
            self.report.checkpoint_seconds += cost
            self.offset += cost
            self.since_ckpt = 0
        return True

    def execute(self) -> RunResult:
        self.fault_free_reference()
        # Finite by construction (each loss strikes once), but guard the
        # loop against accounting bugs turning it into a spin.
        max_segments = (self.iterations + 1) * (len(self.pending) + 2)
        index = 0
        while self.completed < self.iterations and self.report.recovered:
            if index >= max_segments:
                raise FaultError(
                    f"resilient run exceeded {max_segments} segments for "
                    f"{self.iterations} iteration(s); accounting bug?"
                )
            if not self.drain_pending_losses():
                break
            if not self.run_segment(index):
                break
            index += 1

        self.report.total_makespan = self.offset
        self.report.samples = sum(s for s, _, _ in self.credited)
        result = replace(
            self.last_result,
            makespan=self.report.total_makespan,
            samples=self.report.samples,
        )
        result.faults = self.report
        return result


def run_resilient(
    model: ModelGraph,
    topology: Topology,
    config: "HarmonyConfig",
    fault_plan: FaultPlan,
    policy: ResiliencePolicy | None = None,
    iterations: int = 1,
) -> RunResult:
    """Execute ``iterations`` under ``fault_plan`` with checkpointing,
    retries, and mid-run re-planning; never raises on an injected fault
    — inspect ``result.faults.recovered``.  Deterministic: the same
    (model, topology, config, fault_plan) replays byte-identically."""
    return _ResilientRun(
        model, topology, config, fault_plan, policy, iterations
    ).execute()
