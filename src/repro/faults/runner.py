"""The resilient runner: iteration-granular execution under faults.

A resilient run executes ``iterations`` training iterations as a chain
of *segments*, each a fresh discrete-event simulation of one iteration
(one :class:`~repro.sim.executor.Executor`), stitched together on a
global wall-clock ``offset``.  The :class:`~repro.faults.injector.
FaultInjector` translates the plan's global fault times into each
segment's local time, so one :class:`~repro.faults.model.FaultPlan`
spans the whole run.

Between iterations the runner charges checkpoint cost (training state
streamed to host DRAM over the shared uplink) every
``policy.checkpoint_every`` iterations.  When a :class:`~repro.errors.
DeviceLostError` escapes a segment, the runner

1. collects the aborted segment's partial result and accounts the lost
   wall/compute time,
2. charges *detection*: either the legacy scalar
   ``policy.detection_delay``, or — with ``policy.detection`` set —
   the simulated heartbeat detector's suspicion + confirmation time
   (see :mod:`repro.faults.detection`), recorded per incident,
3. dispatches the confirmed loss to the configured **recovery policy**
   (:data:`~repro.faults.recovery.RECOVERY_REGISTRY`): shrink onto the
   survivors and re-plan (``restart-replan``/``degrade-continue``),
   hold for a grace window and resume the full world if the device
   returns (``wait-rejoin``), or swap in a cold standby
   (``spare-substitute``) — each composed with the Harmony/baseline
   checkpoint-usability and reload asymmetry in
   :class:`~repro.faults.resilience.ResiliencePolicy`,
4. continues until all iterations are credited or recovery becomes
   impossible (no survivors, re-planning fails, retry budgets exhaust),
   in which case the :class:`~repro.faults.report.FaultReport` records
   ``recovered=False`` instead of raising.

:class:`~repro.faults.model.DeviceReturn` events come due between
segments: elastic policies grow the world back (one more re-plan and a
shard reload); ``degrade-continue`` ignores them.  Straggler-induced
false-positive suspicions are scanned after the run and ledgered in
``report.incidents`` with ``false_positive=True``.

The returned :class:`~repro.sim.result.RunResult` aggregates the whole
run (makespan, credited samples) and carries the report in ``.faults``.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.config import HarmonyConfig
from repro.errors import (
    CapacityError,
    ConfigError,
    DeviceLostError,
    FaultError,
    SchedulingError,
    TopologyError,
)
from repro.faults.detection import (
    DetectorConfig,
    HeartbeatMonitor,
    death_detection,
    scan_device,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import DeviceLoss, DeviceReturn, FaultPlan, SpareDevice
from repro.faults.recovery import build_recovery
from repro.faults.report import FaultReport, IncidentReport, SegmentReport
from repro.faults.resilience import ResiliencePolicy
from repro.hardware.device import DeviceSpec
from repro.hardware.topology import Topology
from repro.models.graph import ModelGraph
from repro.schedulers import build_scheduler
from repro.sim.executor import ExecOptions, Executor
from repro.sim.plan import Plan
from repro.sim.result import RunResult

#: Exceptions that mean "the fault could not be absorbed" rather than
#: "the simulator is broken": they end the run with ``recovered=False``.
_RECOVERY_FAILURES = (
    FaultError,
    CapacityError,
    ConfigError,
    SchedulingError,
    TopologyError,
)


def _uplink_bandwidth(topology: Topology) -> float:
    """Bottleneck bandwidth of the slowest GPU->host route — the rate
    checkpoint writes and state reloads move at."""
    gpus = topology.gpus()
    if not gpus:
        raise TopologyError(f"topology {topology.name!r} has no GPUs")
    return min(
        topology.host_route(gpu.name).bottleneck_bandwidth for gpu in gpus
    )


def _compute_seconds(result: RunResult) -> float:
    return sum(d.compute_busy for d in result.devices.values())


class _ResilientRun:
    """Mutable state of one resilient run (the loop in :func:`run_resilient`)."""

    def __init__(
        self,
        model: ModelGraph,
        topology: Topology,
        config: "HarmonyConfig",
        fault_plan: FaultPlan,
        policy: ResiliencePolicy | None,
        iterations: int,
    ):
        if iterations < 1:
            raise ConfigError("iterations must be >= 1")
        self.model = model
        self.config = config
        self.scheme = config.resolved_parallelism().value
        self.fault_plan = fault_plan
        self.policy = (
            policy if policy is not None else ResiliencePolicy.for_scheme(self.scheme)
        )
        self.iterations = iterations
        #: Checkpointable training state: weights + optimizer moments
        #: (gradients are recomputed, activations are per-iteration).
        self.state_bytes = model.param_bytes + model.optimizer_bytes
        self.rng: random.Random = fault_plan.rng()
        self.topo = topology
        #: The pristine world: rejoin wiring is looked up here, never
        #: reconstructed from a shrunken survivor.
        self.initial_topo = topology
        self.plan: Plan | None = None
        self.lost: set[str] = set()
        self.pending: deque[DeviceLoss] = deque(fault_plan.device_losses())
        self.pending_returns: list[DeviceReturn] = fault_plan.device_returns()
        self.spares: list[SpareDevice] = fault_plan.spare_devices()
        self.recovery = build_recovery(self.policy.recovery)
        self.detector_config: DetectorConfig | None = None
        self.monitor: HeartbeatMonitor | None = None
        self.offset = 0.0           # global wall-clock
        self.completed = 0          # credited iterations
        self.since_ckpt = 0         # credited since the last checkpoint
        #: (samples, wall seconds, compute seconds) per credited iteration,
        #: popped when a loss rolls iterations back.
        self.credited: list[tuple[int, float, float]] = []
        self.report = FaultReport(plan=fault_plan, policy=self.policy)
        self.last_result: RunResult | None = None

    # -- building blocks ---------------------------------------------------

    def build_plan(self) -> Plan:
        return build_scheduler(
            self.scheme, self.model, self.topo, self.config.batch,
            options=self.config.options,
        ).plan()

    def fault_free_reference(self) -> None:
        """One healthy iteration on the full topology; its plan seeds the
        first segment, its makespan anchors the goodput ratio and the
        heartbeat timing defaults."""
        self.plan = self.build_plan()
        healthy = Executor(
            self.topo, self.plan, cost_model=self.config.cost_model,
            options=ExecOptions(prefetch=self.config.prefetch),
        ).run()
        self.report.fault_free_makespan = healthy.makespan * self.iterations
        self.report.fault_free_samples = healthy.samples * self.iterations
        self.last_result = healthy
        if self.policy.detection is not None:
            self.detector_config = self.policy.detection.resolve(
                healthy.makespan
            )
            self.monitor = HeartbeatMonitor(
                self.fault_plan, self.detector_config, self.lost
            )

    def fail(self, reason: str) -> None:
        self.report.recovered = False
        self.report.failure_reason = reason

    def absorb_stats(self, result: RunResult) -> None:
        self.report.retried_bytes += result.stats.retried_volume()
        self.report.retry_events += result.stats.retry_events()

    # -- accounting helpers (the recovery policies compose these) ----------

    def charge_recovery(self, seconds: float) -> None:
        """Recovery *work*: detection, reloads, spare attach."""
        self.report.recovery_seconds += seconds
        self.offset += seconds

    def charge_stall(self, seconds: float) -> None:
        """Deliberate waiting (wait-rejoin's grace hold)."""
        self.report.stall_seconds += seconds
        self.offset += seconds

    def rollback(self, world_preserved: bool = False) -> None:
        """Un-credit iterations back to the last checkpoint this policy
        can still use.  ``world_preserved`` recoveries (wait-rejoin
        resume, spare substitution) keep the world's size and shape, so
        the checkpoint stays usable even for the rigid baselines —
        their layout assumption holds."""
        redo = (
            self.since_ckpt
            if self.policy.checkpoint_usable_after_loss or world_preserved
            else self.completed
        )
        redo = min(redo, self.completed)
        for _ in range(redo):
            _, wall, compute = self.credited.pop()
            self.report.lost_wall_seconds += wall
            self.report.lost_compute_seconds += compute
        self.completed -= redo
        self.since_ckpt = 0
        self.report.iterations_redone += redo

    def reload_seconds(self, topology: Topology) -> float:
        """State-reload stall onto ``topology``: the lost shard for
        partial-reload policies, the full state for cold restarts."""
        reload_bytes = self.state_bytes
        if self.policy.partial_reload:
            reload_bytes /= len(topology.gpus())
        return reload_bytes / _uplink_bandwidth(topology)

    # -- world transitions (the recovery-policy vocabulary) ----------------

    def shrink(self, device: str, at: float) -> bool:
        """Drop ``device``, roll back per the checkpoint asymmetry,
        reload state, and re-plan onto the survivors — today's recovery
        path, extracted."""
        self.rollback()
        try:
            survivor = self.topo.without_device(device)
            survivor.validate()
            recovery = self.reload_seconds(survivor)
            self.topo = survivor
            self.plan = self.build_plan()
        except _RECOVERY_FAILURES as exc:
            self.fail(f"lost {device} at t={at:.4g}s: {exc}")
            return False
        self.report.replans += 1
        self.charge_recovery(recovery)
        return True

    def rejoin(self, device: str, at: float) -> bool:
        """Grow the world back: re-attach ``device`` with its original
        wiring, reload its (wiped) shard, re-plan.  A world-*size*
        change, so the rigid baselines roll back like on a loss."""
        spec = self.initial_topo.devices.get(device)
        if spec is None:
            return True  # a return for a device this world never had
        self.rollback()
        try:
            grown = self.topo.with_device(
                spec, self.initial_topo.device_links(device)
            )
            grown.validate()
            recovery = self.reload_seconds(grown)
            self.topo = grown
            self.plan = self.build_plan()
        except _RECOVERY_FAILURES as exc:
            self.fail(f"rejoin of {device} at t={at:.4g}s failed: {exc}")
            return False
        self.lost.discard(device)
        self.report.replans += 1
        self.report.rejoins += 1
        self.charge_recovery(recovery)
        return True

    def resume_full(self, device: str) -> bool:
        """wait-rejoin's happy path: the world never shrank, the plan
        is unchanged, the checkpoint stayed usable for every scheme —
        pay only the rejoiner's state reload (plus the stall already
        charged) and carry on."""
        self.rollback(world_preserved=True)
        try:
            recovery = self.reload_seconds(self.topo)
        except _RECOVERY_FAILURES as exc:
            self.fail(f"resume after {device} rejoin failed: {exc}")
            return False
        self.lost.discard(device)
        self.report.rejoins += 1
        self.charge_recovery(recovery)
        return True

    def substitute(self, device: str, spare: SpareDevice) -> bool:
        """Swap ``spare`` into ``device``'s position: same size, same
        shape, checkpoints stay usable; pay attach + shard reload and
        one re-plan (the device names changed)."""
        old = self.topo.devices.get(device)
        if old is None:
            self.fail(f"cannot substitute for unknown device {device!r}")
            return False
        self.rollback(world_preserved=True)
        try:
            swapped = self.topo.substitute(
                device,
                DeviceSpec(
                    spare.device, old.kind, old.memory_bytes,
                    old.flops_per_sec,
                ),
            )
            swapped.validate()
            recovery = (
                self.policy.spare_attach_seconds + self.reload_seconds(swapped)
            )
            self.topo = swapped
            self.plan = self.build_plan()
        except _RECOVERY_FAILURES as exc:
            self.fail(
                f"substituting spare {spare.device!r} for {device!r} "
                f"failed: {exc}"
            )
            return False
        self.report.replans += 1
        self.report.spares_used += 1
        self.charge_recovery(recovery)
        return True

    def claim_return(
        self, device: str, deadline: float
    ) -> DeviceReturn | None:
        """Consume the first pending return of ``device`` due by
        ``deadline`` (wait-rejoin's grace check)."""
        for ret in self.pending_returns:
            if ret.device == device and ret.at <= deadline:
                self.pending_returns.remove(ret)
                return ret
        return None

    def claim_spare(self) -> SpareDevice | None:
        """Consume the next cold standby, FIFO."""
        return self.spares.pop(0) if self.spares else None

    # -- loss handling -----------------------------------------------------

    def strike(self, device: str, at_global: float) -> bool:
        """Absorb losing ``device`` at global time ``at_global``:
        charge detection, ledger the incident, dispatch the recovery
        policy; returns False when the run is over."""
        # Consume the plan event that caused this strike: once the
        # device rejoins, a stale pending entry must not re-kill it
        # (a genuinely later second loss still will).
        for pending_loss in self.pending:
            if pending_loss.device == device and pending_loss.at <= at_global:
                self.pending.remove(pending_loss)
                break
        self.report.device_losses.append((device, at_global))
        self.lost.add(device)
        incident = IncidentReport(
            device=device, kind="loss",
            occurred_at=at_global, suspected_at=at_global,
        )
        if self.detector_config is not None:
            suspected, confirmed = death_detection(
                self.fault_plan, device, at_global, self.detector_config
            )
            incident.suspected_at = suspected
            incident.confirmed_at = confirmed
            incident.detector = self.detector_config.kind
            latency = max(0.0, confirmed - at_global)
        else:
            latency = self.policy.detection_delay
            incident.confirmed_at = at_global + latency
        self.report.incidents.append(incident)
        self.charge_recovery(latency)
        if not self.recovery.on_loss(self, device, at_global):
            return False
        incident.recovered_at = self.offset
        incident.action = self.recovery.name
        return True

    def drain_pending_events(self) -> bool:
        """Losses and returns whose global time already passed while no
        segment was running (checkpoint stalls, recovery windows,
        grace holds) still take effect — losses just abort no in-flight
        work, and returns re-bind at this boundary."""
        while True:
            loss = (
                self.pending[0]
                if self.pending and self.pending[0].at <= self.offset
                else None
            )
            ret = (
                self.pending_returns[0]
                if self.pending_returns
                and self.pending_returns[0].at <= self.offset
                else None
            )
            if loss is not None and (ret is None or loss.at <= ret.at):
                self.pending.popleft()
                if loss.device in self.lost or loss.device not in self.topo.devices:
                    continue
                if not self.strike(loss.device, loss.at):
                    return False
            elif ret is not None:
                self.pending_returns.pop(0)
                if ret.device not in self.lost:
                    continue
                if not self.recovery.on_return(self, ret):
                    return False
            else:
                return True

    # -- the loop ----------------------------------------------------------

    def run_segment(self, index: int) -> bool:
        injector = FaultInjector(
            self.fault_plan, self.policy,
            offset=self.offset, rng=self.rng, lost=self.lost,
            monitor=self.monitor,
        )
        executor = Executor(
            self.topo, self.plan, cost_model=self.config.cost_model,
            options=ExecOptions(prefetch=self.config.prefetch, injector=injector),
        )
        try:
            result = executor.run()
        except DeviceLostError as exc:
            partial = executor.partial_result()
            self.absorb_stats(partial)
            self.report.segments.append(SegmentReport(
                index=index, iteration=self.completed, result=partial,
                plan=self.plan, topology=self.topo,
                started_at=self.offset, duration=exc.at,
                aborted=True, lost_device=exc.device,
            ))
            self.report.lost_wall_seconds += exc.at
            self.report.lost_compute_seconds += _compute_seconds(partial)
            self.offset += exc.at
            self.last_result = partial
            return self.strike(exc.device, self.offset)
        except _RECOVERY_FAILURES as exc:
            self.fail(str(exc))
            return False

        self.absorb_stats(result)
        self.report.segments.append(SegmentReport(
            index=index, iteration=self.completed, result=result,
            plan=self.plan, topology=self.topo,
            started_at=self.offset, duration=result.makespan,
        ))
        self.offset += result.makespan
        self.credited.append(
            (result.samples, result.makespan, _compute_seconds(result))
        )
        self.completed += 1
        self.since_ckpt += 1
        self.last_result = result

        # Periodic checkpoint: stream training state to host DRAM over
        # the uplink.  Skipped after the final iteration — there is no
        # more work a restart could need it for.
        if (
            self.policy.checkpoint_every > 0
            and self.since_ckpt >= self.policy.checkpoint_every
            and self.completed < self.iterations
        ):
            cost = self.state_bytes / _uplink_bandwidth(self.topo)
            self.report.checkpoints += 1
            self.report.checkpoint_seconds += cost
            self.offset += cost
            self.since_ckpt = 0
        return True

    def collect_suspicions(self) -> None:
        """Post-run scan for detector episodes that never confirmed —
        the straggler-induced false positives.  Confirmed deaths were
        already ledgered by :meth:`strike` (same pure functions, same
        times), so only exonerated episodes are added here."""
        if self.detector_config is None:
            return
        horizon = self.report.total_makespan
        for gpu in self.initial_topo.gpus():
            for ep in scan_device(
                self.fault_plan, gpu.name, self.detector_config, horizon
            ):
                if not ep.false_positive:
                    continue
                self.report.incidents.append(IncidentReport(
                    device=ep.device, kind="suspicion",
                    occurred_at=ep.suspected_at,
                    suspected_at=ep.suspected_at,
                    exonerated_at=ep.exonerated_at,
                    false_positive=True,
                    detector=self.detector_config.kind,
                ))

    def execute(self) -> RunResult:
        self.fault_free_reference()
        # Finite by construction (each loss strikes once, each return
        # rejoins at most once), but guard the loop against accounting
        # bugs turning it into a spin.
        max_segments = (self.iterations + 1) * (
            len(self.pending) + len(self.pending_returns) + 2
        )
        index = 0
        while self.completed < self.iterations and self.report.recovered:
            if index >= max_segments:
                raise FaultError(
                    f"resilient run exceeded {max_segments} segments for "
                    f"{self.iterations} iteration(s); accounting bug?"
                )
            if not self.drain_pending_events():
                break
            if not self.run_segment(index):
                break
            index += 1

        self.report.total_makespan = self.offset
        self.report.samples = sum(s for s, _, _ in self.credited)
        if self.monitor is not None:
            self.report.heartbeats_observed = len(self.monitor.observed)
        self.collect_suspicions()
        self.report.incidents.sort(key=lambda i: (i.suspected_at, i.device))
        result = replace(
            self.last_result,
            makespan=self.report.total_makespan,
            samples=self.report.samples,
        )
        result.faults = self.report
        return result


def run_resilient(
    model: ModelGraph,
    topology: Topology,
    config: "HarmonyConfig",
    fault_plan: FaultPlan,
    policy: ResiliencePolicy | None = None,
    iterations: int = 1,
) -> RunResult:
    """Execute ``iterations`` under ``fault_plan`` with checkpointing,
    retries, failure detection, and policy-driven recovery; never
    raises on an injected fault — inspect ``result.faults.recovered``.
    Deterministic: the same (model, topology, config, fault_plan,
    policy) replays byte-identically."""
    return _ResilientRun(
        model, topology, config, fault_plan, policy, iterations
    ).execute()
