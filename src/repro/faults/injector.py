"""Runtime fault injection: the hooks the simulator consults.

A :class:`FaultInjector` adapts one :class:`~repro.faults.model.FaultPlan`
(global times) to one execution *segment* (local engine times starting
at ``offset``).  The executor asks it to stretch compute durations
(stragglers); the transfer engine asks it for transfer timing under
link degradation and flaps, and whether an attempt fails transiently;
:meth:`arm` schedules device-loss raises and memory-pressure windows
on the engine as *daemon* events — they strike only if real work is
still running when their time comes.

The injector deliberately owns no RNG of its own: the resilient runner
threads one :func:`random.Random` (seeded by the plan) through every
segment, so transient-failure draws continue the same stream across
re-plans and the whole faulty run replays byte-identically.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable

from repro.errors import DeviceLostError, FaultError
from repro.faults.model import FaultPlan
from repro.faults.resilience import ResiliencePolicy

if TYPE_CHECKING:
    from repro.faults.detection import HeartbeatMonitor
    from repro.hardware.topology import Route
    from repro.memory.allocator import DevicePool
    from repro.sim.engine import Engine


class FaultInjector:
    """Injects one fault plan into one execution segment."""

    def __init__(
        self,
        plan: FaultPlan,
        policy: ResiliencePolicy | None = None,
        offset: float = 0.0,
        rng: random.Random | None = None,
        lost: Iterable[str] = (),
        monitor: "HeartbeatMonitor | None" = None,
    ):
        self.plan = plan
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.offset = offset
        self.rng = rng if rng is not None else plan.rng()
        #: Optional heartbeat monitor (failure detection); armed on the
        #: segment's engine alongside the plan's discrete events.
        self.monitor = monitor
        #: Devices already lost in earlier segments: their (consumed)
        #: loss events must not re-fire.
        self.lost = set(lost)
        self._stragglers = plan.stragglers()
        self._transients = plan.transient_errors()
        self._degradations: dict[str, list] = {}
        for deg in plan.link_degradations():
            self._degradations.setdefault(deg.link, []).append(deg)
        self._flaps: dict[str, list] = {}
        for flap in plan.link_flaps():
            self._flaps.setdefault(flap.link, []).append(flap)

    # -- arming (device loss, memory pressure) -----------------------------

    def arm(self, engine: "Engine", pools: dict[str, "DevicePool"]) -> None:
        """Schedule the plan's discrete events on a segment's engine.

        Everything is scheduled as a daemon event: if the segment's real
        work drains first, the fault simply never struck this segment.
        """
        if self.monitor is not None:
            self.monitor.arm(engine, pools.keys(), self.offset)
        for loss in self.plan.device_losses():
            if loss.device in self.lost or loss.device not in pools:
                continue
            local = loss.at - self.offset
            if local < 0:
                continue  # struck before this segment; the runner handled it

            def strike(device: str = loss.device) -> None:
                raise DeviceLostError(device, engine.now)

            engine.at(local, strike, daemon=True)

        for mp in self.plan.memory_pressures():
            pool = pools.get(mp.device)
            if pool is None or mp.end <= self.offset:
                continue
            amount = mp.fraction * pool.capacity
            start_local = max(0.0, mp.start - self.offset)
            engine.at(
                start_local,
                lambda pool=pool, a=amount: pool.add_pressure(a),
                daemon=True,
            )
            end_local = mp.end - self.offset
            if end_local != float("inf"):
                engine.at(
                    end_local,
                    lambda pool=pool, a=amount: pool.add_pressure(-a),
                    daemon=True,
                )

    # -- compute -----------------------------------------------------------

    def compute_duration(self, device: str, base: float, now: float) -> float:
        """Straggler-adjusted duration for compute started at local
        ``now`` (the slowdown active at start applies to the whole
        task — simulated kernels do not migrate mid-flight)."""
        t = self.offset + now
        factor = 1.0
        for s in self._stragglers:
            if s.device == device and s.active(t):
                factor *= s.slowdown
        return base * factor

    # -- transfers ---------------------------------------------------------

    def transfer_timing(
        self, route: "Route", nbytes: float, now: float
    ) -> tuple[float, float]:
        """(earliest local start, duration) for a transfer under the
        currently-active link faults.

        Flapped links defer the start past the flap window (chained
        flaps are followed to a fixed point); degraded links divide the
        route's bottleneck bandwidth by the active factor."""
        ready = now
        for _ in range(64):
            deferred = ready
            for link in route.links:
                for flap in self._flaps.get(link.name, ()):
                    if flap.active(self.offset + deferred):
                        deferred = max(deferred, flap.end - self.offset)
            if deferred == ready:
                break
            ready = deferred
        else:
            raise FaultError(
                f"route {route.src}->{route.dst}: link flaps never clear"
            )
        if nbytes == 0 or not route.links:
            return ready, 0.0
        t = self.offset + ready
        bandwidth = float("inf")
        for link in route.links:
            eff = link.bandwidth_bytes_per_sec
            for deg in self._degradations.get(link.name, ()):
                if deg.active(t):
                    eff /= deg.factor
            bandwidth = min(bandwidth, eff)
        return ready, route.total_latency + nbytes / bandwidth

    def transfer_fails(self, route: "Route", start: float) -> bool:
        """Seeded draw: does a transfer attempt starting at local
        ``start`` fail transiently?  Only consumes RNG when a transient
        spec is active, so fault-free windows leave the stream alone."""
        t = self.offset + start
        ok = 1.0
        link_names = {link.name for link in route.links}
        for spec in self._transients:
            if not spec.active(t):
                continue
            if spec.link is not None and spec.link not in link_names:
                continue
            ok *= 1.0 - spec.probability
        p = 1.0 - ok
        if p <= 0.0:
            return False
        return self.rng.random() < p

    def backoff_delay(self, attempt: int) -> float:
        return self.policy.backoff_delay(attempt)

    @property
    def max_retries(self) -> int:
        return self.policy.max_retries
