"""Resilience policy: how a run absorbs injected faults.

Two families of knobs:

* **transfer retries** — transient transfer failures are retried with
  exponential backoff (the failed attempt still occupied the wire; its
  bytes are ledgered separately in
  :class:`~repro.memory.stats.SwapStats`);
* **checkpoint / restart** — state is checkpointed every
  ``checkpoint_every`` iterations (the write-back cost is charged to
  wall-clock), and on :class:`~repro.errors.DeviceLostError` the run
  restarts from the last *usable* checkpoint on a re-planned schedule
  over the surviving devices.

The Harmony/baseline asymmetry lives here, not in the fault model.
Harmony binds tasks to devices late (paper §4), so after a loss it
re-plans the remaining work onto the survivors, resumes from the last
checkpoint, and reloads only the lost device's shard of the training
state.  The rigid baselines pin work to devices up front: their
checkpoints assume a fixed world size, so a loss forces a full restart
of uncheckpointed *and* checkpointed iterations in the current segment
and a full-state reload — this is what "rigid schedules collapse,
late binding degrades" means operationally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faults.detection import DetectorConfig


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for absorbing faults.

    Attributes
    ----------
    max_retries:
        Transfer attempts before a transient failure becomes permanent
        (a :class:`~repro.errors.FaultError`).
    backoff_base / backoff_factor:
        Exponential backoff: attempt ``k`` waits
        ``backoff_base * backoff_factor**k`` simulated seconds before
        re-occupying the link.
    checkpoint_every:
        Checkpoint the training state every this many completed
        iterations (0 disables checkpointing).
    checkpoint_usable_after_loss:
        Whether a checkpoint taken at world size N can seed a restart
        at world size N-1.  True for Harmony (late binding re-plans the
        work), False for the rigid baselines (their checkpoint layout
        bakes in the device assignment).
    partial_reload:
        On restart, reload only the lost device's share of the training
        state (True: Harmony — survivors keep their resident state)
        or the full state (False: baselines restart cold).
    detection_delay:
        Seconds between the loss and the runtime noticing it — the
        legacy scalar, used only when ``detection`` is ``None``.
    detection:
        Simulated failure detection (:class:`~repro.faults.detection.
        DetectorConfig`): heartbeats, suspicion, and confirmation
        replace the scalar delay, and straggler-induced false
        positives become observable.  ``None`` keeps instant (or
        scalar-delayed) detection and byte-identical legacy replays.
    recovery:
        Name in :data:`~repro.faults.recovery.RECOVERY_REGISTRY`
        choosing what world to recover onto (restart-replan,
        wait-rejoin, spare-substitute, degrade-continue).
    grace_window:
        ``wait-rejoin``'s hold: how long a stalled world waits for a
        :class:`~repro.faults.model.DeviceReturn` before shrinking.
    spare_attach_seconds:
        Fixed cost of powering up and attaching one spare (bus rescan,
        driver init) on top of the state reload.
    """

    max_retries: int = 8
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    checkpoint_every: int = 1
    checkpoint_usable_after_loss: bool = True
    partial_reload: bool = True
    detection_delay: float = 0.0
    detection: DetectorConfig | None = None
    recovery: str = "restart-replan"
    grace_window: float = 0.0
    spare_attach_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ConfigError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if self.detection_delay < 0:
            raise ConfigError("detection_delay must be >= 0")
        if self.grace_window < 0:
            raise ConfigError("grace_window must be >= 0")
        if self.spare_attach_seconds < 0:
            raise ConfigError("spare_attach_seconds must be >= 0")
        # Imported lazily: the registry module depends on the fault
        # model, not on this one, so the late import only breaks a
        # would-be cycle, never correctness.
        from repro.faults.recovery import build_recovery

        build_recovery(self.recovery)  # raises ConfigError with valid names

    def backoff_delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor**attempt

    @staticmethod
    def for_scheme(scheme: str) -> "ResiliencePolicy":
        """Default policy for a parallelism scheme.

        Harmony schemes re-plan and reload incrementally; the baseline
        schemes (including ``single``) restart their current segment
        cold with a full-state reload.
        """
        if scheme.startswith("harmony"):
            return ResiliencePolicy()
        return ResiliencePolicy(
            checkpoint_usable_after_loss=False, partial_reload=False
        )
