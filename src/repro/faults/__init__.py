"""Fault injection, failure detection & elastic recovery.

A seed-driven :class:`FaultPlan` describes what goes wrong (device
losses and returns, spare standbys, link degradation and flaps,
transient transfer errors, compute stragglers, host-memory pressure);
the :class:`FaultInjector` injects it into the discrete-event
simulation; :func:`run_resilient` executes a multi-iteration run under
the plan with retry/backoff, checkpoint accounting, simulated failure
detection (:data:`DETECTOR_REGISTRY`), and a pluggable recovery policy
(:data:`RECOVERY_REGISTRY`: restart-replan, wait-rejoin,
spare-substitute, degrade-continue), reporting lost work, retried
bytes, per-incident MTTR, and goodput in a :class:`FaultReport`.
Everything replays byte-identically from the plan's seed.
"""

from repro.faults.detection import (
    DETECTOR_REGISTRY,
    DetectorConfig,
    HeartbeatMonitor,
    SuspicionEpisode,
    build_detector,
    detection_latency,
    detector_names,
    heartbeat_times,
    scan_device,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    ComputeStraggler,
    DeviceLoss,
    DeviceReturn,
    Fault,
    FaultPlan,
    LinkDegradation,
    LinkFlap,
    MemoryPressure,
    SpareDevice,
    TransientTransferError,
    mttf_loss_plan,
    random_fault_plan,
)
from repro.faults.recovery import (
    RECOVERY_REGISTRY,
    RecoveryPolicy,
    build_recovery,
    recovery_names,
)
from repro.faults.report import FaultReport, IncidentReport, SegmentReport
from repro.faults.resilience import ResiliencePolicy
from repro.faults.runner import run_resilient

__all__ = [
    "ComputeStraggler",
    "DETECTOR_REGISTRY",
    "DetectorConfig",
    "DeviceLoss",
    "DeviceReturn",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "HeartbeatMonitor",
    "IncidentReport",
    "LinkDegradation",
    "LinkFlap",
    "MemoryPressure",
    "RECOVERY_REGISTRY",
    "RecoveryPolicy",
    "ResiliencePolicy",
    "SegmentReport",
    "SpareDevice",
    "SuspicionEpisode",
    "TransientTransferError",
    "build_detector",
    "build_recovery",
    "detection_latency",
    "detector_names",
    "heartbeat_times",
    "mttf_loss_plan",
    "random_fault_plan",
    "recovery_names",
    "run_resilient",
    "scan_device",
]
