"""Fault injection & graceful degradation.

A seed-driven :class:`FaultPlan` describes what goes wrong (device
losses, link degradation and flaps, transient transfer errors, compute
stragglers, host-memory pressure); the :class:`FaultInjector` injects
it into the discrete-event simulation; :func:`run_resilient` executes a
multi-iteration run under the plan with retry/backoff, checkpoint
accounting, and mid-run re-planning onto the survivors, reporting lost
work, retried bytes, recovery time, and goodput in a
:class:`FaultReport`.  Everything replays byte-identically from the
plan's seed.
"""

from repro.faults.injector import FaultInjector
from repro.faults.model import (
    ComputeStraggler,
    DeviceLoss,
    Fault,
    FaultPlan,
    LinkDegradation,
    LinkFlap,
    MemoryPressure,
    TransientTransferError,
    mttf_loss_plan,
    random_fault_plan,
)
from repro.faults.report import FaultReport, SegmentReport
from repro.faults.resilience import ResiliencePolicy
from repro.faults.runner import run_resilient

__all__ = [
    "ComputeStraggler",
    "DeviceLoss",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "LinkDegradation",
    "LinkFlap",
    "MemoryPressure",
    "ResiliencePolicy",
    "SegmentReport",
    "TransientTransferError",
    "mttf_loss_plan",
    "random_fault_plan",
    "run_resilient",
]
