"""Failure detection: heartbeats, suspicion, confirmation, exoneration.

Real runtimes never observe "the GPU died at t" — they observe silence.
Each device emits a heartbeat every ``interval`` simulated seconds; a
:class:`ComputeStraggler` window stretches the spacing by its slowdown
(the throttled device services its heartbeat timer late, exactly like
its kernels), and a :class:`DeviceLoss` silences the device for good.
A *detector* watches the gaps and moves each device through the
suspicion lifecycle::

    healthy --(gap exceeds threshold)--> suspected
    suspected --(heartbeat arrives)----> exonerated   (false positive)
    suspected --(confirm window passes)-> confirmed dead -> recovery

Two detectors ship in :data:`DETECTOR_REGISTRY`, mirroring the
scheduler zoo's registry discipline:

``fixed-timeout``
    Suspects after a constant silence (``timeout`` seconds).  Simple,
    but a straggler slower than ``timeout / interval`` false-positives
    on *every* stretched gap.
``phi-accrual``
    Adaptive, in the spirit of the phi-accrual detector: the suspicion
    threshold is ``phi_threshold`` times the mean of the last
    ``window`` observed gaps.  The first stretched gap of a straggler
    window still trips it (nothing has been learned yet), but the
    stretched gap then enters the window, the mean rises, and
    subsequent stretched gaps pass — one deterministic false positive,
    then adaptation.

Everything here is a pure function of the :class:`FaultPlan` and the
:class:`DetectorConfig`, so suspicion times replay byte-identically
under the plan's seed.  The :class:`HeartbeatMonitor` additionally
arms the emissions as *daemon* events on each segment's engine (they
tick only while real work runs, like every other injected event), so
heartbeats genuinely flow through the simulation and are ledgered in
the :class:`~repro.faults.report.FaultReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError
from repro.faults.model import FaultPlan

if TYPE_CHECKING:
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class DetectorConfig:
    """Heartbeat and detector knobs.

    Zero-valued timing fields mean "derive from the workload": the
    resilient runner calls :meth:`resolve` with the fault-free
    iteration time, which fills ``interval`` with a quarter iteration,
    ``timeout`` with four intervals, and ``confirm`` with two — so one
    config works across models without hand-tuning absolute seconds.
    """

    kind: str = "fixed-timeout"
    #: Heartbeat period, simulated seconds (0 -> iteration time / 4).
    interval: float = 0.0
    #: fixed-timeout: silence that triggers suspicion (0 -> 4x interval).
    timeout: float = 0.0
    #: Suspicion -> confirmed-dead wait (0 -> 2x interval).
    confirm: float = 0.0
    #: phi-accrual: suspect when a gap exceeds this multiple of the
    #: mean recent gap.
    phi_threshold: float = 3.0
    #: phi-accrual: how many recent gaps the mean adapts over.
    window: int = 8

    def __post_init__(self) -> None:
        for field_name in ("interval", "timeout", "confirm"):
            if getattr(self, field_name) < 0:
                raise ConfigError(
                    f"DetectorConfig.{field_name} must be >= 0, got "
                    f"{getattr(self, field_name)}"
                )
        if self.phi_threshold <= 1.0:
            raise ConfigError(
                f"DetectorConfig.phi_threshold must be > 1 (a threshold at "
                f"or below the expected gap suspects healthy devices), got "
                f"{self.phi_threshold}"
            )
        if self.window < 1:
            raise ConfigError(
                f"DetectorConfig.window must be >= 1, got {self.window}"
            )

    def resolve(self, iteration_time: float) -> "DetectorConfig":
        """Fill derived defaults from the fault-free iteration time."""
        if iteration_time <= 0:
            raise ConfigError(
                f"iteration time must be positive to derive heartbeat "
                f"timing, got {iteration_time}"
            )
        interval = self.interval if self.interval > 0 else iteration_time / 4.0
        return replace(
            self,
            interval=interval,
            timeout=self.timeout if self.timeout > 0 else 4.0 * interval,
            confirm=self.confirm if self.confirm > 0 else 2.0 * interval,
        )

    @property
    def resolved(self) -> bool:
        return self.interval > 0 and self.timeout > 0 and self.confirm > 0


class FixedTimeoutDetector:
    """Suspect after a constant silence, however noisy the device."""

    name = "fixed-timeout"

    def __init__(self, config: DetectorConfig):
        self.config = config

    def threshold(self, gaps: list[float]) -> float:
        """Silence after the last heartbeat that triggers suspicion."""
        return self.config.timeout


class PhiAccrualDetector:
    """Adaptive suspicion: threshold tracks the observed gap mean."""

    name = "phi-accrual"

    def __init__(self, config: DetectorConfig):
        self.config = config

    def threshold(self, gaps: list[float]) -> float:
        recent = gaps[-self.config.window:]
        expected = (
            sum(recent) / len(recent) if recent else self.config.interval
        )
        return self.config.phi_threshold * expected


#: Detector name -> class.  Mirrors ``SCHEDULER_REGISTRY``: the CLI,
#: docs table, and tests enumerate this instead of hardcoding names.
DETECTOR_REGISTRY: dict[str, type] = {
    FixedTimeoutDetector.name: FixedTimeoutDetector,
    PhiAccrualDetector.name: PhiAccrualDetector,
}


def detector_names() -> tuple[str, ...]:
    return tuple(DETECTOR_REGISTRY)


def build_detector(config: DetectorConfig):
    cls = DETECTOR_REGISTRY.get(config.kind)
    if cls is None:
        raise ConfigError(
            f"unknown detector {config.kind!r}; valid detectors: "
            + ", ".join(detector_names())
        )
    if not config.resolved:
        raise ConfigError(
            "DetectorConfig must be resolved (call resolve(iteration_time)) "
            "before building a detector"
        )
    return cls(config)


# -- the deterministic heartbeat stream ---------------------------------------


def straggler_factor(plan: FaultPlan, device: str, t: float) -> float:
    """Combined slowdown of every straggler window active on ``device``
    at global time ``t`` (1.0 when healthy)."""
    factor = 1.0
    for s in plan.stragglers():
        if s.device == device and s.active(t):
            factor *= s.slowdown
    return factor


def heartbeat_times(
    plan: FaultPlan, device: str, horizon: float, interval: float
) -> list[float]:
    """Global emission times for ``device``'s heartbeats up to
    ``horizon``: every ``interval`` seconds, stretched by the straggler
    slowdown active when the timer starts, silenced forever at the
    device's :class:`DeviceLoss` (if any).  Pure and deterministic."""
    if interval <= 0:
        raise ConfigError(f"heartbeat interval must be positive, got {interval}")
    died_at = min(
        (l.at for l in plan.device_losses() if l.device == device),
        default=math.inf,
    )
    times = [0.0]
    t = 0.0
    while True:
        t += interval * straggler_factor(plan, device, t)
        if t >= died_at or t > horizon:
            break
        times.append(t)
    return times


@dataclass(frozen=True)
class SuspicionEpisode:
    """One pass of a device through the suspicion lifecycle."""

    device: str
    suspected_at: float
    #: Heartbeat resumed: the suspicion was a false positive.
    exonerated_at: float | None = None
    #: Silence outlived the confirm window: declared dead.
    confirmed_at: float | None = None

    @property
    def false_positive(self) -> bool:
        return self.exonerated_at is not None


def scan_device(
    plan: FaultPlan, device: str, config: DetectorConfig, horizon: float
) -> list[SuspicionEpisode]:
    """Run the detector over ``device``'s heartbeat stream up to
    ``horizon``: every gap that exceeds the (possibly adaptive)
    threshold opens a suspicion episode, exonerated when the next
    heartbeat lands; a device that goes permanently silent gets a
    trailing episode confirmed ``config.confirm`` after suspicion."""
    detector = build_detector(config)
    died_at = min(
        (l.at for l in plan.device_losses() if l.device == device),
        default=math.inf,
    )
    emissions = heartbeat_times(plan, device, horizon, config.interval)
    episodes: list[SuspicionEpisode] = []
    gaps: list[float] = []
    for prev, nxt in zip(emissions, emissions[1:]):
        gap = nxt - prev
        limit = detector.threshold(gaps)
        if gap > limit:
            episodes.append(SuspicionEpisode(
                device, suspected_at=prev + limit, exonerated_at=nxt,
            ))
        # The stretched gap enters the history either way: this is the
        # adaptation that stops phi-accrual re-suspecting a straggler.
        gaps.append(gap)
    if died_at < math.inf and died_at <= horizon:
        suspected = emissions[-1] + detector.threshold(gaps)
        episodes.append(SuspicionEpisode(
            device, suspected_at=suspected,
            confirmed_at=suspected + config.confirm,
        ))
    return episodes


def death_detection(
    plan: FaultPlan, device: str, died_at: float, config: DetectorConfig
) -> tuple[float, float]:
    """(suspected_at, confirmed_at) for a device that dies at global
    ``died_at``: silence after the last pre-death heartbeat trips the
    (possibly adapted) threshold, and the confirm window seals it."""
    detector = build_detector(config)
    emissions = heartbeat_times(plan, device, died_at, config.interval)
    gaps = [b - a for a, b in zip(emissions, emissions[1:])]
    # Feed the detector only the gaps it had fully observed pre-death.
    suspected = emissions[-1] + detector.threshold(gaps)
    return suspected, suspected + config.confirm


def detection_latency(
    plan: FaultPlan, device: str, died_at: float, config: DetectorConfig
) -> float:
    """Seconds between the physical loss and the detector *confirming*
    it — what the scalar ``ResiliencePolicy.detection_delay`` becomes
    once detection is simulated.  A device already under (false)
    suspicion when it dies is confirmed faster, so the latency is
    clamped at zero rather than going negative."""
    _, confirmed = death_detection(plan, device, died_at, config)
    return max(0.0, confirmed - died_at)


# -- heartbeats as daemon engine events ---------------------------------------


class HeartbeatMonitor:
    """Arms per-device heartbeat emissions on each segment's engine.

    Emissions are daemon events: they tick only while non-daemon work
    remains, so a drained segment never idles waiting on heartbeats.
    The monitor is a run-scoped ledger — ``observed`` accumulates
    ``(device, global time)`` across every segment, and the shared
    ``lost`` set (the resilient runner's) keeps dead devices silent in
    later segments.  Decisions come from the pure scan above; the
    monitor exists so the heartbeat traffic is *real* in the
    simulation and auditable after it.
    """

    def __init__(
        self, plan: FaultPlan, config: DetectorConfig, lost: set[str],
    ):
        if not config.resolved:
            raise ConfigError(
                "HeartbeatMonitor needs a resolved DetectorConfig"
            )
        self.plan = plan
        self.config = config
        self.lost = lost  # shared with the resilient runner, not copied
        self.observed: list[tuple[str, float]] = []

    def arm(
        self, engine: "Engine", devices: Iterable[str], offset: float
    ) -> None:
        for device in sorted(devices):
            if device in self.lost:
                continue
            self._schedule(engine, device, offset, 0.0)

    def _schedule(
        self, engine: "Engine", device: str, offset: float, local: float
    ) -> None:
        def beat() -> None:
            now_global = offset + engine.now
            self.observed.append((device, now_global))
            gap = self.config.interval * straggler_factor(
                self.plan, device, now_global
            )
            engine.after(gap, beat, daemon=True)

        engine.at(local, beat, daemon=True)
