"""Fault accounting: what the faults cost, segment by segment.

A resilient run executes as a sequence of *segments* — one per
iteration attempt, each its own discrete-event simulation — separated
by checkpoint stalls and recovery windows.  :class:`SegmentReport`
keeps each segment's artifacts (result, plan, topology, global start
time) so the audit layer can re-check faulty runs; :class:`FaultReport`
aggregates them into the quantities the degradation experiments plot:
lost work, retried bytes, recovery time, and goodput versus the
fault-free makespan.

:class:`IncidentReport` is the per-incident ledger the detection and
recovery layers fill: when a device was suspected, confirmed,
exonerated (false positives), and recovered, and which policy acted —
the raw material for the MTTR x policy x scheme tables.  The report
and its incidents round-trip through ``to_json``/``from_json`` so
serve jobs and supervisor journals can ledger them; the simulation
artifacts (segment results, plans, topologies) deliberately do not
serialize and come back ``None``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.units import GB, fmt_time

if TYPE_CHECKING:
    from repro.faults.model import FaultPlan
    from repro.faults.resilience import ResiliencePolicy
    from repro.hardware.topology import Topology
    from repro.sim.plan import Plan
    from repro.sim.result import RunResult


@dataclass
class SegmentReport:
    """One executed segment (an iteration attempt) of a resilient run."""

    index: int
    iteration: int
    result: "RunResult"
    plan: "Plan"
    topology: "Topology"
    started_at: float            # global time the segment began
    duration: float              # wall time the segment consumed
    aborted: bool = False
    lost_device: str | None = None

    @property
    def completed(self) -> bool:
        return not self.aborted


@dataclass
class IncidentReport:
    """One device incident through the detect -> recover lifecycle.

    ``kind`` is ``"loss"`` for a real :class:`DeviceLoss` and
    ``"suspicion"`` for a detector episode that never confirmed
    (always ``false_positive=True``).  Times are global simulated
    seconds; ``None`` means the stage never happened.
    """

    device: str
    kind: str
    #: When the underlying event physically happened (the loss time,
    #: or the start of the suspicious silence for a false positive).
    occurred_at: float
    suspected_at: float
    confirmed_at: float | None = None
    exonerated_at: float | None = None
    recovered_at: float | None = None
    #: Recovery-policy name that handled the confirmed loss.
    action: str | None = None
    false_positive: bool = False
    #: Detector that produced the suspicion ("none" = instant/scalar
    #: detection, no heartbeat machinery).
    detector: str = "none"

    @property
    def mttr(self) -> float | None:
        """Time from the physical loss to recovery completing (the
        world running again), ``None`` while unrecovered or for false
        positives."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.occurred_at


@dataclass
class FaultReport:
    """Aggregate outcome of a resilient (fault-injected) run."""

    plan: "FaultPlan"
    policy: "ResiliencePolicy"
    segments: list[SegmentReport] = field(default_factory=list)
    #: (device, global time) for every loss that actually struck.
    device_losses: list[tuple[str, float]] = field(default_factory=list)
    #: Times ``build_scheduler`` was re-invoked mid-run on survivors.
    replans: int = 0
    #: Iterations that had completed but were rolled back by a loss.
    iterations_redone: int = 0
    #: Wall-clock lost to rolled-back work (completed-but-rolled-back
    #: iterations plus the partial iteration in flight at each loss).
    lost_wall_seconds: float = 0.0
    #: Compute-seconds of traced work discarded by losses.
    lost_compute_seconds: float = 0.0
    #: Bytes re-sent after transient transfer failures (wire time the
    #: failed attempts wasted; also in each segment's SwapStats ledger).
    retried_bytes: float = 0.0
    retry_events: int = 0
    checkpoints: int = 0
    checkpoint_seconds: float = 0.0
    #: Detection + state-reload + spare-attach time across recoveries.
    recovery_seconds: float = 0.0
    #: Deliberate waits (wait-rejoin grace holds): the world stalled on
    #: purpose, distinct from recovery work.
    stall_seconds: float = 0.0
    #: Per-incident detection/recovery lifecycle records, ordered by
    #: suspicion time.
    incidents: list[IncidentReport] = field(default_factory=list)
    #: Lost devices that rejoined the world (DeviceReturn honored).
    rejoins: int = 0
    #: Cold standbys substituted in for dead devices.
    spares_used: int = 0
    #: Heartbeat emissions that actually ticked through segment engines
    #: (daemon events) — the monitor's ledger, 0 without detection.
    heartbeats_observed: int = 0
    #: Makespan of the same config with no faults injected.
    fault_free_makespan: float = 0.0
    #: End-to-end wall-clock of the faulty run (segments + checkpoints
    #: + recoveries).
    total_makespan: float = 0.0
    #: Samples from iterations that were credited (completed and never
    #: rolled back).
    samples: int = 0
    fault_free_samples: int = 0
    recovered: bool = True
    failure_reason: str | None = None

    # -- derived metrics ---------------------------------------------------

    @property
    def goodput(self) -> float:
        """Credited samples per second of total wall-clock."""
        if self.total_makespan <= 0:
            return 0.0
        return self.samples / self.total_makespan

    @property
    def fault_free_goodput(self) -> float:
        if self.fault_free_makespan <= 0:
            return 0.0
        return self.fault_free_samples / self.fault_free_makespan

    @property
    def goodput_ratio(self) -> float:
        """Faulty goodput relative to fault-free (1.0 = unhurt; the
        degradation-gracefulness metric the sweep compares)."""
        if self.fault_free_goodput <= 0:
            return 0.0
        return self.goodput / self.fault_free_goodput

    @property
    def overhead_seconds(self) -> float:
        """Wall-clock added by faults and fault-tolerance machinery."""
        return self.total_makespan - self.fault_free_makespan

    def mttr_values(self) -> list[float]:
        """Per-incident mean-time-to-repair samples (recovered losses
        only), sorted — feed of the MTTR p50/p95 columns."""
        return sorted(
            i.mttr for i in self.incidents if i.mttr is not None
        )

    def false_positives(self) -> list[IncidentReport]:
        return [i for i in self.incidents if i.false_positive]

    def summary(self) -> str:
        lines = [
            (
                f"fault report: {len(self.device_losses)} device loss(es), "
                f"{self.replans} re-plan(s), "
                + ("recovered" if self.recovered else
                   f"RECOVERY FAILED ({self.failure_reason})")
            ),
            (
                f"  makespan {fmt_time(self.total_makespan)} vs fault-free "
                f"{fmt_time(self.fault_free_makespan)} "
                f"(goodput ratio {self.goodput_ratio:.3f})"
            ),
            (
                f"  lost work {fmt_time(self.lost_wall_seconds)} wall / "
                f"{fmt_time(self.lost_compute_seconds)} compute, "
                f"{self.iterations_redone} iteration(s) redone"
            ),
            (
                f"  retries {self.retry_events} ({self.retried_bytes / GB:.3f} GB "
                f"re-sent), checkpoints {self.checkpoints} "
                f"({fmt_time(self.checkpoint_seconds)}), recovery "
                f"{fmt_time(self.recovery_seconds)}"
            ),
        ]
        if self.stall_seconds or self.rejoins or self.spares_used:
            lines.append(
                f"  policy {self.policy.recovery}: "
                f"{self.rejoins} rejoin(s), {self.spares_used} spare(s) "
                f"used, {fmt_time(self.stall_seconds)} stalled waiting"
            )
        for dev, t in self.device_losses:
            lines.append(f"  lost {dev} at t={t:.4g}s")
        for inc in self.false_positives():
            lines.append(
                f"  false positive: {inc.device} suspected at "
                f"t={inc.suspected_at:.4g}s, exonerated at "
                f"t={inc.exonerated_at:.4g}s ({inc.detector})"
            )
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        """JSON-able ledger of the run: plan, policy, incidents, and
        every accounting scalar.  Segments serialize as summaries (the
        result/plan/topology artifacts stay in-process)."""
        return {
            "schema": 1,
            "plan": _plan_to_json(self.plan),
            "policy": _policy_to_json(self.policy),
            "segments": [
                {
                    "index": s.index,
                    "iteration": s.iteration,
                    "started_at": s.started_at,
                    "duration": s.duration,
                    "aborted": s.aborted,
                    "lost_device": s.lost_device,
                }
                for s in self.segments
            ],
            "device_losses": [[dev, t] for dev, t in self.device_losses],
            "incidents": [asdict(i) for i in self.incidents],
            "replans": self.replans,
            "iterations_redone": self.iterations_redone,
            "lost_wall_seconds": self.lost_wall_seconds,
            "lost_compute_seconds": self.lost_compute_seconds,
            "retried_bytes": self.retried_bytes,
            "retry_events": self.retry_events,
            "checkpoints": self.checkpoints,
            "checkpoint_seconds": self.checkpoint_seconds,
            "recovery_seconds": self.recovery_seconds,
            "stall_seconds": self.stall_seconds,
            "rejoins": self.rejoins,
            "spares_used": self.spares_used,
            "heartbeats_observed": self.heartbeats_observed,
            "fault_free_makespan": self.fault_free_makespan,
            "total_makespan": self.total_makespan,
            "samples": self.samples,
            "fault_free_samples": self.fault_free_samples,
            "recovered": self.recovered,
            "failure_reason": self.failure_reason,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FaultReport":
        """Rebuild the ledger from :meth:`to_json` output.  Plan,
        policy, and incidents come back as real (equal) objects;
        segment summaries come back as :class:`SegmentReport` with
        ``result``/``plan``/``topology`` set to ``None``."""
        if doc.get("schema") != 1:
            raise ConfigError(
                f"unsupported FaultReport schema {doc.get('schema')!r}"
            )
        report = cls(
            plan=_plan_from_json(doc["plan"]),
            policy=_policy_from_json(doc["policy"]),
            segments=[
                SegmentReport(
                    index=s["index"],
                    iteration=s["iteration"],
                    result=None,
                    plan=None,
                    topology=None,
                    started_at=s["started_at"],
                    duration=s["duration"],
                    aborted=s["aborted"],
                    lost_device=s["lost_device"],
                )
                for s in doc["segments"]
            ],
            device_losses=[(dev, t) for dev, t in doc["device_losses"]],
            incidents=[IncidentReport(**i) for i in doc["incidents"]],
        )
        for key in (
            "replans", "iterations_redone", "lost_wall_seconds",
            "lost_compute_seconds", "retried_bytes", "retry_events",
            "checkpoints", "checkpoint_seconds", "recovery_seconds",
            "stall_seconds", "rejoins", "spares_used",
            "heartbeats_observed", "fault_free_makespan",
            "total_makespan", "samples", "fault_free_samples",
            "recovered", "failure_reason",
        ):
            setattr(report, key, doc[key])
        return report


# -- plan / policy codecs -----------------------------------------------------


def _fault_types() -> dict[str, type]:
    from repro.faults import model

    return {
        cls.__name__: cls
        for cls in (
            model.DeviceLoss, model.DeviceReturn, model.SpareDevice,
            model.LinkDegradation, model.LinkFlap,
            model.TransientTransferError, model.ComputeStraggler,
            model.MemoryPressure,
        )
    }


def _plan_to_json(plan: "FaultPlan") -> dict:
    return {
        "seed": plan.seed,
        "faults": [
            {"type": type(f).__name__, **asdict(f)} for f in plan.faults
        ],
    }


def _plan_from_json(doc: dict) -> "FaultPlan":
    from repro.faults.model import FaultPlan

    types = _fault_types()
    faults = []
    for entry in doc["faults"]:
        entry = dict(entry)
        name = entry.pop("type")
        cls = types.get(name)
        if cls is None:
            raise ConfigError(
                f"unknown fault type {name!r}; known types: "
                + ", ".join(sorted(types))
            )
        faults.append(cls(**entry))
    return FaultPlan(seed=doc["seed"], faults=tuple(faults))


def _policy_to_json(policy: "ResiliencePolicy") -> dict:
    return asdict(policy)  # nests DetectorConfig as a plain dict


def _policy_from_json(doc: dict) -> "ResiliencePolicy":
    from repro.faults.detection import DetectorConfig
    from repro.faults.resilience import ResiliencePolicy

    doc = dict(doc)
    detection = doc.pop("detection", None)
    return ResiliencePolicy(
        detection=DetectorConfig(**detection) if detection else None,
        **doc,
    )
