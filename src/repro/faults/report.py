"""Fault accounting: what the faults cost, segment by segment.

A resilient run executes as a sequence of *segments* — one per
iteration attempt, each its own discrete-event simulation — separated
by checkpoint stalls and recovery windows.  :class:`SegmentReport`
keeps each segment's artifacts (result, plan, topology, global start
time) so the audit layer can re-check faulty runs; :class:`FaultReport`
aggregates them into the quantities the degradation experiments plot:
lost work, retried bytes, recovery time, and goodput versus the
fault-free makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.units import GB, fmt_time

if TYPE_CHECKING:
    from repro.faults.model import FaultPlan
    from repro.faults.resilience import ResiliencePolicy
    from repro.hardware.topology import Topology
    from repro.sim.plan import Plan
    from repro.sim.result import RunResult


@dataclass
class SegmentReport:
    """One executed segment (an iteration attempt) of a resilient run."""

    index: int
    iteration: int
    result: "RunResult"
    plan: "Plan"
    topology: "Topology"
    started_at: float            # global time the segment began
    duration: float              # wall time the segment consumed
    aborted: bool = False
    lost_device: str | None = None

    @property
    def completed(self) -> bool:
        return not self.aborted


@dataclass
class FaultReport:
    """Aggregate outcome of a resilient (fault-injected) run."""

    plan: "FaultPlan"
    policy: "ResiliencePolicy"
    segments: list[SegmentReport] = field(default_factory=list)
    #: (device, global time) for every loss that actually struck.
    device_losses: list[tuple[str, float]] = field(default_factory=list)
    #: Times ``build_scheduler`` was re-invoked mid-run on survivors.
    replans: int = 0
    #: Iterations that had completed but were rolled back by a loss.
    iterations_redone: int = 0
    #: Wall-clock lost to rolled-back work (completed-but-rolled-back
    #: iterations plus the partial iteration in flight at each loss).
    lost_wall_seconds: float = 0.0
    #: Compute-seconds of traced work discarded by losses.
    lost_compute_seconds: float = 0.0
    #: Bytes re-sent after transient transfer failures (wire time the
    #: failed attempts wasted; also in each segment's SwapStats ledger).
    retried_bytes: float = 0.0
    retry_events: int = 0
    checkpoints: int = 0
    checkpoint_seconds: float = 0.0
    #: Detection + state-reload time across all recoveries.
    recovery_seconds: float = 0.0
    #: Makespan of the same config with no faults injected.
    fault_free_makespan: float = 0.0
    #: End-to-end wall-clock of the faulty run (segments + checkpoints
    #: + recoveries).
    total_makespan: float = 0.0
    #: Samples from iterations that were credited (completed and never
    #: rolled back).
    samples: int = 0
    fault_free_samples: int = 0
    recovered: bool = True
    failure_reason: str | None = None

    # -- derived metrics ---------------------------------------------------

    @property
    def goodput(self) -> float:
        """Credited samples per second of total wall-clock."""
        if self.total_makespan <= 0:
            return 0.0
        return self.samples / self.total_makespan

    @property
    def fault_free_goodput(self) -> float:
        if self.fault_free_makespan <= 0:
            return 0.0
        return self.fault_free_samples / self.fault_free_makespan

    @property
    def goodput_ratio(self) -> float:
        """Faulty goodput relative to fault-free (1.0 = unhurt; the
        degradation-gracefulness metric the sweep compares)."""
        if self.fault_free_goodput <= 0:
            return 0.0
        return self.goodput / self.fault_free_goodput

    @property
    def overhead_seconds(self) -> float:
        """Wall-clock added by faults and fault-tolerance machinery."""
        return self.total_makespan - self.fault_free_makespan

    def summary(self) -> str:
        lines = [
            (
                f"fault report: {len(self.device_losses)} device loss(es), "
                f"{self.replans} re-plan(s), "
                + ("recovered" if self.recovered else
                   f"RECOVERY FAILED ({self.failure_reason})")
            ),
            (
                f"  makespan {fmt_time(self.total_makespan)} vs fault-free "
                f"{fmt_time(self.fault_free_makespan)} "
                f"(goodput ratio {self.goodput_ratio:.3f})"
            ),
            (
                f"  lost work {fmt_time(self.lost_wall_seconds)} wall / "
                f"{fmt_time(self.lost_compute_seconds)} compute, "
                f"{self.iterations_redone} iteration(s) redone"
            ),
            (
                f"  retries {self.retry_events} ({self.retried_bytes / GB:.3f} GB "
                f"re-sent), checkpoints {self.checkpoints} "
                f"({fmt_time(self.checkpoint_seconds)}), recovery "
                f"{fmt_time(self.recovery_seconds)}"
            ),
        ]
        for dev, t in self.device_losses:
            lines.append(f"  lost {dev} at t={t:.4g}s")
        return "\n".join(lines)
