"""The fault model: what can go wrong on a commodity server, as data.

The paper's premise is training on *commodity* hardware — exactly the
machines where GPUs drop off the bus, PCIe links flap or degrade,
transfers stall, and neighbours steal memory bandwidth.  Every fault
here is a plain frozen dataclass with explicit (global, simulated)
times, collected into a :class:`FaultPlan` that owns its own RNG seed,
so a faulty run replays *exactly*: same plan, same seed, byte-identical
trace.

Fault vocabulary
----------------
:class:`DeviceLoss`
    A GPU disappears at time ``at``.  Whether it is gone forever is the
    recovery policy's problem, not the fault's: pair it with a
    :class:`DeviceReturn` to model a flapping host.
:class:`DeviceReturn`
    A previously-lost device rejoins at time ``at`` (a rebooted host, a
    re-seated card).  Its on-device state is gone — rejoining always
    costs a state reload.
:class:`SpareDevice`
    A cold standby named ``device`` that a recovery policy may attach
    in a dead device's place (``Topology.substitute``).  Not an event:
    it has no time, only availability.
:class:`LinkDegradation`
    A link's bandwidth is divided by ``factor`` during a window (a
    flaky riser, PCIe retraining to a lower generation).
:class:`LinkFlap`
    A link is *down* during a window; transfers wanting it wait for the
    window to close.
:class:`TransientTransferError`
    Each point-to-point transfer attempt started inside the window
    fails with probability ``probability`` (drawn from the plan's RNG);
    the resilience layer retries with exponential backoff, and the
    wasted wire time/bytes are ledgered separately.
:class:`ComputeStraggler`
    Compute on one device runs ``slowdown`` times slower during a
    window (thermal throttling, a noisy neighbour).
:class:`MemoryPressure`
    A fraction of a device pool's capacity is unavailable during a
    window (fragmentation, a co-tenant allocation) — the effective
    capacity shrinks, forcing more aggressive eviction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Iterable, Union

from repro.errors import ConfigError


def _check_window(label: str, start: float, end: float) -> None:
    if start < 0:
        raise ConfigError(f"{label}: window starts before t=0 ({start})")
    if end < start:
        raise ConfigError(f"{label}: window ends before it starts ({start}..{end})")


@dataclass(frozen=True)
class DeviceLoss:
    """Device ``device`` is permanently lost at global time ``at``."""

    device: str
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError(f"DeviceLoss({self.device}): negative time {self.at}")


@dataclass(frozen=True)
class DeviceReturn:
    """Lost device ``device`` rejoins at global time ``at`` (memory
    wiped — the runtime must reload its state shard)."""

    device: str
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError(
                f"DeviceReturn({self.device}): negative time {self.at}"
            )


@dataclass(frozen=True)
class SpareDevice:
    """A cold standby GPU named ``device``, attachable by a recovery
    policy in a dead device's position.  The spare clones the lost
    device's spec and wiring (commodity chassis keep identical cards on
    the shelf), so substitution preserves the world's size and shape."""

    device: str

    def __post_init__(self) -> None:
        if not self.device:
            raise ConfigError("SpareDevice: device name must be non-empty")


@dataclass(frozen=True)
class LinkDegradation:
    """Link bandwidth divided by ``factor`` during ``[start, end)``."""

    link: str
    factor: float
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigError(
                f"LinkDegradation({self.link}): factor must be >= 1, "
                f"got {self.factor}"
            )
        _check_window(f"LinkDegradation({self.link})", self.start, self.end)

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class LinkFlap:
    """Link fully down during ``[start, end)``: transfers defer."""

    link: str
    start: float
    end: float

    def __post_init__(self) -> None:
        _check_window(f"LinkFlap({self.link})", self.start, self.end)
        if not math.isfinite(self.end):
            raise ConfigError(f"LinkFlap({self.link}): flap must end")

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class TransientTransferError:
    """Each transfer attempt in the window fails w.p. ``probability``."""

    probability: float
    start: float = 0.0
    end: float = math.inf
    link: str | None = None  # restrict to transfers crossing this link

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ConfigError(
                f"TransientTransferError: probability must be in [0, 1), "
                f"got {self.probability}"
            )
        _check_window("TransientTransferError", self.start, self.end)

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class ComputeStraggler:
    """Compute on ``device`` runs ``slowdown``x slower in the window."""

    device: str
    slowdown: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ConfigError(
                f"ComputeStraggler({self.device}): slowdown must be >= 1, "
                f"got {self.slowdown}"
            )
        _check_window(f"ComputeStraggler({self.device})", self.start, self.end)

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class MemoryPressure:
    """``fraction`` of ``device``'s capacity is unavailable in the window."""

    device: str
    fraction: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ConfigError(
                f"MemoryPressure({self.device}): fraction must be in [0, 1), "
                f"got {self.fraction}"
            )
        _check_window(f"MemoryPressure({self.device})", self.start, self.end)


Fault = Union[
    DeviceLoss,
    DeviceReturn,
    SpareDevice,
    LinkDegradation,
    LinkFlap,
    TransientTransferError,
    ComputeStraggler,
    MemoryPressure,
]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seed-driven fault schedule for one run.

    All times are *global* simulated seconds from the start of the
    (possibly multi-iteration, possibly re-planned) resilient run; the
    injector maps them into each execution segment.  The plan owns its
    RNG seed: every probabilistic decision (transient-failure draws,
    victim selection in generated plans) comes from ``rng()``, so the
    same plan replays byte-identically.
    """

    seed: int = 0
    faults: tuple[Fault, ...] = ()

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- typed views -------------------------------------------------------

    def _of(self, cls) -> list:
        return [f for f in self.faults if isinstance(f, cls)]

    def device_losses(self) -> list[DeviceLoss]:
        return sorted(self._of(DeviceLoss), key=lambda f: (f.at, f.device))

    def device_returns(self) -> list[DeviceReturn]:
        return sorted(self._of(DeviceReturn), key=lambda f: (f.at, f.device))

    def spare_devices(self) -> list[SpareDevice]:
        """Spares in declaration order — policies consume them FIFO."""
        return self._of(SpareDevice)

    def link_degradations(self) -> list[LinkDegradation]:
        return self._of(LinkDegradation)

    def link_flaps(self) -> list[LinkFlap]:
        return self._of(LinkFlap)

    def transient_errors(self) -> list[TransientTransferError]:
        return self._of(TransientTransferError)

    def stragglers(self) -> list[ComputeStraggler]:
        return self._of(ComputeStraggler)

    def memory_pressures(self) -> list[MemoryPressure]:
        return self._of(MemoryPressure)

    def with_faults(self, extra: Iterable[Fault]) -> "FaultPlan":
        return replace(self, faults=self.faults + tuple(extra))

    def describe(self) -> str:
        lines = [f"fault plan (seed {self.seed}, {len(self.faults)} fault(s))"]
        for f in self.faults:
            lines.append(f"  {f}")
        return "\n".join(lines)


def mttf_loss_plan(
    devices: list[str],
    mttf: float,
    horizon: float,
    seed: int = 0,
    extra: Iterable[Fault] = (),
) -> FaultPlan:
    """Device-loss schedule for an MTTF sweep.

    Losses land deterministically at ``mttf, 2*mttf, ...`` up to
    ``horizon`` (the *expected* failure schedule for a fleet with that
    mean time to failure — keeping the sweep monotone in ``mttf``
    rather than noisy); victims are drawn without replacement from the
    plan's RNG, so the same (devices, mttf, seed) triple always loses
    the same GPUs at the same times.
    """
    if mttf <= 0:
        raise ConfigError(f"mttf must be positive, got {mttf}")
    rng = random.Random(seed)
    victims = list(devices)
    rng.shuffle(victims)
    losses: list[Fault] = []
    t = mttf
    while t <= horizon and victims:
        losses.append(DeviceLoss(victims.pop(0), t))
        t += mttf
    return FaultPlan(seed=seed, faults=tuple(losses) + tuple(extra))


def random_fault_plan(
    devices: list[str],
    links: list[str],
    seed: int = 0,
    horizon: float = 1.0,
    loss_rate: float = 0.0,
    transient_p: float = 0.0,
    straggler_p: float = 0.0,
    straggler_slowdown: float = 2.0,
    degradation_p: float = 0.0,
    degradation_factor: float = 4.0,
) -> FaultPlan:
    """Draw a random-but-reproducible fault mix for property tests.

    ``loss_rate`` is the per-device probability of dying within the
    horizon (loss time uniform in it); ``straggler_p`` /
    ``degradation_p`` gate per-device / per-link windows.  All draws
    come from one ``random.Random(seed)`` in a fixed order, so the plan
    is a pure function of its arguments.
    """
    rng = random.Random(seed)
    faults: list[Fault] = []
    for dev in devices:
        if loss_rate and rng.random() < loss_rate:
            faults.append(DeviceLoss(dev, rng.uniform(0.0, horizon)))
    for dev in devices:
        if straggler_p and rng.random() < straggler_p:
            t0 = rng.uniform(0.0, horizon)
            faults.append(
                ComputeStraggler(
                    dev, straggler_slowdown, t0, t0 + rng.uniform(0.0, horizon)
                )
            )
    for link in links:
        if degradation_p and rng.random() < degradation_p:
            t0 = rng.uniform(0.0, horizon)
            faults.append(
                LinkDegradation(
                    link, degradation_factor, t0, t0 + rng.uniform(0.0, horizon)
                )
            )
    if transient_p:
        faults.append(TransientTransferError(transient_p))
    return FaultPlan(seed=seed, faults=tuple(faults))
