"""The recovery-policy zoo: what to do once a device is confirmed dead.

Mirrors the scheduler zoo's registry discipline: every policy is a
small strategy object registered in :data:`RECOVERY_REGISTRY`, and the
CLI, MTTR sweep, bench section, and tests enumerate the registry
rather than hardcoding names.  Policies decide *what world to recover
onto*; the Harmony/baseline asymmetry (are checkpoints usable after a
world change? is the reload partial or full?) stays in
:class:`~repro.faults.resilience.ResiliencePolicy` and composes with
every policy here.

``restart-replan``
    Today's behavior, extracted: roll back to the last usable
    checkpoint and re-plan onto the survivors.  Elastic upward too —
    a later :class:`DeviceReturn` rejoins the world (one more re-plan).
``wait-rejoin``
    Hold the (stalled — pipelined training wedges on a dead stage)
    world for ``policy.grace_window`` seconds.  If the device returns
    within grace, resume with the *full* world: the plan is unchanged
    and the world never changed size, so the last checkpoint stays
    usable even for the rigid baselines — only the rejoiner's state
    reload and the stall are paid.  If it does not, the full grace
    window was wasted waiting and the policy falls through to
    shrinking onto the survivors.
``spare-substitute``
    Swap a :class:`SpareDevice` into the dead device's position
    (:meth:`Topology.substitute`), reload the lost shard onto it, and
    re-plan.  The world keeps its size and shape, so checkpoints stay
    usable for every scheme.  No spare left -> fall through to shrink.
``degrade-continue``
    Shrink the world permanently — the current Harmony path.  Returns
    and spares are ignored: degradation is accepted, not repaired.

Each hook returns ``False`` when recovery is impossible (the runner
ends the run with ``recovered=False``); ``on_return`` returning
``True`` without touching the world simply consumes the event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.faults.model import DeviceReturn

if TYPE_CHECKING:
    from repro.faults.runner import _ResilientRun


class RecoveryPolicy:
    """Base strategy: hooks the resilient runner dispatches through.

    ``on_loss`` runs after the loss is *confirmed* (detection latency
    already charged); ``on_return`` runs when a ``DeviceReturn`` for a
    currently-lost device comes due between segments.
    """

    name = "abstract"

    def on_loss(self, run: "_ResilientRun", device: str, at: float) -> bool:
        raise NotImplementedError

    def on_return(self, run: "_ResilientRun", ret: DeviceReturn) -> bool:
        return True  # default: consume the event, change nothing


class RestartReplan(RecoveryPolicy):
    """Restart from the last usable checkpoint, re-plan on the current
    world — shrinking on a loss, growing back on a return."""

    name = "restart-replan"

    def on_loss(self, run: "_ResilientRun", device: str, at: float) -> bool:
        return run.shrink(device, at)

    def on_return(self, run: "_ResilientRun", ret: DeviceReturn) -> bool:
        return run.rejoin(ret.device, ret.at)


class WaitRejoin(RecoveryPolicy):
    """Hold for the grace window; resume the full world on a return,
    else fall through to the shrink path."""

    name = "wait-rejoin"

    def on_loss(self, run: "_ResilientRun", device: str, at: float) -> bool:
        ret = run.claim_return(device, deadline=at + run.policy.grace_window)
        if ret is not None:
            run.charge_stall(max(0.0, ret.at - run.offset))
            return run.resume_full(device)
        # Nobody came: the whole grace window was spent waiting before
        # the runtime gave up and shrank.
        run.charge_stall(run.policy.grace_window)
        return run.shrink(device, at)

    def on_return(self, run: "_ResilientRun", ret: DeviceReturn) -> bool:
        # A return past its grace window: the world already shrank, but
        # a usable device is a usable device — rejoin elastically.
        return run.rejoin(ret.device, ret.at)


class SpareSubstitute(RecoveryPolicy):
    """Swap in a cold standby; the world keeps its size and shape."""

    name = "spare-substitute"

    def on_loss(self, run: "_ResilientRun", device: str, at: float) -> bool:
        spare = run.claim_spare()
        if spare is not None:
            return run.substitute(device, spare)
        return run.shrink(device, at)

    def on_return(self, run: "_ResilientRun", ret: DeviceReturn) -> bool:
        # The dead device's slot is (or will be) filled by spares;
        # late returns are surplus hardware, not a recovery path.
        return True


class DegradeContinue(RecoveryPolicy):
    """Shrink permanently; ignore returns and spares."""

    name = "degrade-continue"

    def on_loss(self, run: "_ResilientRun", device: str, at: float) -> bool:
        return run.shrink(device, at)

    def on_return(self, run: "_ResilientRun", ret: DeviceReturn) -> bool:
        return True


#: Policy name -> class, in canonical presentation order (tables, CLI
#: choices, bench sections all iterate this).
RECOVERY_REGISTRY: dict[str, type[RecoveryPolicy]] = {
    RestartReplan.name: RestartReplan,
    WaitRejoin.name: WaitRejoin,
    SpareSubstitute.name: SpareSubstitute,
    DegradeContinue.name: DegradeContinue,
}


def recovery_names() -> tuple[str, ...]:
    """Every registered recovery policy, in presentation order."""
    return tuple(RECOVERY_REGISTRY)


def build_recovery(name: str) -> RecoveryPolicy:
    cls = RECOVERY_REGISTRY.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown recovery policy {name!r}; valid policies: "
            + ", ".join(recovery_names())
        )
    return cls()
