"""Server interconnect topology: devices, switches, links, and routing.

The topology is an undirected graph whose nodes are devices (GPUs, the
host CPU) and PCIe switches, and whose edges are :class:`LinkSpec`
resources.  A transfer between two devices occupies every link on its
route, so when four GPUs hang off switches that funnel into a single
host uplink (Fig. 2(b)), all host-bound swap traffic serializes on that
uplink — this is the mechanism behind the paper's Fig. 2(a) bottleneck.

Peer-to-peer GPU transfers route through switches without touching the
host uplink when both GPUs share a switch, which is what makes
Harmony's p2p optimization profitable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.links import LinkSpec
from repro.util.lazy import lazy_attr


@dataclass(frozen=True)
class Route:
    """An ordered sequence of links a transfer must traverse.

    The simulator reserves each link in order; the transfer's duration is
    determined by the slowest link plus accumulated latencies (a
    store-and-forward approximation is deliberately avoided — PCIe
    fabrics cut through — so duration uses the bottleneck bandwidth).
    """

    src: str
    dst: str
    links: tuple[LinkSpec, ...]

    # Cached: routes are immutable and cached per topology, and these two
    # are read on every transfer over the route.
    @lazy_attr
    def bottleneck_bandwidth(self) -> float:
        if not self.links:
            return float("inf")
        return min(link.bandwidth_bytes_per_sec for link in self.links)

    @lazy_attr
    def total_latency(self) -> float:
        return sum(link.latency_sec for link in self.links)

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended end-to-end time to move ``nbytes`` along the route."""
        if nbytes == 0 or not self.links:
            return 0.0
        return self.total_latency + nbytes / self.bottleneck_bandwidth

    @property
    def crosses_host_uplink(self) -> bool:
        """Whether this route traverses a link marked as a host uplink."""
        return any(link.name.startswith("uplink") for link in self.links)


@dataclass
class Topology:
    """A single server's device + interconnect graph.

    Build one with :meth:`add_device`, :meth:`add_switch` and
    :meth:`add_link`, or use a preset from :mod:`repro.hardware.presets`.
    Routing is shortest-path by hop count (PCIe fabrics route
    deterministically up/down the tree); results are cached.
    """

    name: str
    devices: dict[str, DeviceSpec] = field(default_factory=dict)
    switches: set[str] = field(default_factory=set)
    links: dict[str, LinkSpec] = field(default_factory=dict)
    _adjacency: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    _route_cache: dict[tuple[str, str], Route] = field(default_factory=dict)
    _host_of_cache: dict[str, DeviceSpec] = field(default_factory=dict)
    #: Tree-routing index: ``None`` = stale (rebuild lazily), ``False`` =
    #: the graph is not a tree (BFS fallback), else ``(parents, depth)``
    #: maps rooted at the lexicographically-first node.
    _tree: "object" = field(default=None, repr=False)
    _hosts_by_distance_cache: dict[str, tuple[DeviceSpec, ...]] = field(
        default_factory=dict, repr=False
    )

    # -- construction ----------------------------------------------------

    def add_device(self, spec: DeviceSpec) -> DeviceSpec:
        if spec.name in self.devices or spec.name in self.switches:
            raise TopologyError(f"duplicate node name {spec.name!r}")
        self.devices[spec.name] = spec
        self._adjacency.setdefault(spec.name, [])
        self._tree = None
        return spec

    def add_switch(self, name: str) -> str:
        if name in self.devices or name in self.switches:
            raise TopologyError(f"duplicate node name {name!r}")
        self.switches.add(name)
        self._adjacency.setdefault(name, [])
        self._tree = None
        return name

    def add_link(self, link: LinkSpec, a: str, b: str) -> LinkSpec:
        for node in (a, b):
            if node not in self._adjacency:
                raise TopologyError(f"unknown node {node!r} for link {link.name!r}")
        if link.name in self.links:
            raise TopologyError(f"duplicate link name {link.name!r}")
        if a == b:
            raise TopologyError(f"link {link.name!r} connects node {a!r} to itself")
        self.links[link.name] = link
        self._adjacency[a].append((b, link.name))
        self._adjacency[b].append((a, link.name))
        self._route_cache.clear()
        self._host_of_cache.clear()
        self._hosts_by_distance_cache.clear()
        self._tree = None
        return link

    # -- queries ---------------------------------------------------------

    def gpus(self) -> list[DeviceSpec]:
        """All GPU devices, ordered by name for determinism."""
        return sorted(
            (d for d in self.devices.values() if d.kind is DeviceKind.GPU),
            key=lambda d: d.name,
        )

    def host(self) -> DeviceSpec:
        """The unique host (CPU) device of a single-server topology.
        Multi-server topologies have several; use :meth:`host_of`."""
        hosts = self.hosts()
        if len(hosts) != 1:
            raise TopologyError(
                f"topology {self.name!r} must have exactly one host, found {len(hosts)}"
            )
        return hosts[0]

    def hosts(self) -> list[DeviceSpec]:
        """All host (CPU) devices, ordered by name."""
        return sorted(
            (d for d in self.devices.values() if d.kind is DeviceKind.CPU),
            key=lambda d: d.name,
        )

    def host_of(self, device: str) -> DeviceSpec:
        """The nearest host to ``device`` by hop count — the default swap
        target for that GPU (its own server's DRAM).  Ties break on the
        lowest host name, matching the ``min((hops, name))`` rule the old
        all-hosts route scan applied; the early-exit BFS here stops at
        the first level containing a host instead of routing to every
        host in the fleet (O(N^2) on large clusters)."""
        cached = self._host_of_cache.get(device)
        if cached is not None:
            return cached
        devices = self.devices
        spec = devices.get(device)
        if spec is None:
            raise TopologyError(f"no host reachable from {device!r}")
        if spec.kind is DeviceKind.CPU:
            self._host_of_cache[device] = spec
            return spec
        adjacency = self._adjacency
        visited = {device}
        frontier = [device]
        while frontier:
            nxt: list[str] = []
            found: list[str] = []
            for node in frontier:
                for neighbor, _ in adjacency[node]:
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    s = devices.get(neighbor)
                    if s is not None and s.kind is DeviceKind.CPU:
                        found.append(neighbor)
                    nxt.append(neighbor)
            if found:
                best = devices[min(found)]
                self._host_of_cache[device] = best
                return best
            frontier = nxt
        raise TopologyError(f"no host reachable from {device!r}")

    def hosts_by_distance(self, device: str) -> tuple[DeviceSpec, ...]:
        """Every host reachable from ``device``, nearest first (ties on
        name) — the candidate order for remote host-RAM swap targeting
        when the local host is full (see
        :class:`~repro.memory.policy.MemoryPolicy` ``remote_swap``)."""
        cached = self._hosts_by_distance_cache.get(device)
        if cached is not None:
            return cached
        if device not in self.devices:
            raise TopologyError(f"no host reachable from {device!r}")
        adjacency = self._adjacency
        devices = self.devices
        ordered: list[DeviceSpec] = []
        visited = {device}
        frontier = [device]
        spec = devices.get(device)
        if spec is not None and spec.kind is DeviceKind.CPU:
            ordered.append(spec)
        while frontier:
            nxt: list[str] = []
            found: list[str] = []
            for node in frontier:
                for neighbor, _ in adjacency[node]:
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    s = devices.get(neighbor)
                    if s is not None and s.kind is DeviceKind.CPU:
                        found.append(neighbor)
                    nxt.append(neighbor)
            ordered.extend(devices[name] for name in sorted(found))
            frontier = nxt
        if not ordered:
            raise TopologyError(f"no host reachable from {device!r}")
        result = tuple(ordered)
        self._hosts_by_distance_cache[device] = result
        return result

    def device(self, name: str) -> DeviceSpec:
        try:
            return self.devices[name]
        except KeyError:
            raise TopologyError(f"unknown device {name!r}") from None

    def route(self, src: str, dst: str) -> Route:
        """Shortest-hop route between two devices.  Raises
        :class:`TopologyError` if disconnected.

        Tree topologies (every preset except the NVLink-meshed DGX)
        resolve through a rooted parent-pointer index: the unique path
        climbs src and dst to their lowest common ancestor in O(path
        length) instead of an O(nodes) BFS per pair — this is what keeps
        route resolution size-independent on rack-scale fleets.  The
        path a tree has is exactly the one BFS finds (shortest paths in
        trees are unique), so the two strategies produce bit-identical
        routes; non-tree graphs fall back to BFS with deterministic
        sorted neighbor order."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        for node in (src, dst):
            if node not in self.devices:
                raise TopologyError(f"route endpoint {node!r} is not a device")
        if src == dst:
            route = Route(src, dst, ())
            self._route_cache[key] = route
            return route
        tree = self._tree_routing()
        if tree is not None:
            route = self._tree_path(src, dst, tree)
            self._route_cache[key] = route
            return route
        # BFS over nodes, remembering the link taken to reach each node.
        frontier = [src]
        parents: dict[str, tuple[str, str]] = {}  # node -> (prev node, link name)
        visited = {src}
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for neighbor, link_name in sorted(self._adjacency[node]):
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    parents[neighbor] = (node, link_name)
                    if neighbor == dst:
                        route = self._trace_route(src, dst, parents)
                        self._route_cache[key] = route
                        return route
                    nxt.append(neighbor)
            frontier = nxt
        raise TopologyError(f"no route from {src!r} to {dst!r} in {self.name!r}")

    def _tree_routing(self):
        """``(parents, depth)`` maps for tree topologies, ``None`` when
        the graph is not a connected tree (cycle or disconnected)."""
        tree = self._tree
        if tree is None:
            tree = self._build_tree_routing()
            self._tree = tree
        return tree or None

    def _build_tree_routing(self):
        adjacency = self._adjacency
        nodes = len(adjacency)
        if nodes == 0 or len(self.links) != nodes - 1:
            return False  # a connected graph with cycles, or a forest
        root = min(adjacency)
        parents: dict[str, tuple[str, str] | None] = {root: None}
        depth = {root: 0}
        frontier = [root]
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                d = depth[node] + 1
                for neighbor, link_name in adjacency[node]:
                    if neighbor in parents:
                        continue
                    parents[neighbor] = (node, link_name)
                    depth[neighbor] = d
                    nxt.append(neighbor)
            frontier = nxt
        if len(parents) != nodes:
            return False  # disconnected: fall back to (failing) BFS
        return parents, depth

    def _tree_path(self, src: str, dst: str, tree) -> Route:
        """The unique src->dst path in a tree: climb both endpoints to
        their lowest common ancestor.  Link order matches what BFS's
        back-trace produces (the path is unique), so cached routes —
        and their latency sums — are bit-identical either way."""
        parents, depth = tree
        links_map = self.links
        up: list[LinkSpec] = []
        down: list[LinkSpec] = []
        a, b = src, dst
        da, db = depth[a], depth[b]
        while da > db:
            a, link_name = parents[a]
            up.append(links_map[link_name])
            da -= 1
        while db > da:
            b, link_name = parents[b]
            down.append(links_map[link_name])
            db -= 1
        while a != b:
            a, link_name = parents[a]
            up.append(links_map[link_name])
            b, link_name = parents[b]
            down.append(links_map[link_name])
        down.reverse()
        return Route(src, dst, tuple(up + down))

    def _trace_route(
        self, src: str, dst: str, parents: dict[str, tuple[str, str]]
    ) -> Route:
        links: list[LinkSpec] = []
        node = dst
        while node != src:
            prev, link_name = parents[node]
            links.append(self.links[link_name])
            node = prev
        links.reverse()
        return Route(src, dst, tuple(links))

    def host_route(self, gpu: str) -> Route:
        """Route used for swapping between ``gpu`` and its local host
        memory."""
        return self.route(gpu, self.host_of(gpu).name)

    def host_uplink_oversubscription(self) -> float:
        """Ratio of GPUs to host uplinks — the 4:1 / 8:1 figure the paper
        cites for commodity servers."""
        return self.link_oversubscription("uplink")

    def link_oversubscription(self, prefix: str) -> float:
        """Ratio of GPUs to links whose name starts with ``prefix`` —
        the per-tier oversubscription figure for hierarchical racks
        (``"uplink"`` = host tier, ``"rackup"`` = ToR->spine tier in the
        rack preset).  1.0 when no such links exist."""
        n = sum(1 for name in self.links if name.startswith(prefix))
        if not n:
            return 1.0
        return len(self.gpus()) / n

    def shares_switch(self, gpu_a: str, gpu_b: str) -> bool:
        """Whether two GPUs can reach each other without the host uplink."""
        return not self.route(gpu_a, gpu_b).crosses_host_uplink

    def device_links(self, name: str) -> list[tuple[LinkSpec, str]]:
        """The links incident to ``name`` as ``(link, other endpoint)``
        pairs, in insertion order — the wiring a rejoining device or a
        substituted spare must re-create."""
        if name not in self.devices and name not in self.switches:
            raise TopologyError(f"unknown node {name!r}")
        return [
            (self.links[link_name], neighbor)
            for neighbor, link_name in self._adjacency[name]
        ]

    def _clone(self, name: str) -> "Topology":
        """A structural copy sharing the immutable device and link
        specs, with fresh (empty) route/host caches.  O(nodes + links)
        dict copies instead of replaying the ``add_*`` construction path
        element by element — this is what keeps elastic rejoin and
        spare substitution cheap on rack-scale fleets."""
        return Topology(
            name=name,
            devices=dict(self.devices),
            switches=set(self.switches),
            links=dict(self.links),
            _adjacency={n: list(v) for n, v in self._adjacency.items()},
        )

    def with_device(
        self, spec: DeviceSpec, connections: list[tuple[LinkSpec, str]]
    ) -> "Topology":
        """A new topology with ``spec`` attached via ``connections``
        (``(link, peer node)`` pairs) — the elastic-rejoin counterpart
        of :meth:`without_device`.  Specs are shared (immutable); the
        original topology is untouched.  Raises
        :class:`~repro.errors.TopologyError` on duplicate device or
        link names or unknown peers, so a bad rejoin fails loudly
        instead of silently mis-wiring."""
        if not connections:
            raise TopologyError(
                f"cannot attach {spec.name!r} with no links (it would be "
                f"unreachable)"
            )
        grown = self._clone(f"{self.name}+{spec.name}")
        grown.add_device(spec)
        for link, peer in connections:
            grown.add_link(link, spec.name, peer)
        return grown

    def substitute(
        self, old: str, spec: DeviceSpec,
        connections: list[tuple[LinkSpec, str]] | None = None,
    ) -> "Topology":
        """Swap device ``old`` for ``spec`` in place: the new device
        inherits ``old``'s wiring (or explicit ``connections``), so the
        world keeps its size and shape — the hot-spare substitution the
        recovery-policy zoo's ``spare-substitute`` performs.  The
        inherited links keep their :class:`LinkSpec` objects but are
        renamed ``{name}@{spec.name}`` to avoid any stale-name illusion
        that the old device's queues survived."""
        if old not in self.devices:
            raise TopologyError(f"cannot substitute unknown device {old!r}")
        if connections is None:
            connections = [
                (
                    LinkSpec(
                        name=f"{link.name}@{spec.name}",
                        bandwidth_bytes_per_sec=link.bandwidth_bytes_per_sec,
                        latency_sec=link.latency_sec,
                    ),
                    peer,
                )
                for link, peer in self.device_links(old)
            ]
        return self.without_device(old).with_device(spec, connections)

    def without_device(self, name: str) -> "Topology":
        """The surviving topology after losing ``name`` (a GPU falling
        off the bus): same nodes, switches, and links minus the device
        and every link incident to it.  Specs are shared (immutable);
        routes are re-derived, so traffic re-routes around the hole.
        The resilient runner (:mod:`repro.faults`) re-plans onto this.
        """
        if name not in self.devices:
            raise TopologyError(f"cannot remove unknown device {name!r}")
        survivor = self._clone(f"{self.name}-minus-{name}")
        del survivor.devices[name]
        incident = survivor._adjacency.pop(name)
        for _, link_name in incident:
            del survivor.links[link_name]
        for peer in {peer for peer, _ in incident}:
            survivor._adjacency[peer] = [
                pair for pair in survivor._adjacency[peer] if pair[0] != name
            ]
        return survivor

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`."""
        if not self.hosts():
            raise TopologyError(f"topology {self.name!r} has no host")
        if not self.gpus():
            raise TopologyError(f"topology {self.name!r} has no GPUs")
        for gpu in self.gpus():
            self.host_of(gpu.name)  # every GPU can reach a host

    def __str__(self) -> str:
        return (
            f"Topology({self.name!r}: {len(self.gpus())} GPUs, "
            f"{len(self.switches)} switches, {len(self.links)} links, "
            f"{self.host_uplink_oversubscription():.0f}:1 host oversubscription)"
        )
