"""Server interconnect topology: devices, switches, links, and routing.

The topology is an undirected graph whose nodes are devices (GPUs, the
host CPU) and PCIe switches, and whose edges are :class:`LinkSpec`
resources.  A transfer between two devices occupies every link on its
route, so when four GPUs hang off switches that funnel into a single
host uplink (Fig. 2(b)), all host-bound swap traffic serializes on that
uplink — this is the mechanism behind the paper's Fig. 2(a) bottleneck.

Peer-to-peer GPU transfers route through switches without touching the
host uplink when both GPUs share a switch, which is what makes
Harmony's p2p optimization profitable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.links import LinkSpec
from repro.util.lazy import lazy_attr


@dataclass(frozen=True)
class Route:
    """An ordered sequence of links a transfer must traverse.

    The simulator reserves each link in order; the transfer's duration is
    determined by the slowest link plus accumulated latencies (a
    store-and-forward approximation is deliberately avoided — PCIe
    fabrics cut through — so duration uses the bottleneck bandwidth).
    """

    src: str
    dst: str
    links: tuple[LinkSpec, ...]

    # Cached: routes are immutable and cached per topology, and these two
    # are read on every transfer over the route.
    @lazy_attr
    def bottleneck_bandwidth(self) -> float:
        if not self.links:
            return float("inf")
        return min(link.bandwidth_bytes_per_sec for link in self.links)

    @lazy_attr
    def total_latency(self) -> float:
        return sum(link.latency_sec for link in self.links)

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended end-to-end time to move ``nbytes`` along the route."""
        if nbytes == 0 or not self.links:
            return 0.0
        return self.total_latency + nbytes / self.bottleneck_bandwidth

    @property
    def crosses_host_uplink(self) -> bool:
        """Whether this route traverses a link marked as a host uplink."""
        return any(link.name.startswith("uplink") for link in self.links)


@dataclass
class Topology:
    """A single server's device + interconnect graph.

    Build one with :meth:`add_device`, :meth:`add_switch` and
    :meth:`add_link`, or use a preset from :mod:`repro.hardware.presets`.
    Routing is shortest-path by hop count (PCIe fabrics route
    deterministically up/down the tree); results are cached.
    """

    name: str
    devices: dict[str, DeviceSpec] = field(default_factory=dict)
    switches: set[str] = field(default_factory=set)
    links: dict[str, LinkSpec] = field(default_factory=dict)
    _adjacency: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    _route_cache: dict[tuple[str, str], Route] = field(default_factory=dict)
    _host_of_cache: dict[str, DeviceSpec] = field(default_factory=dict)

    # -- construction ----------------------------------------------------

    def add_device(self, spec: DeviceSpec) -> DeviceSpec:
        if spec.name in self.devices or spec.name in self.switches:
            raise TopologyError(f"duplicate node name {spec.name!r}")
        self.devices[spec.name] = spec
        self._adjacency.setdefault(spec.name, [])
        return spec

    def add_switch(self, name: str) -> str:
        if name in self.devices or name in self.switches:
            raise TopologyError(f"duplicate node name {name!r}")
        self.switches.add(name)
        self._adjacency.setdefault(name, [])
        return name

    def add_link(self, link: LinkSpec, a: str, b: str) -> LinkSpec:
        for node in (a, b):
            if node not in self._adjacency:
                raise TopologyError(f"unknown node {node!r} for link {link.name!r}")
        if link.name in self.links:
            raise TopologyError(f"duplicate link name {link.name!r}")
        if a == b:
            raise TopologyError(f"link {link.name!r} connects node {a!r} to itself")
        self.links[link.name] = link
        self._adjacency[a].append((b, link.name))
        self._adjacency[b].append((a, link.name))
        self._route_cache.clear()
        return link

    # -- queries ---------------------------------------------------------

    def gpus(self) -> list[DeviceSpec]:
        """All GPU devices, ordered by name for determinism."""
        return sorted(
            (d for d in self.devices.values() if d.kind is DeviceKind.GPU),
            key=lambda d: d.name,
        )

    def host(self) -> DeviceSpec:
        """The unique host (CPU) device of a single-server topology.
        Multi-server topologies have several; use :meth:`host_of`."""
        hosts = self.hosts()
        if len(hosts) != 1:
            raise TopologyError(
                f"topology {self.name!r} must have exactly one host, found {len(hosts)}"
            )
        return hosts[0]

    def hosts(self) -> list[DeviceSpec]:
        """All host (CPU) devices, ordered by name."""
        return sorted(
            (d for d in self.devices.values() if d.kind is DeviceKind.CPU),
            key=lambda d: d.name,
        )

    def host_of(self, device: str) -> DeviceSpec:
        """The nearest host to ``device`` by hop count — the swap target
        for that GPU (its own server's DRAM, never a remote host)."""
        cached = self._host_of_cache.get(device)
        if cached is not None:
            return cached
        candidates: list[tuple[int, str, DeviceSpec]] = []
        for h in self.hosts():
            try:
                hops = len(self.route(device, h.name).links)
            except TopologyError:
                continue
            candidates.append((hops, h.name, h))
        if not candidates:
            raise TopologyError(f"no host reachable from {device!r}")
        best = min(candidates)[2]
        self._host_of_cache[device] = best
        return best

    def device(self, name: str) -> DeviceSpec:
        try:
            return self.devices[name]
        except KeyError:
            raise TopologyError(f"unknown device {name!r}") from None

    def route(self, src: str, dst: str) -> Route:
        """Shortest-hop route between two devices (BFS, deterministic
        neighbor order).  Raises :class:`TopologyError` if disconnected."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        for node in (src, dst):
            if node not in self.devices:
                raise TopologyError(f"route endpoint {node!r} is not a device")
        if src == dst:
            route = Route(src, dst, ())
            self._route_cache[key] = route
            return route
        # BFS over nodes, remembering the link taken to reach each node.
        frontier = [src]
        parents: dict[str, tuple[str, str]] = {}  # node -> (prev node, link name)
        visited = {src}
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for neighbor, link_name in sorted(self._adjacency[node]):
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    parents[neighbor] = (node, link_name)
                    if neighbor == dst:
                        route = self._trace_route(src, dst, parents)
                        self._route_cache[key] = route
                        return route
                    nxt.append(neighbor)
            frontier = nxt
        raise TopologyError(f"no route from {src!r} to {dst!r} in {self.name!r}")

    def _trace_route(
        self, src: str, dst: str, parents: dict[str, tuple[str, str]]
    ) -> Route:
        links: list[LinkSpec] = []
        node = dst
        while node != src:
            prev, link_name = parents[node]
            links.append(self.links[link_name])
            node = prev
        links.reverse()
        return Route(src, dst, tuple(links))

    def host_route(self, gpu: str) -> Route:
        """Route used for swapping between ``gpu`` and its local host
        memory."""
        return self.route(gpu, self.host_of(gpu).name)

    def host_uplink_oversubscription(self) -> float:
        """Ratio of GPUs to host uplinks — the 4:1 / 8:1 figure the paper
        cites for commodity servers."""
        uplinks = [name for name in self.links if name.startswith("uplink")]
        if not uplinks:
            return 1.0
        return len(self.gpus()) / len(uplinks)

    def shares_switch(self, gpu_a: str, gpu_b: str) -> bool:
        """Whether two GPUs can reach each other without the host uplink."""
        return not self.route(gpu_a, gpu_b).crosses_host_uplink

    def device_links(self, name: str) -> list[tuple[LinkSpec, str]]:
        """The links incident to ``name`` as ``(link, other endpoint)``
        pairs, in insertion order — the wiring a rejoining device or a
        substituted spare must re-create."""
        if name not in self.devices and name not in self.switches:
            raise TopologyError(f"unknown node {name!r}")
        return [
            (self.links[link_name], neighbor)
            for neighbor, link_name in self._adjacency[name]
        ]

    def with_device(
        self, spec: DeviceSpec, connections: list[tuple[LinkSpec, str]]
    ) -> "Topology":
        """A new topology with ``spec`` attached via ``connections``
        (``(link, peer node)`` pairs) — the elastic-rejoin counterpart
        of :meth:`without_device`.  Specs are shared (immutable); the
        original topology is untouched.  Raises
        :class:`~repro.errors.TopologyError` on duplicate device or
        link names or unknown peers, so a bad rejoin fails loudly
        instead of silently mis-wiring."""
        if not connections:
            raise TopologyError(
                f"cannot attach {spec.name!r} with no links (it would be "
                f"unreachable)"
            )
        grown = Topology(name=f"{self.name}+{spec.name}")
        for existing in self.devices.values():
            grown.add_device(existing)
        for switch in sorted(self.switches):
            grown.add_switch(switch)
        seen: set[str] = set()
        for a, neighbors in self._adjacency.items():
            for b, link_name in neighbors:
                if link_name in seen:
                    continue
                seen.add(link_name)
                grown.add_link(self.links[link_name], a, b)
        grown.add_device(spec)
        for link, peer in connections:
            grown.add_link(link, spec.name, peer)
        return grown

    def substitute(
        self, old: str, spec: DeviceSpec,
        connections: list[tuple[LinkSpec, str]] | None = None,
    ) -> "Topology":
        """Swap device ``old`` for ``spec`` in place: the new device
        inherits ``old``'s wiring (or explicit ``connections``), so the
        world keeps its size and shape — the hot-spare substitution the
        recovery-policy zoo's ``spare-substitute`` performs.  The
        inherited links keep their :class:`LinkSpec` objects but are
        renamed ``{name}@{spec.name}`` to avoid any stale-name illusion
        that the old device's queues survived."""
        if old not in self.devices:
            raise TopologyError(f"cannot substitute unknown device {old!r}")
        if connections is None:
            connections = [
                (
                    LinkSpec(
                        name=f"{link.name}@{spec.name}",
                        bandwidth_bytes_per_sec=link.bandwidth_bytes_per_sec,
                        latency_sec=link.latency_sec,
                    ),
                    peer,
                )
                for link, peer in self.device_links(old)
            ]
        return self.without_device(old).with_device(spec, connections)

    def without_device(self, name: str) -> "Topology":
        """The surviving topology after losing ``name`` (a GPU falling
        off the bus): same nodes, switches, and links minus the device
        and every link incident to it.  Specs are shared (immutable);
        routes are re-derived, so traffic re-routes around the hole.
        The resilient runner (:mod:`repro.faults`) re-plans onto this.
        """
        if name not in self.devices:
            raise TopologyError(f"cannot remove unknown device {name!r}")
        survivor = Topology(name=f"{self.name}-minus-{name}")
        for spec in self.devices.values():
            if spec.name != name:
                survivor.add_device(spec)
        for switch in sorted(self.switches):
            survivor.add_switch(switch)
        seen: set[str] = set()
        for a, neighbors in self._adjacency.items():
            for b, link_name in neighbors:
                if link_name in seen:
                    continue
                seen.add(link_name)
                if a == name or b == name:
                    continue
                survivor.add_link(self.links[link_name], a, b)
        return survivor

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`."""
        if not self.hosts():
            raise TopologyError(f"topology {self.name!r} has no host")
        if not self.gpus():
            raise TopologyError(f"topology {self.name!r} has no GPUs")
        for gpu in self.gpus():
            self.host_of(gpu.name)  # every GPU can reach a host

    def __str__(self) -> str:
        return (
            f"Topology({self.name!r}: {len(self.gpus())} GPUs, "
            f"{len(self.switches)} switches, {len(self.links)} links, "
            f"{self.host_uplink_oversubscription():.0f}:1 host oversubscription)"
        )
