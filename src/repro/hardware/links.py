"""Interconnect link specifications.

Links are directedly usable but physically bidirectional; the simulator
treats each :class:`LinkSpec` as a serially-shared resource (a FIFO
queue), which is how the shared device-to-host PCIe link becomes the
bottleneck in Fig. 2(a): every GPU's swap traffic lands in the same
queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import GB, USEC


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point transfer resource between two endpoints.

    Attributes
    ----------
    name:
        Unique identifier within a topology (e.g. ``"pcie-host"``).
    bandwidth_bytes_per_sec:
        Sustained effective bandwidth.  PCIe gen3 x16 is ~15.75 GB/s
        raw; we use ~12 GB/s effective, matching measured cudaMemcpy
        rates.
    latency_sec:
        Fixed per-transfer latency (DMA setup, driver overhead).
    """

    name: str
    bandwidth_bytes_per_sec: float
    latency_sec: float = 10 * USEC

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0:
            raise ConfigError(f"link {self.name!r}: bandwidth must be positive")
        if self.latency_sec < 0:
            raise ConfigError(f"link {self.name!r}: latency must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over this link when uncontended."""
        if nbytes < 0:
            raise ConfigError("transfer size must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency_sec + nbytes / self.bandwidth_bytes_per_sec


def pcie_gen3(name: str, lanes: int = 16) -> LinkSpec:
    """PCIe gen3: ~0.985 GB/s per lane raw, ~75% effective."""
    return LinkSpec(name, bandwidth_bytes_per_sec=0.75 * 0.985 * GB * lanes)


def pcie_gen4(name: str, lanes: int = 16) -> LinkSpec:
    """PCIe gen4: double gen3 per-lane rate."""
    return LinkSpec(name, bandwidth_bytes_per_sec=0.75 * 1.969 * GB * lanes)


def nvlink2(name: str, bricks: int = 1) -> LinkSpec:
    """NVLink 2.0: 25 GB/s per brick per direction, ~90% effective."""
    return LinkSpec(name, bandwidth_bytes_per_sec=0.9 * 25 * GB * bricks)


def ethernet(name: str, gbits: int = 100) -> LinkSpec:
    """Datacenter Ethernet (default 100 GbE): ~85% effective goodput,
    tens-of-microseconds latency — an order of magnitude slower and
    laggier than intra-server PCIe, which is why the paper's §4 notes
    multi-server runtimes must account for 'heterogeneous and
    hierarchical interconnects'."""
    return LinkSpec(
        name,
        bandwidth_bytes_per_sec=0.85 * gbits / 8 * GB,
        latency_sec=50 * USEC,
    )


def infiniband(name: str, gbits: int = 200) -> LinkSpec:
    """InfiniBand HDR-class fabric: higher goodput, lower latency."""
    return LinkSpec(
        name,
        bandwidth_bytes_per_sec=0.9 * gbits / 8 * GB,
        latency_sec=5 * USEC,
    )
