"""Hardware model: devices, interconnect links, and server topologies.

This package is the stand-in for the paper's physical testbed (a
commodity server with four NVIDIA 1080Ti GPUs behind PCIe switches,
Fig. 2(b)).  It models exactly the properties the paper's arguments rest
on:

* per-GPU **memory capacity** (the scarce resource),
* per-GPU **compute throughput** (to turn FLOPs into time),
* **link bandwidth** between endpoints, with the device-to-host PCIe
  link *shared* by all GPUs behind a switch (4:1 / 8:1 oversubscription),
* fast **peer-to-peer** GPU-to-GPU paths that bypass host memory.
"""

from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.links import (
    LinkSpec,
    ethernet,
    infiniband,
    nvlink2,
    pcie_gen3,
    pcie_gen4,
)
from repro.hardware.topology import Topology, Route
from repro.hardware.presets import (
    commodity_server,
    dgx1_like_server,
    gtx1080ti_server,
    multi_server_cluster,
    rack_cluster,
    single_gpu_server,
)

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "LinkSpec",
    "pcie_gen3",
    "pcie_gen4",
    "nvlink2",
    "ethernet",
    "infiniband",
    "Topology",
    "Route",
    "commodity_server",
    "gtx1080ti_server",
    "dgx1_like_server",
    "single_gpu_server",
    "multi_server_cluster",
    "rack_cluster",
]
