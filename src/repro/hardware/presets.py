"""Prebuilt server topologies matching the paper's hardware context.

The paper's measurements (Fig. 2) use a commodity server with four
NVIDIA 1080Ti GPUs behind PCIe switches, where the device-to-host link
is oversubscribed 4:1 (all GPU swap traffic funnels through one uplink
to host memory).  :func:`gtx1080ti_server` reproduces that machine;
:func:`dgx1_like_server` provides an NVLink-rich contrast used by the
ablation benchmarks.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.device import gtx1080ti, host_cpu, v100
from repro.hardware.links import LinkSpec, ethernet, infiniband, nvlink2, pcie_gen3
from repro.hardware.topology import Topology


def commodity_server(
    num_gpus: int = 4,
    gpu_factory=gtx1080ti,
    gpus_per_switch: int = 4,
    name: str = "commodity",
) -> Topology:
    """A commodity multi-GPU box: GPUs behind PCIe switches, all switches
    sharing a single PCIe uplink to host memory.

    With the defaults (4 GPUs, one switch, one uplink) the host link is
    4:1 oversubscribed — the configuration in the paper's Fig. 2(b).
    GPU-to-GPU transfers under the same switch never touch the uplink,
    which is what Harmony's p2p optimization exploits.
    """
    if num_gpus < 1:
        raise ConfigError("need at least one GPU")
    if gpus_per_switch < 1:
        raise ConfigError("need at least one GPU per switch")
    topo = Topology(name=name)
    topo.add_device(host_cpu())
    num_switches = (num_gpus + gpus_per_switch - 1) // gpus_per_switch
    for s in range(num_switches):
        switch = topo.add_switch(f"switch{s}")
        topo.add_link(pcie_gen3(f"uplink{s}"), switch, "cpu")
    for g in range(num_gpus):
        gpu = topo.add_device(gpu_factory(f"gpu{g}"))
        switch = f"switch{g // gpus_per_switch}"
        topo.add_link(pcie_gen3(f"pcie-gpu{g}"), gpu.name, switch)
    topo.validate()
    return topo


def gtx1080ti_server(num_gpus: int = 4) -> Topology:
    """The paper's testbed: four 11 GB GTX 1080Ti GPUs, one shared host
    uplink (4:1 oversubscription)."""
    return commodity_server(
        num_gpus=num_gpus, gpu_factory=gtx1080ti, gpus_per_switch=4, name="gtx1080ti"
    )


def single_gpu_server(gpu_factory=gtx1080ti) -> Topology:
    """A single-GPU workstation: the setting prior GPU-memory-
    virtualization work (vDNN, LMS, SwapAdvisor, Capuchin) targets."""
    return commodity_server(num_gpus=1, gpu_factory=gpu_factory, name="single-gpu")


def dgx1_like_server(num_gpus: int = 4) -> Topology:
    """A DGX-1-style server: V100 GPUs with a direct NVLink mesh in
    addition to the PCIe tree.  Used by ablations to show how faster p2p
    links change the Harmony/baseline gap.

    The NVLink mesh here is all-to-all among the modelled GPUs (the real
    DGX-1 hybrid cube-mesh is denser than needed for <=4 GPUs).
    """
    if num_gpus < 1:
        raise ConfigError("need at least one GPU")
    topo = Topology(name="dgx1-like")
    topo.add_device(host_cpu())
    switch = topo.add_switch("switch0")
    topo.add_link(pcie_gen3("uplink0"), switch, "cpu")
    gpus = []
    for g in range(num_gpus):
        gpu = topo.add_device(v100(f"gpu{g}"))
        topo.add_link(pcie_gen3(f"pcie-gpu{g}"), gpu.name, switch)
        gpus.append(gpu)
    for i in range(num_gpus):
        for j in range(i + 1, num_gpus):
            topo.add_link(
                nvlink2(f"nvlink-{i}-{j}", bricks=2), gpus[i].name, gpus[j].name
            )
    topo.validate()
    return topo


def multi_server_cluster(
    num_servers: int = 2,
    gpus_per_server: int = 4,
    gpu_factory=gtx1080ti,
    network: str = "100gbe",
    name: str = "cluster",
) -> Topology:
    """Several commodity servers joined by a datacenter network — the
    paper's §4 multi-machine extension.

    Each server is a :func:`commodity_server` clone (its GPUs behind a
    PCIe switch with one host uplink, swapping only to the *local*
    host's DRAM); hosts connect pairwise through a network switch
    modelled as one shared link per server.  Device names sort by
    server (``s0g0`` < ``s0g1`` < ``s1g0``), so schedulers that place
    round-robin over the sorted GPU list keep consecutive layer packs
    server-local most of the time.

    ``network``: ``"100gbe"`` / ``"25gbe"`` / ``"ib"``.
    """
    if num_servers < 1:
        raise ConfigError("need at least one server")
    if gpus_per_server < 1:
        raise ConfigError("need at least one GPU per server")
    factories = {
        "100gbe": lambda n: ethernet(n, gbits=100),
        "25gbe": lambda n: ethernet(n, gbits=25),
        "ib": lambda n: infiniband(n, gbits=200),
    }
    try:
        net_factory = factories[network]
    except KeyError:
        raise ConfigError(
            f"unknown network {network!r}; choose from {sorted(factories)}"
        ) from None
    topo = Topology(name=f"{name}-{num_servers}x{gpus_per_server}")
    net_switch = topo.add_switch("netswitch")
    for s in range(num_servers):
        topo.add_device(host_cpu(f"cpu{s}"))
        switch = topo.add_switch(f"s{s}switch")
        topo.add_link(pcie_gen3(f"uplink{s}"), switch, f"cpu{s}")
        topo.add_link(net_factory(f"net{s}"), f"cpu{s}", net_switch)
        for g in range(gpus_per_server):
            gpu = topo.add_device(gpu_factory(f"s{s}g{g}"))
            topo.add_link(pcie_gen3(f"pcie-s{s}g{g}"), gpu.name, switch)
    topo.validate()
    return topo


def rack_cluster(
    num_racks: int = 4,
    servers_per_rack: int = 8,
    gpus_per_server: int = 4,
    gpu_factory=gtx1080ti,
    network: str = "100gbe",
    oversubscription: float = 4.0,
    name: str = "rack",
) -> Topology:
    """A rack-scale fleet: racks of commodity servers under top-of-rack
    switches, joined by a spine with an oversubscribed uplink tier.

    This is the shape the paper's §4 "masses" deployment implies once a
    fleet outgrows one network switch: each server keeps the commodity
    box's internal 4:1 host-uplink bottleneck, each rack's servers hang
    off a ToR switch at full network rate, and every ToR reaches the
    spine over one aggregate uplink carrying ``servers_per_rack /
    oversubscription`` servers' worth of bandwidth (a 4:1 factor is the
    classic datacenter figure).  Cross-rack collectives therefore see a
    second bottleneck tier above the host uplink, which is what the
    hierarchy-aware placement and analytic collectives must model.

    Naming: GPU ``r1s2g3`` is GPU 3 of server 2 in rack 1, its host is
    ``r1s2cpu``.  Names sort rack-major, then server-major, so
    round-robin placement over sorted GPUs stays server- and rack-local
    as long as possible.  Host uplinks keep the ``uplink`` name prefix
    (``Route.crosses_host_uplink`` keys on it); rack->spine links use
    the ``rackup`` prefix so :meth:`Topology.link_oversubscription` can
    report the tier's ratio.  The result is a tree, so routing uses the
    topology's O(path) tree router rather than per-pair BFS.
    """
    if num_racks < 1:
        raise ConfigError("need at least one rack")
    if servers_per_rack < 1:
        raise ConfigError("need at least one server per rack")
    if gpus_per_server < 1:
        raise ConfigError("need at least one GPU per server")
    if oversubscription <= 0:
        raise ConfigError("oversubscription must be positive")
    factories = {
        "100gbe": lambda n: ethernet(n, gbits=100),
        "25gbe": lambda n: ethernet(n, gbits=25),
        "ib": lambda n: infiniband(n, gbits=200),
    }
    try:
        net_factory = factories[network]
    except KeyError:
        raise ConfigError(
            f"unknown network {network!r}; choose from {sorted(factories)}"
        ) from None
    topo = Topology(
        name=f"{name}-{num_racks}x{servers_per_rack}x{gpus_per_server}"
    )
    spine = topo.add_switch("spine")
    for r in range(num_racks):
        tor = topo.add_switch(f"r{r}tor")
        base = net_factory(f"rackup{r}")
        topo.add_link(
            LinkSpec(
                base.name,
                bandwidth_bytes_per_sec=base.bandwidth_bytes_per_sec
                * servers_per_rack
                / oversubscription,
                latency_sec=base.latency_sec,
            ),
            tor,
            spine,
        )
        for s in range(servers_per_rack):
            host = topo.add_device(host_cpu(f"r{r}s{s}cpu"))
            switch = topo.add_switch(f"r{r}s{s}switch")
            topo.add_link(pcie_gen3(f"uplink-r{r}s{s}"), switch, host.name)
            topo.add_link(net_factory(f"net-r{r}s{s}"), host.name, tor)
            for g in range(gpus_per_server):
                gpu = topo.add_device(gpu_factory(f"r{r}s{s}g{g}"))
                topo.add_link(pcie_gen3(f"pcie-r{r}s{s}g{g}"), gpu.name, switch)
    topo.validate()
    return topo
