"""Device specifications.

A :class:`DeviceSpec` captures the only two properties of an accelerator
that the paper's analysis depends on: how much state it can hold
(memory capacity) and how fast it retires work (effective FLOP/s).  The
CPU/host is modelled as a device too — it is the swap target with
"practically unbounded" memory from the GPU's point of view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import GIB, TFLOP, fmt_bytes


class DeviceKind(enum.Enum):
    """What sort of device this is; routing and swap policy distinguish
    the host (swap target, effectively infinite memory) from GPUs."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass(frozen=True)
class DeviceSpec:
    """An accelerator or host endpoint in the server topology.

    Attributes
    ----------
    name:
        Unique identifier within a topology (e.g. ``"gpu0"``, ``"cpu"``).
    kind:
        GPU or CPU (host).
    memory_bytes:
        Usable memory capacity.  For GPUs this is the constraint that
        forces swapping; for the host it is large enough to never bind.
    flops_per_sec:
        Effective sustained throughput used by the cost model to convert
        a task's FLOPs into simulated execution time.  GPUs get a
        realistic sustained fraction of peak; the host gets a much lower
        figure (it only runs framework bookkeeping in this model).
    """

    name: str
    kind: DeviceKind
    memory_bytes: float
    flops_per_sec: float

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigError(f"device {self.name!r}: memory must be positive")
        if self.flops_per_sec <= 0:
            raise ConfigError(f"device {self.name!r}: flops must be positive")

    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    @property
    def is_host(self) -> bool:
        return self.kind is DeviceKind.CPU

    def __str__(self) -> str:
        return (
            f"{self.name}({self.kind.value}, {fmt_bytes(self.memory_bytes)}, "
            f"{self.flops_per_sec / TFLOP:.1f} TFLOP/s)"
        )


def gtx1080ti(name: str) -> DeviceSpec:
    """An NVIDIA GeForce GTX 1080 Ti: 11 GB GDDR5X, ~11.3 TFLOP/s peak
    fp32; we model ~40% sustained utilization for transformer layers."""
    return DeviceSpec(
        name=name,
        kind=DeviceKind.GPU,
        memory_bytes=11 * GIB,
        flops_per_sec=4.5 * TFLOP,
    )


def v100(name: str) -> DeviceSpec:
    """An NVIDIA V100 (DGX-1 generation): 16 GB HBM2, ~125 TFLOP/s tensor
    peak; we model ~50 TFLOP/s sustained mixed precision."""
    return DeviceSpec(
        name=name,
        kind=DeviceKind.GPU,
        memory_bytes=16 * GIB,
        flops_per_sec=50 * TFLOP,
    )


def host_cpu(name: str = "cpu", memory_bytes: float = 512 * GIB) -> DeviceSpec:
    """The host endpoint: swap target with large DRAM."""
    return DeviceSpec(
        name=name,
        kind=DeviceKind.CPU,
        memory_bytes=memory_bytes,
        flops_per_sec=1 * TFLOP,
    )
