"""The server's durable job ledger.

Two artifacts make the server crash-tolerant, both rooted in
``--state-dir``:

* the **jobs ledger** (``jobs.jsonl``, this module) — one fsync'd JSON
  line per admission (``job``) and per terminal outcome (``outcome``).
  An admission is acknowledged (HTTP 202) only after its record is on
  disk, so an acknowledged job is never lost;
* the **per-job supervisor journal**
  (``journals/<job id>.jsonl``, :mod:`repro.supervisor.journal`) —
  every spec outcome inside a job, fsync'd as it lands.

Restart recovery composes the two: ledgered jobs *with* an outcome are
served from the ledger without recomputation; jobs *without* one are
re-queued in submission order, and their supervisors replay the specs
their journals already settled byte-identically, executing only the
remainder.  A ``kill -9`` therefore loses at most the attempts that
were in flight at the instant of death.

The ledger borrows the sweep journal's durability discipline: append
one line, flush, ``fsync``; a crash can tear at most the final line,
and :func:`load_ledger` skips (and counts) unparseable lines instead
of failing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Any

from repro.serve.jobs import CANCELLED, DONE, FAILED, TERMINAL_STATES

#: Ledger schema version; bump on incompatible record changes.
LEDGER_SCHEMA = 1


@dataclass
class LedgerJob:
    """One admitted job as recovered from the ledger."""

    id: str
    tenant: str
    seq: int
    spec: dict
    status: str | None = None  # terminal status, or None if never settled
    result: dict | None = None
    error: dict | None = None

    @property
    def settled(self) -> bool:
        return self.status in TERMINAL_STATES


@dataclass
class LedgerState:
    """Everything :func:`load_ledger` recovers from a ledger file."""

    path: str
    jobs: dict[str, LedgerJob] = field(default_factory=dict)
    max_seq: int = 0
    records: int = 0
    torn_records: int = 0

    def pending(self) -> list[LedgerJob]:
        """Un-settled jobs, in submission order — what a restart must
        re-queue."""
        return sorted(
            (job for job in self.jobs.values() if not job.settled),
            key=lambda job: job.seq,
        )

    def describe(self) -> str:
        torn = (
            f", {self.torn_records} torn record(s) skipped"
            if self.torn_records
            else ""
        )
        return (
            f"ledger {self.path}: {len(self.jobs)} job(s), "
            f"{len(self.pending())} pending over {self.records} "
            f"record(s){torn}"
        )


def load_ledger(path: str | os.PathLike) -> LedgerState:
    """Parse a jobs ledger, tolerating a torn tail.

    Duplicate outcome records for one job keep the *first* (the record
    earlier readers already served); outcome records for unknown job
    ids are skipped (their admission line was the torn one).
    """
    path = os.fspath(path)
    state = LedgerState(path=path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return state

    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            kind = record["type"]
        except (ValueError, KeyError, TypeError):
            state.torn_records += 1
            continue
        state.records += 1
        if kind == "job":
            job_id, tenant = record.get("id"), record.get("tenant")
            seq, spec = record.get("seq"), record.get("spec")
            if (
                isinstance(job_id, str)
                and isinstance(tenant, str)
                and isinstance(seq, int)
                and isinstance(spec, dict)
                and job_id not in state.jobs
            ):
                state.jobs[job_id] = LedgerJob(
                    id=job_id, tenant=tenant, seq=seq, spec=spec
                )
                state.max_seq = max(state.max_seq, seq)
        elif kind == "outcome":
            job_id, status = record.get("id"), record.get("status")
            job = state.jobs.get(job_id) if isinstance(job_id, str) else None
            if job is not None and status in TERMINAL_STATES and not job.settled:
                job.status = status
                result = record.get("result")
                error = record.get("error")
                job.result = result if isinstance(result, dict) else None
                job.error = error if isinstance(error, dict) else None
        # Unknown record types from a newer writer are skipped silently.
    return state


class JobLedger:
    """Appends fsync'd job/outcome records to the ledger file."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._fh: IO[bytes] = open(self.path, "ab")
        if existed:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    self._append(b"\n")

    def _append(self, data: bytes) -> None:
        self._fh.write(data)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _record(self, record: dict) -> None:
        self._append(json.dumps(record, sort_keys=True).encode() + b"\n")

    def job(self, job_id: str, tenant: str, seq: int, spec: dict) -> None:
        """Record an admission; the 202 response waits on this fsync."""
        self._record(
            {
                "type": "job",
                "schema": LEDGER_SCHEMA,
                "id": job_id,
                "tenant": tenant,
                "seq": seq,
                "spec": spec,
            }
        )

    def outcome(
        self,
        job_id: str,
        status: str,
        result: dict | None = None,
        error: dict | None = None,
    ) -> None:
        if status not in (DONE, FAILED, CANCELLED):
            raise ValueError(f"not a terminal job status: {status!r}")
        self._record(
            {
                "type": "outcome",
                "id": job_id,
                "status": status,
                "result": result,
                "error": error,
            }
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JobLedger":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
