"""The job model: what a tenant submits and what comes back.

A job is a JSON document naming one of four kinds of work — the same
four workloads the CLI exposes as one-shot commands:

* ``simulate`` — one scheme on one model/topology point;
* ``sweep`` — every scheme (or a requested subset) on that point, the
  serve-side analogue of ``repro compare``;
* ``tune`` — the granularity search behind ``repro tune``;
* ``faults`` — the MTTF degradation sweep behind ``repro faults``.

:func:`parse_job` validates the document eagerly — unknown kinds,
models, or schemes are a structured :class:`~repro.errors.JobSpecError`
(HTTP 400) *at admission*, never a quarantined worker later — and
:func:`execute_job` runs the parsed spec through a per-job
:class:`~repro.supervisor.Supervisor`, so every job inherits the
watchdog/retry/quarantine machinery and a write-ahead journal for
crash recovery.

Results are plain JSON dicts built only from deterministic simulation
fields, which is what makes the server's chaos contract testable: a
journal-replayed job must summarize byte-identically to an
uninterrupted one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.config import HarmonyConfig
from repro.errors import DrainedError, JobSpecError, ReproError
from repro.hardware import presets
from repro.models import zoo
from repro.perf.runner import RunSpec
from repro.schedulers import scheme_names
from repro.schedulers.base import BatchConfig

if TYPE_CHECKING:
    from repro.perf.cache import RunCache
    from repro.supervisor import Supervisor

#: Valid ``kind`` values, the serve-side workload roster.
JOB_KINDS = ("simulate", "sweep", "tune", "faults")

#: Job lifecycle states (see ``docs/INTERNALS.md``, Simulation as a
#: service).  ``queued -> running -> done | failed``; a queued job may
#: also be ``cancelled``.  An interrupted ``running`` job returns to
#: ``queued`` on restart.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


@dataclass(frozen=True)
class JobSpec:
    """A validated job submission."""

    kind: str
    model: str
    gpus: int = 4
    microbatch_size: int = 1
    microbatches: int = 4
    #: ``simulate`` only: the single scheme to run.
    scheme: str = "harmony-pp"
    #: ``sweep`` only: schemes to run (``None`` = the full registry).
    schemes: tuple[str, ...] | None = None
    iterations: int = 1
    steady_state: str | None = None
    #: ``faults`` only.
    mttf: tuple[float, ...] = (float("inf"), 8.0, 4.0, 2.5)
    transient_probability: float = 0.02
    seed: int = 1
    #: Per-attempt watchdog override; the server clamps it to its own
    #: ``--spec-timeout`` ceiling.
    timeout_sec: float | None = None

    def describe(self) -> str:
        return f"{self.kind}:{self.model}"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def _int_field(payload: dict, name: str, default: int, minimum: int = 1) -> int:
    value = payload.get(name, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name} must be an integer, got {value!r}",
    )
    _require(value >= minimum, f"{name} must be >= {minimum}, got {value}")
    return value


def parse_job(payload: Any) -> JobSpec:
    """Validate a submitted JSON document into a :class:`JobSpec`.

    Every failure is a :class:`~repro.errors.JobSpecError` whose
    message names the offending field — the server returns it verbatim
    as the HTTP 400 body, so a rejected submission is self-diagnosing.
    """
    _require(isinstance(payload, dict), "job body must be a JSON object")
    known = {
        "kind", "model", "gpus", "microbatch_size", "microbatches",
        "scheme", "schemes", "iterations", "steady_state", "mttf",
        "transient_probability", "seed", "timeout_sec", "tenant",
    }
    unknown = sorted(set(payload) - known)
    _require(not unknown, f"unknown job field(s): {', '.join(unknown)}")

    kind = payload.get("kind", "simulate")
    _require(
        kind in JOB_KINDS,
        f"unknown job kind {kind!r}; valid kinds: {', '.join(JOB_KINDS)}",
    )
    model = payload.get("model")
    _require(isinstance(model, str), "model is required and must be a string")
    _require(
        model in zoo.names(),
        f"unknown model {model!r}; valid models: {', '.join(zoo.names())}",
    )

    valid_schemes = list(scheme_names())
    scheme = payload.get("scheme", "harmony-pp")
    _require(
        scheme in valid_schemes,
        f"unknown scheme {scheme!r}; valid schemes: {', '.join(valid_schemes)}",
    )
    schemes = payload.get("schemes")
    if schemes is not None:
        _require(
            isinstance(schemes, list) and schemes
            and all(isinstance(s, str) for s in schemes),
            "schemes must be a non-empty list of scheme names",
        )
        bad = sorted(set(schemes) - set(valid_schemes))
        _require(not bad, f"unknown scheme(s): {', '.join(bad)}")

    steady_state = payload.get("steady_state")
    if steady_state is not None:
        _require(
            steady_state in ("auto", "off", "force"),
            f"steady_state must be auto/off/force, got {steady_state!r}",
        )

    mttf = payload.get("mttf")
    if mttf is None:
        mttf_tuple: tuple[float, ...] = JobSpec.__dataclass_fields__[
            "mttf"
        ].default
    else:
        _require(
            isinstance(mttf, list) and mttf,
            "mttf must be a non-empty list of numbers (or the string 'inf')",
        )
        values = []
        for item in mttf:
            if item == "inf":
                values.append(float("inf"))
                continue
            _require(
                isinstance(item, (int, float)) and not isinstance(item, bool)
                and item > 0,
                f"mttf entries must be positive numbers, got {item!r}",
            )
            values.append(float(item))
        mttf_tuple = tuple(values)

    transient = payload.get("transient_probability", 0.02)
    _require(
        isinstance(transient, (int, float)) and not isinstance(transient, bool)
        and 0.0 <= transient <= 1.0,
        f"transient_probability must be in [0, 1], got {transient!r}",
    )

    timeout_sec = payload.get("timeout_sec")
    if timeout_sec is not None:
        _require(
            isinstance(timeout_sec, (int, float))
            and not isinstance(timeout_sec, bool) and timeout_sec > 0,
            f"timeout_sec must be > 0, got {timeout_sec!r}",
        )
        timeout_sec = float(timeout_sec)

    return JobSpec(
        kind=kind,
        model=model,
        gpus=_int_field(payload, "gpus", 4),
        microbatch_size=_int_field(payload, "microbatch_size", 1),
        microbatches=_int_field(payload, "microbatches", 4),
        scheme=scheme,
        schemes=tuple(schemes) if schemes is not None else None,
        iterations=_int_field(payload, "iterations", 1),
        steady_state=steady_state,
        mttf=mttf_tuple,
        transient_probability=float(transient),
        seed=_int_field(payload, "seed", 1, minimum=0),
        timeout_sec=timeout_sec,
    )


def spec_to_json(spec: JobSpec) -> dict:
    """The ledger form of a spec — rebuildable by :func:`parse_job`."""
    doc: dict[str, Any] = {
        "kind": spec.kind,
        "model": spec.model,
        "gpus": spec.gpus,
        "microbatch_size": spec.microbatch_size,
        "microbatches": spec.microbatches,
        "scheme": spec.scheme,
        "iterations": spec.iterations,
        "seed": spec.seed,
        "transient_probability": spec.transient_probability,
        "mttf": ["inf" if math.isinf(m) else m for m in spec.mttf],
    }
    if spec.schemes is not None:
        doc["schemes"] = list(spec.schemes)
    if spec.steady_state is not None:
        doc["steady_state"] = spec.steady_state
    if spec.timeout_sec is not None:
        doc["timeout_sec"] = spec.timeout_sec
    return doc


def job_schemes(spec: JobSpec) -> list[str]:
    """The schemes a simulate/sweep job will run, in run order."""
    if spec.kind == "simulate":
        return [spec.scheme]
    if spec.schemes is not None:
        return list(spec.schemes)
    return list(scheme_names())


def job_total(spec: JobSpec) -> int | None:
    """Known supervised-task count, for progress reporting (``None``
    when the kind sizes its own work — tune's grid, faults' cells)."""
    if spec.kind in ("simulate", "sweep"):
        return len(job_schemes(spec))
    return None


def supervisor_cache(spec: JobSpec, cache: "RunCache | None"):
    """The cache the job's supervisor should consult directly.

    The tuner does its own cache accounting (hit-rate on the result),
    so its supervisor runs cache-blind — the same rule as the CLI's
    ``repro tune --journal``.
    """
    return None if spec.kind == "tune" else cache


def _run_specs(spec: JobSpec) -> list[RunSpec]:
    model = zoo.build(spec.model)
    topology = presets.gtx1080ti_server(num_gpus=spec.gpus)
    batch = BatchConfig(spec.microbatch_size, spec.microbatches)
    return [
        RunSpec(
            model,
            topology,
            HarmonyConfig(
                scheme,
                batch=batch,
                iterations=spec.iterations,
                steady_state=spec.steady_state,
            ),
            label=scheme,
        )
        for scheme in job_schemes(spec)
    ]


def _json_float(value: float) -> float | str:
    """JSON-safe number: ``inf``/``nan`` as their ``repr`` strings (the
    wire format is strict JSON, which has no non-finite literals)."""
    return value if math.isfinite(value) else repr(value)


def _result_row(label: str, outcome: Any) -> dict:
    if isinstance(outcome, ReproError):
        return {
            "label": label,
            "ok": False,
            "error": {
                "type": type(outcome).__name__,
                "message": str(outcome),
            },
        }
    return {
        "label": label,
        "ok": True,
        "makespan": outcome.makespan,
        "samples": outcome.samples,
        "throughput": outcome.throughput,
        "events": outcome.events_processed,
        "num_tasks": outcome.num_tasks,
    }


def execute_job(
    spec: JobSpec,
    supervisor: "Supervisor",
    cache: "RunCache | None" = None,
) -> dict:
    """Run one job to completion under its supervisor; returns the
    JSON-able result document stored in the ledger and served over
    HTTP.

    Raises :class:`~repro.errors.DrainedError` when the supervisor was
    drained before the job finished — the server then leaves the job
    un-terminal so a restart re-runs it (replaying the settled specs
    from the job's journal).
    """
    if spec.kind in ("simulate", "sweep"):
        outcomes = supervisor.run_specs(_run_specs(spec), return_exceptions=True)
        for outcome in outcomes:
            if isinstance(outcome, DrainedError):
                raise outcome
        rows = [
            _result_row(label, outcome)
            for label, outcome in zip(job_schemes(spec), outcomes)
        ]
        if spec.kind == "simulate":
            return {"kind": spec.kind, "run": rows[0]}
        return {"kind": spec.kind, "runs": rows}

    if spec.kind == "tune":
        from repro.tuner.search import tune

        model = zoo.build(spec.model)
        topology = presets.gtx1080ti_server(num_gpus=spec.gpus)
        batch = BatchConfig(spec.microbatch_size, spec.microbatches)
        outcome = tune(
            model,
            topology,
            batch.per_replica_batch,
            cache=cache,
            supervisor=supervisor,
        )
        return {
            "kind": spec.kind,
            "best": {
                "label": outcome.best.label,
                "throughput": outcome.best.throughput,
            },
            "points": len(outcome.points),
            "feasible_points": len(outcome.feasible_points),
            "cache_hits": outcome.cache_hits,
            "cache_misses": outcome.cache_misses,
        }

    if spec.kind == "faults":
        from repro.experiments import faults_degradation

        rows = faults_degradation.run(
            model=zoo.build(spec.model),
            num_gpus=spec.gpus,
            iterations=spec.iterations,
            mttf_iters=spec.mttf,
            transient_probability=spec.transient_probability,
            seed=spec.seed,
            supervisor=supervisor,
        )
        return {
            "kind": spec.kind,
            "rows": [
                {
                    "scheme": row.scheme,
                    "mttf_iters": _json_float(row.mttf_iters),
                    "losses": row.losses,
                    "replans": row.replans,
                    "iterations_redone": row.iterations_redone,
                    "goodput": _json_float(row.goodput),
                    "goodput_ratio": _json_float(row.goodput_ratio),
                    "recovered": row.recovered,
                }
                for row in rows
            ],
        }

    raise JobSpecError(f"unknown job kind {spec.kind!r}")  # unreachable
