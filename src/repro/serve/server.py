"""The asyncio HTTP job server behind ``python -m repro serve``.

One process, three layers:

* an **asyncio front-end** (stdlib streams, no framework) parsing
  HTTP/1.1 by hand — every admission decision runs on the event-loop
  thread, which is the single serialization point for queue, quota,
  and tenant state (no locks, no races);
* a **thread-pool execution layer** (``workers`` concurrent jobs);
  each job runs under its own :class:`~repro.supervisor.Supervisor`
  with a per-job write-ahead journal, so specs inherit the watchdog /
  retry / quarantine machinery, and every tenant's supervisor shares
  one thread-safe :class:`~repro.perf.cache.RunCache` — two tenants
  submitting the same fingerprint dedup to one simulation;
* a **durable admission ledger** (:mod:`repro.serve.state`) fsync'd
  before the 202 response, so an acknowledged job survives ``kill -9``
  and a restart with the same ``--state-dir`` re-queues it, replaying
  journal-settled specs byte-identically.

Overload is bounded and observable, never absorbed: a full queue is
HTTP 503 and a tenant over quota is HTTP 429, both with ``Retry-After``
estimated from the measured service rate; ``/stats`` reports queue
depth, per-tenant usage, and cache hit rate.

SIGTERM/SIGINT start a graceful drain: ``/readyz`` flips to 503, new
submissions are refused, running jobs finish (after ``--drain-grace``
seconds their supervisors are drained instead — settled specs stay
journaled), queued jobs stay in the ledger for the next incarnation,
and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    ConfigError,
    DrainedError,
    JobSpecError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
)
from repro.perf.cache import RunCache
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobSpec,
    execute_job,
    job_total,
    parse_job,
    spec_to_json,
    supervisor_cache,
)
from repro.serve.state import JobLedger, load_ledger
from repro.serve.tenants import FairQueue, TenantPolicy, TenantTable
from repro.supervisor import RetryPolicy, Supervisor

#: Largest request body the server will read (a job document is tiny;
#: anything bigger is abuse, refused before it is buffered).
MAX_BODY_BYTES = 1 << 20

#: Default tenant name when neither header nor body names one.
DEFAULT_TENANT = "default"


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` can configure."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Durability root: jobs ledger, per-job journals, endpoint file.
    #: ``None`` = ephemeral (no crash recovery) — tests and load runs.
    state_dir: str | None = None
    #: Concurrent jobs (execution worker threads).
    workers: int = 2
    #: Worker *processes* per job supervisor (process isolation mode).
    sup_jobs: int = 1
    #: ``process`` = each spec in a supervised worker process (crash
    #: isolation + watchdog); ``inline`` = specs run in the job thread
    #: (no pool-spawn cost; retry/journal/drain still apply).
    isolation: str = "process"
    #: Global admission bound: queued jobs beyond this are 503'd.
    max_queue: int = 64
    #: Fallback policy for tenants absent from ``tenants``.
    default_tenant: TenantPolicy = field(default_factory=TenantPolicy)
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)
    max_attempts: int = 3
    #: Watchdog ceiling per spec attempt; also clamps per-job
    #: ``timeout_sec`` requests.
    spec_timeout: float | None = None
    cache_dir: str | None = None
    no_cache: bool = False
    #: Seconds a graceful drain waits for running jobs before draining
    #: their supervisors (``None`` = wait for them to finish).
    drain_grace: float | None = None
    #: Suppress the startup/shutdown banner (in-process harness use).
    quiet: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.isolation not in ("process", "inline"):
            raise ConfigError(
                f"isolation must be 'process' or 'inline', "
                f"got {self.isolation!r}"
            )


@dataclass
class JobRecord:
    """One job's in-memory lifecycle state."""

    id: str
    tenant: str
    seq: int
    spec: JobSpec
    status: str = QUEUED
    result: dict | None = None
    error: dict | None = None
    progress_done: int = 0
    progress_total: int | None = None
    supervisor_counters: dict | None = None
    #: Set by the execution thread while the job runs (drain hook).
    supervisor: Supervisor | None = None
    drain_requested: bool = False
    started_monotonic: float | None = None

    def to_json(self, detail: bool = False) -> dict:
        doc: dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.spec.kind,
            "model": self.spec.model,
            "status": self.status,
            "progress": {
                "done": self.progress_done,
                "total": self.progress_total,
            },
        }
        if self.status == DONE:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        if detail:
            doc["spec"] = spec_to_json(self.spec)
            if self.supervisor_counters is not None:
                doc["supervisor"] = self.supervisor_counters
        return doc


class JobServer:
    """The multi-tenant simulation job server (one instance, one
    event loop, one shared run cache)."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.cache: RunCache | None = (
            None
            if config.no_cache
            else RunCache(cache_dir=config.cache_dir)
        )
        self.tenants = TenantTable(config.tenants, config.default_tenant)
        self.queue = FairQueue(self.tenants)
        self.jobs: dict[str, JobRecord] = {}
        self._running: dict[str, JobRecord] = {}
        self._slots = config.workers
        self._seq = 0
        self._draining = False
        self._service_ewma = 1.0  # seconds per job, EWMA
        self._started_monotonic = time.monotonic()
        self._rejections = {
            "quota": 0, "queue_full": 0, "draining": 0, "invalid": 0,
        }
        self._sup_totals: dict[str, int] = {}
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._done: asyncio.Event | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-serve-job"
        )

        if config.state_dir is not None:
            os.makedirs(config.state_dir, exist_ok=True)
            os.makedirs(self._journal_dir(), exist_ok=True)
            ledger_path = os.path.join(config.state_dir, "jobs.jsonl")
            recovered = load_ledger(ledger_path)
            self.ledger: JobLedger | None = JobLedger(ledger_path)
            self._recover(recovered)
        else:
            self.ledger = None

    # -- paths -----------------------------------------------------------

    def _journal_dir(self) -> str:
        assert self.config.state_dir is not None
        return os.path.join(self.config.state_dir, "journals")

    def _journal_path(self, job_id: str) -> str | None:
        if self.config.state_dir is None:
            return None
        return os.path.join(self._journal_dir(), f"{job_id}.jsonl")

    # -- recovery --------------------------------------------------------

    def _recover(self, recovered) -> None:
        """Rebuild job state from the ledger: settled jobs become
        terminal records served without recomputation; pending jobs
        re-queue in submission order (their journals replay whatever
        already settled)."""
        self._seq = recovered.max_seq
        for entry in sorted(recovered.jobs.values(), key=lambda j: j.seq):
            try:
                spec = parse_job(entry.spec)
            except ReproError as exc:
                # A ledgered spec this build can no longer parse (e.g.
                # a scheme renamed between versions): settle it as
                # failed rather than crash-looping the whole server.
                spec = None
                parse_error = {
                    "type": type(exc).__name__, "message": str(exc),
                }
            record = JobRecord(
                id=entry.id,
                tenant=entry.tenant,
                seq=entry.seq,
                spec=spec if spec is not None else JobSpec("simulate", "lenet"),
                progress_total=job_total(spec) if spec is not None else None,
            )
            self.jobs[entry.id] = record
            usage = self.tenants.usage_for(entry.tenant)
            if entry.settled:
                record.status = entry.status
                record.result = entry.result
                record.error = entry.error
                if entry.status == DONE:
                    usage.done += 1
                elif entry.status == FAILED:
                    usage.failed += 1
                else:
                    usage.cancelled += 1
            elif spec is None:
                record.status = FAILED
                record.error = parse_error
                usage.failed += 1
                if self.ledger is not None:
                    # Settle it durably so the next restart agrees.
                    self.ledger.outcome(entry.id, FAILED, error=parse_error)
            else:
                record.status = QUEUED
                usage.queued += 1
                self.queue.push(entry.tenant, entry.id)

    # -- admission (event-loop thread only) ------------------------------

    def _retry_after(self) -> int:
        """Seconds a refused client should wait, from the measured
        service rate: the backlog's expected drain time across the
        worker slots, clamped to something a client will tolerate."""
        backlog = len(self.queue) + len(self._running) + 1
        estimate = backlog * self._service_ewma / max(1, self.config.workers)
        return max(1, min(600, math.ceil(estimate)))

    def submit(self, tenant: str, payload: Any) -> JobRecord:
        """Admit one job (or raise the structured refusal).  Called on
        the event-loop thread; the 202 is sent only after the ledger
        fsync returns."""
        if self._draining:
            self._rejections["draining"] += 1
            raise QueueFullError(len(self.queue), self.config.max_queue, 30)
        try:
            spec = parse_job(payload)
        except JobSpecError:
            self._rejections["invalid"] += 1
            raise
        try:
            self.tenants.check_quota(tenant)
        except QuotaExceededError:
            self._rejections["quota"] += 1
            raise
        if len(self.queue) >= self.config.max_queue:
            self._rejections["queue_full"] += 1
            raise QueueFullError(
                len(self.queue), self.config.max_queue, self._retry_after()
            )
        self._seq += 1
        job_id = f"job-{self._seq:06d}"
        record = JobRecord(
            id=job_id,
            tenant=tenant,
            seq=self._seq,
            spec=spec,
            progress_total=job_total(spec),
        )
        if self.ledger is not None:
            self.ledger.job(job_id, tenant, self._seq, spec_to_json(spec))
        self.jobs[job_id] = record
        self.tenants.usage_for(tenant).queued += 1
        self.queue.push(tenant, job_id)
        self._pump()
        return record

    def cancel(self, job_id: str) -> JobRecord | None:
        """Cancel a *queued* job; returns the record, or ``None`` when
        it is not cancellable (running or already terminal)."""
        record = self.jobs.get(job_id)
        if record is None or record.status != QUEUED:
            return None
        if not self.queue.remove(job_id):
            return None
        record.status = CANCELLED
        usage = self.tenants.usage_for(record.tenant)
        usage.queued -= 1
        usage.cancelled += 1
        if self.ledger is not None:
            self.ledger.outcome(job_id, CANCELLED)
        return record

    # -- execution -------------------------------------------------------

    def _pump(self) -> None:
        """Start queued jobs while worker slots are free (loop thread)."""
        if self._draining:
            return
        while self._slots > 0:
            job_id = self.queue.pop()
            if job_id is None:
                break
            self._start_job(self.jobs[job_id])

    def _start_job(self, record: JobRecord) -> None:
        record.status = RUNNING
        record.started_monotonic = time.monotonic()
        usage = self.tenants.usage_for(record.tenant)
        usage.queued -= 1
        usage.running += 1
        self._slots -= 1
        self._running[record.id] = record
        assert self._loop is not None
        future = self._loop.run_in_executor(
            self._executor, self._run_job, record
        )
        future.add_done_callback(
            lambda fut, rec=record: self._job_finished(rec, fut)
        )

    def _effective_timeout(self, spec: JobSpec) -> float | None:
        ceiling = self.config.spec_timeout
        requested = spec.timeout_sec
        if requested is None:
            return ceiling
        if ceiling is None:
            return requested
        return min(requested, ceiling)

    def _run_job(self, record: JobRecord):
        """Execute one job under its own supervisor (worker thread)."""
        sup = Supervisor(
            jobs=self.config.sup_jobs,
            cache=supervisor_cache(record.spec, self.cache),
            policy=RetryPolicy(
                max_attempts=self.config.max_attempts,
                timeout=self._effective_timeout(record.spec),
            ),
            journal=self._journal_path(record.id),
            inline=self.config.isolation == "inline",
            on_outcome=lambda i, outcome, rec=record: setattr(
                rec, "progress_done", rec.progress_done + 1
            ),
        )
        record.supervisor = sup
        if record.drain_requested:  # hard drain raced the spawn
            sup.request_drain()
        try:
            result = execute_job(record.spec, sup, cache=self.cache)
            return ("done", result, None, dict(sup._counters))
        except DrainedError as exc:
            return (
                "drained",
                None,
                {"type": type(exc).__name__, "message": str(exc)},
                dict(sup._counters),
            )
        except ReproError as exc:
            return (
                "failed",
                None,
                {"type": type(exc).__name__, "message": str(exc)},
                dict(sup._counters),
            )
        except Exception as exc:  # noqa: BLE001 — the job must settle
            return (
                "failed",
                None,
                {"type": type(exc).__name__, "message": str(exc)},
                dict(sup._counters),
            )

    def _job_finished(self, record: JobRecord, future) -> None:
        """Settle one finished job (loop thread, via future callback)."""
        self._slots += 1
        self._running.pop(record.id, None)
        record.supervisor = None
        usage = self.tenants.usage_for(record.tenant)
        usage.running -= 1
        status, result, error, counters = future.result()
        record.supervisor_counters = counters
        for key, value in counters.items():
            self._sup_totals[key] = self._sup_totals.get(key, 0) + value
        if record.started_monotonic is not None:
            elapsed = time.monotonic() - record.started_monotonic
            self._service_ewma = 0.8 * self._service_ewma + 0.2 * elapsed
        if status == "done":
            record.status = DONE
            record.result = result
            usage.done += 1
            if self.ledger is not None:
                self.ledger.outcome(record.id, DONE, result=result)
        elif status == "failed":
            record.status = FAILED
            record.error = error
            usage.failed += 1
            if self.ledger is not None:
                self.ledger.outcome(record.id, FAILED, error=error)
        else:
            # Drained mid-job: back to queued, *no* ledger outcome —
            # the next incarnation re-runs it, replaying the specs its
            # journal already settled.
            record.status = QUEUED
            record.progress_done = 0
            usage.queued += 1
        self._pump()
        self._maybe_finish()

    # -- drain -----------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting, let running jobs settle, then shut down.
        Idempotent; callable only on the event-loop thread (use
        ``loop.call_soon_threadsafe`` from elsewhere)."""
        if self._draining:
            return
        self._draining = True
        if self.config.drain_grace is not None and self._loop is not None:
            self._loop.call_later(self.config.drain_grace, self._hard_drain)
        self._maybe_finish()

    def _hard_drain(self) -> None:
        """Grace expired: drain the running jobs' supervisors.  Their
        settled specs are journaled; the jobs return to the queue for
        the next incarnation."""
        for record in self._running.values():
            record.drain_requested = True
            if record.supervisor is not None:
                record.supervisor.request_drain()

    def _maybe_finish(self) -> None:
        if self._draining and not self._running and self._done is not None:
            self._done.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- stats -----------------------------------------------------------

    def stats(self) -> dict:
        by_status: dict[str, int] = {}
        for record in self.jobs.values():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        doc: dict[str, Any] = {
            "draining": self._draining,
            "uptime_sec": time.monotonic() - self._started_monotonic,
            "queue": {
                "depth": len(self.queue),
                "limit": self.config.max_queue,
                "running": len(self._running),
                "workers": self.config.workers,
                "retry_after_hint": self._retry_after(),
            },
            "jobs": {"total": len(self.jobs), **by_status},
            "rejections": dict(self._rejections),
            "tenants": self.tenants.stats(),
            "supervisor": dict(self._sup_totals),
        }
        if self.cache is not None:
            doc["cache"] = {
                **self.cache.counters(),
                "hit_rate": self.cache.hit_rate,
                "entries": len(self.cache),
            }
        return doc

    # -- HTTP ------------------------------------------------------------

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, payload, extra = await self._handle_request(reader)
        except asyncio.IncompleteReadError:
            status, payload, extra = 400, {"error": "truncated request"}, {}
        except (asyncio.TimeoutError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 — never kill the server
            status, payload, extra = (
                500,
                {"error": "internal", "message": str(exc)},
                {},
            )
        body = json.dumps(payload, sort_keys=True).encode()
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "OK")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        headers += [f"{name}: {value}" for name, value in extra.items()]
        try:
            writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, Any, dict]:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return 400, {"error": "malformed request line"}, {}
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0") or "0"
        try:
            length = int(length_text)
        except ValueError:
            return 400, {"error": "bad Content-Length"}, {}
        if length > MAX_BODY_BYTES:
            return 413, {"error": "body too large"}, {}
        body = await reader.readexactly(length) if length else b""
        return self._route(method, target, headers, body)

    def _route(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> tuple[int, Any, dict]:
        path, _, query = target.partition("?")

        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok"}, {}
        if path == "/readyz" and method == "GET":
            if self._draining:
                return 503, {"status": "draining"}, {"Retry-After": "30"}
            return 200, {"status": "ready"}, {}
        if path == "/stats" and method == "GET":
            return 200, self.stats(), {}

        if path == "/jobs" and method == "POST":
            try:
                payload = json.loads(body.decode() or "null")
            except (ValueError, UnicodeDecodeError):
                self._rejections["invalid"] += 1
                return 400, {"error": "body is not valid JSON"}, {}
            tenant = headers.get("x-tenant")
            if tenant is None and isinstance(payload, dict):
                tenant = payload.get("tenant")
            if tenant is None:
                tenant = DEFAULT_TENANT
            if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
                self._rejections["invalid"] += 1
                return 400, {"error": "tenant must be 1-64 characters"}, {}
            try:
                record = self.submit(tenant, payload)
            except JobSpecError as exc:
                return 400, {"error": "invalid_job", "message": str(exc)}, {}
            except QuotaExceededError as exc:
                return (
                    429,
                    {
                        "error": "quota_exceeded",
                        "message": str(exc),
                        "tenant": exc.tenant,
                        "limit": exc.limit,
                        "in_use": exc.in_use,
                    },
                    {"Retry-After": str(self._retry_after())},
                )
            except QueueFullError as exc:
                return (
                    503,
                    {
                        "error": "draining" if self._draining else "queue_full",
                        "message": str(exc),
                        "depth": exc.depth,
                        "limit": exc.limit,
                    },
                    {"Retry-After": str(int(exc.retry_after))},
                )
            return (
                202,
                {
                    "id": record.id,
                    "status": record.status,
                    "tenant": record.tenant,
                    "url": f"/jobs/{record.id}",
                },
                {},
            )

        if path == "/jobs" and method == "GET":
            tenant_filter = None
            for pair in query.split("&"):
                if pair.startswith("tenant="):
                    tenant_filter = pair[len("tenant="):]
            records = [
                record.to_json()
                for record in sorted(
                    self.jobs.values(), key=lambda r: r.seq
                )
                if tenant_filter is None or record.tenant == tenant_filter
            ]
            return 200, {"jobs": records}, {}

        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            record = self.jobs.get(job_id)
            if method == "GET":
                if record is None:
                    return 404, {"error": "no such job", "id": job_id}, {}
                return 200, record.to_json(detail=True), {}
            if method == "DELETE":
                if record is None:
                    return 404, {"error": "no such job", "id": job_id}, {}
                cancelled = self.cancel(job_id)
                if cancelled is None:
                    return (
                        409,
                        {
                            "error": "not_cancellable",
                            "status": record.status,
                        },
                        {},
                    )
                return 200, cancelled.to_json(), {}
            return 405, {"error": "method not allowed"}, {}

        if path in ("/healthz", "/readyz", "/stats", "/jobs"):
            return 405, {"error": "method not allowed"}, {}
        return 404, {"error": "no such endpoint", "path": path}, {}

    # -- lifecycle -------------------------------------------------------

    async def _main(
        self, ready: Callable[["JobServer"], None] | None = None
    ) -> int:
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if self.config.state_dir is not None:
            endpoint = os.path.join(self.config.state_dir, "endpoint")
            with open(endpoint, "w") as fh:
                fh.write(f"{self.config.host}:{self.port}\n")
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.begin_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or platform without signals
        if not self.config.quiet:
            print(
                f"serve: listening on http://{self.config.host}:{self.port} "
                f"({len(self.queue)} job(s) recovered into the queue)",
                flush=True,
            )
        self._pump()
        if ready is not None:
            ready(self)
        async with server:
            await self._done.wait()
        server.close()
        await server.wait_closed()
        self._executor.shutdown(wait=True)
        if self.ledger is not None:
            self.ledger.close()
        if not self.config.quiet:
            print("serve: drained, exiting", flush=True)
        return 0

    def run(self) -> int:
        """Blocking entry point for the CLI; returns the exit code."""
        return asyncio.run(self._main())


class ServerHandle:
    """An in-process server running on a background thread — the test
    and load-generator harness (production uses ``repro serve``)."""

    def __init__(self, server: JobServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def base_url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def drain(self, timeout: float = 30.0) -> None:
        """Begin a graceful drain and wait for the server to exit."""
        loop = self.server._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.begin_drain)
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.drain()


def start_in_background(
    config: ServeConfig, timeout: float = 30.0
) -> ServerHandle:
    """Boot a :class:`JobServer` on a daemon thread and wait until it
    is accepting connections."""
    server = JobServer(config)
    ready = threading.Event()
    failure: list[BaseException] = []

    def runner() -> None:
        try:
            asyncio.run(server._main(ready=lambda _srv: ready.set()))
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            failure.append(exc)
            ready.set()

    thread = threading.Thread(
        target=runner, name="repro-serve", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=timeout):
        raise ConfigError("serve: server failed to start within timeout")
    if failure:
        raise failure[0]
    return ServerHandle(server, thread)
