"""Closed-loop load generation against a running job server.

``run_load`` drives N client threads, each submitting a job, polling
it to a terminal state, and immediately submitting the next — the
classic closed-loop harness, so offered load tracks service rate and
the interesting numbers are *latency percentiles* and *sustained
jobs/sec*, not a meaningless open-loop arrival rate.

This is both the ``repro bench`` "serve" section (a latency/throughput
regression gate over the admission + execution path) and a standalone
smoke tool for a deployed server.  Stdlib only (``http.client``).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

#: Default job mix: distinct lenet points so a run exercises both cold
#: simulation and (on repetition) the shared run cache.
DEFAULT_PAYLOADS: tuple[dict, ...] = tuple(
    {
        "kind": "simulate",
        "model": "lenet",
        "microbatches": mb,
        "scheme": scheme,
    }
    for mb in (2, 3, 4, 5)
    for scheme in ("harmony-pp", "pp-baseline")
)


@dataclass
class LoadReport:
    """What a load run measured."""

    jobs_done: int = 0
    jobs_failed: int = 0
    rejections: int = 0
    wall_sec: float = 0.0
    #: Submit-to-terminal latency per completed job, seconds.
    latencies: list[float] = field(default_factory=list)

    @property
    def jobs_per_sec(self) -> float:
        return self.jobs_done / self.wall_sec if self.wall_sec > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of completed-job latency, seconds."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
        return ordered[rank]

    def to_json(self) -> dict:
        return {
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "rejections": self.rejections,
            "wall_sec": self.wall_sec,
            "jobs_per_sec": self.jobs_per_sec,
            "p50_ms": self.percentile(50) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
        }


def _request(
    base: urllib.parse.ParseResult,
    method: str,
    path: str,
    body: dict | None = None,
    headers: dict | None = None,
    timeout: float = 30.0,
) -> tuple[int, Any]:
    conn = http.client.HTTPConnection(
        base.hostname, base.port, timeout=timeout
    )
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        try:
            doc = json.loads(raw.decode() or "null")
        except ValueError:
            doc = None
        return response.status, doc
    finally:
        conn.close()


def _client_loop(
    base: urllib.parse.ParseResult,
    tenant: str,
    payloads: tuple[dict, ...],
    jobs: int,
    poll_interval: float,
    report: LoadReport,
    lock: threading.Lock,
) -> None:
    submitted = 0
    offset = 0
    while submitted < jobs:
        payload = payloads[offset % len(payloads)]
        offset += 1
        started = time.monotonic()
        status, doc = _request(
            base, "POST", "/jobs", body=payload,
            headers={"X-Tenant": tenant, "Content-Type": "application/json"},
        )
        if status in (429, 503):
            with lock:
                report.rejections += 1
            time.sleep(poll_interval * 5)
            continue
        if status != 202 or not isinstance(doc, dict):
            raise ReproError(
                f"load: unexpected submit response {status}: {doc!r}"
            )
        submitted += 1
        job_url = doc["url"]
        while True:
            status, doc = _request(base, "GET", job_url)
            if status != 200 or not isinstance(doc, dict):
                raise ReproError(
                    f"load: unexpected poll response {status}: {doc!r}"
                )
            if doc["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(poll_interval)
        elapsed = time.monotonic() - started
        with lock:
            if doc["status"] == "done":
                report.jobs_done += 1
                report.latencies.append(elapsed)
            else:
                report.jobs_failed += 1


def run_load(
    base_url: str,
    clients: int = 4,
    jobs_per_client: int = 8,
    payloads: tuple[dict, ...] = DEFAULT_PAYLOADS,
    poll_interval: float = 0.002,
    tenant_prefix: str = "load",
) -> LoadReport:
    """Drive ``clients`` closed-loop clients, ``jobs_per_client`` jobs
    each, against ``base_url``; each client submits as its own tenant
    (``load-0``, ``load-1``, ...) so the run also exercises the fair
    queue and per-tenant accounting."""
    base = urllib.parse.urlparse(base_url)
    report = LoadReport()
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(
                base,
                f"{tenant_prefix}-{index}",
                # Stagger each client's starting offset so concurrent
                # clients don't all hammer the same spec.
                payloads[index % len(payloads):] + payloads[: index % len(payloads)],
                jobs_per_client,
                poll_interval,
                report,
                lock,
            ),
            name=f"load-client-{index}",
        )
        for index in range(clients)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_sec = time.monotonic() - started
    return report
