"""Per-tenant quotas and weighted-fair job scheduling.

Two mechanisms keep one tenant from starving the rest:

* **Quota** — a hard cap on jobs a tenant may have queued *or* running
  at once (:class:`TenantPolicy.max_jobs`).  Exceeding it is a
  structured :class:`~repro.errors.QuotaExceededError` (HTTP 429), so
  overload from one tenant is rejected at admission instead of
  absorbed as unbounded queue growth.

* **Weighted-fair dequeue** — admitted jobs are ordered by start-time
  fair queuing (SFQ): each job is tagged with a virtual finish time
  ``max(global_vtime, tenant's last tag) + cost / weight`` at push, and
  pops take the smallest tag.  A tenant with weight 2 drains twice as
  fast as a weight-1 tenant under contention, an idle tenant's unused
  share does not accumulate as credit (the ``global_vtime`` clamp), and
  the whole discipline is deterministic — tags are pure arithmetic,
  ties break on submission sequence — so tests can assert exact
  interleavings.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError, QuotaExceededError


@dataclass(frozen=True)
class TenantPolicy:
    """Admission knobs for one tenant (or the default for unknowns)."""

    #: Fair-share weight: relative dequeue rate under contention.
    weight: float = 1.0
    #: Max jobs queued + running at once; admission 429s beyond it.
    max_jobs: int = 8

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"tenant weight must be > 0, got {self.weight}")
        if self.max_jobs < 1:
            raise ConfigError(
                f"tenant max_jobs must be >= 1, got {self.max_jobs}"
            )


def parse_tenant_policies(doc: Any) -> dict[str, TenantPolicy]:
    """Parse a ``--tenant-config`` JSON document:
    ``{"alice": {"weight": 2.0, "max_jobs": 16}, ...}``."""
    if not isinstance(doc, dict):
        raise ConfigError("tenant config must be a JSON object")
    policies: dict[str, TenantPolicy] = {}
    for name, entry in doc.items():
        if not isinstance(entry, dict):
            raise ConfigError(f"tenant {name!r}: entry must be an object")
        unknown = sorted(set(entry) - {"weight", "max_jobs"})
        if unknown:
            raise ConfigError(
                f"tenant {name!r}: unknown field(s) {', '.join(unknown)}"
            )
        policies[name] = TenantPolicy(
            weight=float(entry.get("weight", 1.0)),
            max_jobs=int(entry.get("max_jobs", 8)),
        )
    return policies


@dataclass
class TenantUsage:
    """Live accounting for one tenant, reported by ``/stats``."""

    queued: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0

    @property
    def in_use(self) -> int:
        """Jobs counted against the quota."""
        return self.queued + self.running


class TenantTable:
    """Policies + usage for every tenant the server has seen."""

    def __init__(
        self,
        policies: dict[str, TenantPolicy] | None = None,
        default: TenantPolicy | None = None,
    ):
        self.policies = dict(policies or {})
        self.default = default if default is not None else TenantPolicy()
        self.usage: dict[str, TenantUsage] = {}

    def policy(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default)

    def usage_for(self, tenant: str) -> TenantUsage:
        if tenant not in self.usage:
            self.usage[tenant] = TenantUsage()
        return self.usage[tenant]

    def check_quota(self, tenant: str) -> None:
        """Raise :class:`~repro.errors.QuotaExceededError` when one more
        admission would push ``tenant`` past its cap."""
        policy = self.policy(tenant)
        usage = self.usage_for(tenant)
        if usage.in_use + 1 > policy.max_jobs:
            usage.rejected += 1
            raise QuotaExceededError(tenant, policy.max_jobs, usage.in_use)

    def stats(self) -> dict:
        return {
            name: {
                "queued": usage.queued,
                "running": usage.running,
                "done": usage.done,
                "failed": usage.failed,
                "cancelled": usage.cancelled,
                "rejected": usage.rejected,
                "quota": self.policy(name).max_jobs,
                "weight": self.policy(name).weight,
            }
            for name, usage in sorted(self.usage.items())
        }


@dataclass(order=True)
class _Entry:
    tag: float
    seq: int
    job_id: str = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class FairQueue:
    """Start-time fair queue over opaque job ids.

    Not thread-safe by design: the server touches it only from the
    event-loop thread, which is the serialization point for all
    admission state.
    """

    def __init__(self, table: TenantTable):
        self._table = table
        self._heap: list[_Entry] = []
        self._entries: dict[str, _Entry] = {}
        self._last_tag: dict[str, float] = {}
        self._vtime = 0.0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, tenant: str, job_id: str, cost: float = 1.0) -> None:
        weight = self._table.policy(tenant).weight
        tag = max(self._vtime, self._last_tag.get(tenant, 0.0)) + cost / weight
        self._last_tag[tenant] = tag
        entry = _Entry(tag=tag, seq=self._seq, job_id=job_id)
        self._seq += 1
        self._entries[job_id] = entry
        heapq.heappush(self._heap, entry)

    def pop(self) -> str | None:
        """The next job id in fair order, or ``None`` when empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            del self._entries[entry.job_id]
            self._vtime = entry.tag
            return entry.job_id
        return None

    def remove(self, job_id: str) -> bool:
        """Lazily cancel a queued job; True when it was queued."""
        entry = self._entries.pop(job_id, None)
        if entry is None:
            return False
        entry.cancelled = True
        return True

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._entries
