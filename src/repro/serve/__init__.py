"""Simulation as a service (``python -m repro serve``).

A crash-tolerant, multi-tenant job server over the existing simulation
stack: tenants POST simulate/sweep/tune/faults jobs as JSON, the
server multiplexes them onto supervised per-job executions sharing one
thread-safe run cache, and overload is bounded and observable —
per-tenant quotas (HTTP 429), a global admission queue bound
(HTTP 503 + ``Retry-After``), weighted-fair scheduling across tenants,
and fsync'd ledger + journal recovery across ``kill -9``.

Modules:

* :mod:`~repro.serve.jobs` — the job model (parse, validate, execute);
* :mod:`~repro.serve.tenants` — quotas, usage accounting, the
  start-time fair queue;
* :mod:`~repro.serve.state` — the durable jobs ledger;
* :mod:`~repro.serve.server` — the asyncio HTTP front-end;
* :mod:`~repro.serve.load` — the closed-loop load generator behind the
  ``repro bench`` serve section.
"""

from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_KINDS,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobSpec,
    execute_job,
    parse_job,
    spec_to_json,
)
from repro.serve.load import LoadReport, run_load
from repro.serve.server import (
    JobRecord,
    JobServer,
    ServeConfig,
    ServerHandle,
    start_in_background,
)
from repro.serve.state import JobLedger, LedgerState, load_ledger
from repro.serve.tenants import (
    FairQueue,
    TenantPolicy,
    TenantTable,
    parse_tenant_policies,
)

__all__ = [
    "JOB_KINDS",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "JobSpec",
    "parse_job",
    "spec_to_json",
    "execute_job",
    "JobServer",
    "JobRecord",
    "ServeConfig",
    "ServerHandle",
    "start_in_background",
    "JobLedger",
    "LedgerState",
    "load_ledger",
    "TenantPolicy",
    "TenantTable",
    "FairQueue",
    "parse_tenant_policies",
    "LoadReport",
    "run_load",
]
