"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's figures/tables: it runs
the corresponding experiment driver under ``pytest-benchmark`` (one
round — these are deterministic simulations, not microbenchmarks where
variance matters) and prints the same rows/series the paper reports.
Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the workload exactly once under the benchmark clock.

    The simulations are deterministic; repeating them only slows the
    suite without changing any reported number.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run


def print_table(table) -> None:
    print()
    print(table if isinstance(table, str) else table.render())
