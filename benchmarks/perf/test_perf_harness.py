"""Perf-layer benchmarks: the tracked harness of ``repro.perf.bench``
exercised in quick mode.

Where the figure benchmarks track the *simulated* numbers the paper
reports, these track the *simulator's own* performance surface: fresh
single-run latency on the Fig. 4 workload, run-cache hit latency, and
the serial-vs-parallel sweep parity that ``--jobs N`` relies on.  The
authoritative tracked record is ``BENCH_sim.json`` at the repo root
(written by ``python -m repro bench``); this suite keeps the harness
itself honest under pytest.
"""

from repro.perf import bench

import pytest


def print_report(text: str) -> None:
    print()
    print(text)


def test_single_run_fig4(once):
    """The Fig. 4 workload simulates, and the events/sec numerator is
    the engine's own event counter (nonzero, stable across repeats)."""
    spec = bench._fig4_workload()
    timing = once(bench._time_single, spec, 3)
    print_report(
        f"fig4: {timing['wall_sec'] * 1e3:.3f} ms, "
        f"{timing['events']} events, "
        f"{timing['events_per_sec']:,.0f} events/s"
    )
    assert timing["events"] > 0
    assert timing["trace_events"] > 0
    assert timing["events_per_sec"] > 0


def test_cache_hit_beats_fresh_run(once):
    """A cache hit (deserialize) must be faster than re-simulating."""
    timing = once(bench._time_cache, bench._fig4_workload())
    print_report(
        f"cache: fresh {timing['fresh_sec'] * 1e3:.3f} ms -> "
        f"hit {timing['hit_sec'] * 1e3:.3f} ms (x{timing['hit_speedup']:.0f})"
    )
    assert timing["hit_speedup"] > 1.0
    assert timing["hit_rate"] == 1.0


def test_sweep_parallel_parity(once):
    """The jobs=2 sweep must agree with the serial sweep point-for-point
    (``_time_sweep`` raises if any makespan diverges)."""
    timing = once(bench._time_sweep, 2, True)
    print_report(
        f"sweep: {timing['points']} points, serial {timing['serial_sec']:.3f} s, "
        f"jobs={timing['jobs']} {timing['parallel_sec']:.3f} s"
    )
    assert timing["points"] == 4


def test_quick_report_shape(once):
    """The full quick harness produces the BENCH_sim.json payload with
    every section the CI gate and the docs reference."""
    report = once(bench.run_bench, quick=True, jobs=2)
    print_report(bench.render(report))
    assert report["schema"] == bench.SCHEMA
    assert set(report["current"]) == set(bench._SECTIONS)
    for name in ("fig4", "fig4_scaled"):
        assert report["baseline"][name]["events_per_sec"] > 0
        assert report["speedup_vs_baseline"][name] > 0
