"""Interconnect sensitivity: where swap-bound turns compute-bound.

The paper's bottleneck analysis (§2, Fig. 2(b)) implies that the
baseline's pain scales with the host link's speed.  This bench sweeps
the uplink generation (PCIe gen2/gen3/gen4-equivalent bandwidths) for
the Fig. 2(a) DP workload and locates the crossover: with a fast
enough fabric, throughput stops tracking bandwidth (compute-bound) and
the Harmony/baseline gap collapses — the same observation the paper
makes about NVLink-rich servers.
"""

from repro.hardware.device import gtx1080ti, host_cpu
from repro.hardware.links import LinkSpec
from repro.hardware.topology import Topology
from repro.models.transformer import bert_large
from repro.schedulers.base import BatchConfig
from repro.schedulers.dp_baseline import DataParallelBaseline
from repro.schedulers.harmony_dp import HarmonyDP
from repro.sim.executor import Executor
from repro.units import GB

from conftest import print_table
from repro.util.tables import Table


def _server(uplink_gbps: float, num_gpus: int = 4) -> Topology:
    topo = Topology(name=f"uplink-{uplink_gbps:.0f}")
    topo.add_device(host_cpu())
    switch = topo.add_switch("switch0")
    topo.add_link(
        LinkSpec("uplink0", bandwidth_bytes_per_sec=uplink_gbps * GB), switch, "cpu"
    )
    for g in range(num_gpus):
        gpu = topo.add_device(gtx1080ti(f"gpu{g}"))
        topo.add_link(
            LinkSpec(f"pcie-gpu{g}", bandwidth_bytes_per_sec=12 * GB),
            gpu.name, switch,
        )
    topo.validate()
    return topo


def test_uplink_bandwidth_sweep(once):
    model = bert_large(seq_len=512)
    bandwidths = [3, 6, 12, 24, 48, 96]  # GB/s: ~gen2 x8 through beyond-gen5

    def sweep():
        rows = []
        for bw in bandwidths:
            topo = _server(bw)
            plan = DataParallelBaseline(
                model, topo, BatchConfig(5, 1)
            ).plan()
            baseline = Executor(topo, plan).run()
            topo2 = _server(bw)
            plan2 = HarmonyDP(model, topo2, BatchConfig(1, 5)).plan()
            harmony = Executor(topo2, plan2).run()
            rows.append((bw, baseline, harmony))
        return rows

    rows = once(sweep)
    table = Table(
        ["uplink (GB/s)", "baseline seqs/s", "harmony-dp seqs/s",
         "harmony/baseline", "uplink util (baseline)"],
        title="host-uplink bandwidth sweep (BERT DP, 4 GPUs, batch 5)",
    )
    for bw, baseline, harmony in rows:
        __, util = baseline.bottleneck_link()
        table.add_row(
            [
                bw,
                f"{baseline.throughput:.2f}",
                f"{harmony.throughput:.2f}",
                f"{harmony.throughput / baseline.throughput:.2f}",
                f"{100 * util:.0f}%",
            ]
        )
    print_table(table)

    base_rates = [b.throughput for _, b, _ in rows]
    # Throughput rises with bandwidth while swap-bound...
    assert base_rates[1] > base_rates[0]
    # ...then saturates: the last doubling buys < 15%.
    assert base_rates[-1] < 1.15 * base_rates[-2]
    # At the slowest fabric the link is the bottleneck.
    __, util_slow = rows[0][1].bottleneck_link()
    assert util_slow > 0.9
