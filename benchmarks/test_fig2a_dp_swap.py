"""Fig. 2(a) — DP with per-GPU tensor swapping, BERT, 1-4 GPUs.

Paper shape: global swap-out volume grows linearly with the number of
GPUs (~15 GB -> ~60 GB on the authors' testbed) while throughput scales
strongly sublinearly (~0.55 -> ~1.5 seqs/s, < 3x at 4 GPUs) because all
swap traffic rides the shared host uplink.  Absolute values differ on
the simulated server; the linearity and sublinearity must hold.
"""

from repro.experiments import fig2a_dp_swap

from conftest import print_table


def test_fig2a_dp_swap(once):
    rows = once(fig2a_dp_swap.run)
    print_table(fig2a_dp_swap.table(rows))

    # Swap volume: linear in N (paper: "grows linearly with the number
    # of GPUs").
    per_gpu = [r.swap_out_bytes / r.num_gpus for r in rows]
    for volume in per_gpu[1:]:
        assert abs(volume - per_gpu[0]) / per_gpu[0] < 0.05

    # Throughput: sublinear, bottlenecked by the host link.
    speedup = rows[-1].throughput / rows[0].throughput
    assert 1.0 < speedup < 3.0
    assert rows[-1].uplink_utilization > 0.8
