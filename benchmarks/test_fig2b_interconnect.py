"""Fig. 2(b) — intra-server interconnect oversubscription.

The paper's diagram (GPUs behind PCIe switches, one uplink to host
memory, 4:1/8:1 oversubscription) as a measurable microbenchmark:
per-GPU host bandwidth collapses as concurrent swappers are added,
while switch-local p2p bandwidth is unaffected.
"""

from repro.experiments import fig2b_interconnect
from repro.hardware import presets

from conftest import print_table


def test_fig2b_host_uplink_contention(once):
    rows = once(fig2b_interconnect.run)
    print_table(fig2b_interconnect.table(rows))
    assert rows[0].oversubscription == 4.0
    # 4 concurrent swappers each get ~1/4 of the uplink.
    ratio = rows[3].per_gpu_host_bandwidth / rows[0].per_gpu_host_bandwidth
    assert abs(ratio - 0.25) < 0.02
    # p2p does not degrade.
    assert rows[3].p2p_bandwidth == rows[0].p2p_bandwidth


def test_fig2b_8to1_oversubscription(once):
    topo = presets.commodity_server(num_gpus=8, gpus_per_switch=8)
    rows = once(fig2b_interconnect.run, topo)
    print_table(fig2b_interconnect.table(rows))
    assert rows[0].oversubscription == 8.0
    ratio = rows[-1].per_gpu_host_bandwidth / rows[0].per_gpu_host_bandwidth
    assert abs(ratio - 1 / 8) < 0.02
