"""Steady-state methodology validation + CPU-offloaded optimizer bench.

* Multi-iteration replay vs the 1-iteration + flush accounting the rest
  of the suite uses: the two must agree on per-iteration weight volume.
* ZeRO-Offload-style CPU optimizer (paper-cited): Adam moments never
  cross the swap link; measures the throughput and traffic effect on
  the weight-dominated GPT-2 XL workload.
"""

import pytest

from repro import BatchConfig, HarmonyConfig, HarmonyOptions, HarmonySession
from repro.hardware import presets
from repro.memory.policy import MemoryPolicy
from repro.models import zoo
from repro.models.transformer import gpt2_xl
from repro.schedulers.base import BatchConfig as BC
from repro.schedulers.single import SingleGpuScheduler
from repro.sim.executor import ExecOptions, Executor
from repro.tensors.tensor import TensorKind
from repro.units import GB, MB

from conftest import print_table
from repro.util.tables import Table
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.presets import commodity_server


def _tight(num_gpus, capacity):
    return commodity_server(
        num_gpus=num_gpus,
        gpu_factory=lambda n: DeviceSpec(n, DeviceKind.GPU, capacity, 4.5e12),
        name="tight",
    )


def test_steady_state_validation(once):
    model = zoo.synthetic_uniform(
        num_layers=4, param_bytes_per_layer=100 * MB, activation_bytes=25 * MB
    )

    def measure():
        rows = []
        for iters in (1, 2, 4, 8):
            topo = _tight(1, 420 * MB)
            plan = SingleGpuScheduler(
                model, topo, BC(1, 2), policy=MemoryPolicy.paper_baseline()
            ).plan()
            result = Executor(
                topo, plan,
                options=ExecOptions(iterations=iters, flush_at_end=False),
            ).run()
            rows.append((iters, result.stats.kind_swap_volume(TensorKind.WEIGHT)))
        topo = _tight(1, 420 * MB)
        plan = SingleGpuScheduler(
            model, topo, BC(1, 2), policy=MemoryPolicy.paper_baseline()
        ).plan()
        flushed = Executor(topo, plan).run()
        return rows, flushed.stats.kind_swap_volume(TensorKind.WEIGHT)

    rows, flush_volume = once(measure)
    table = Table(
        ["iterations", "weight volume (GB)", "per-iter marginal (GB)"],
        title="steady state: replay vs 1-iteration + flush accounting",
    )
    marginals = []
    prev_iters, prev_volume = 0, 0.0
    for iters, volume in rows:
        marginal = (volume - prev_volume) / (iters - prev_iters)
        marginals.append(marginal)
        table.add_row([iters, f"{volume / GB:.2f}", f"{marginal / GB:.2f}"])
        prev_iters, prev_volume = iters, volume
    table.add_row(["1 + flush", f"{flush_volume / GB:.2f}", "-"])
    print_table(table)
    # Marginal (steady-state) volume equals the flush-model number.
    assert marginals[-1] == pytest.approx(flush_volume, rel=1e-6)


def test_optimizer_placement(once):
    """Three placements of the Adam state for GPT-2 XL, all paper-cited:
    on-GPU (swapped like everything else), CPU-offloaded (ZeRO-Offload:
    zero K traffic), and sharded across replicas (ZeRO stage-1: K
    traffic divided N ways at the cost of weight all-gathers)."""
    model = gpt2_xl(seq_len=1024)
    topology = presets.gtx1080ti_server(4)

    def run_all():
        out = {}
        cases = [
            ("pp / gpu optimizer", "harmony-pp", HarmonyOptions()),
            ("pp / cpu optimizer", "harmony-pp",
             HarmonyOptions(cpu_optimizer=True)),
            ("dp / gpu optimizer", "harmony-dp", HarmonyOptions()),
            ("dp / zero-1 sharded", "harmony-dp",
             HarmonyOptions(zero_optimizer=True)),
        ]
        for label, mode, opts in cases:
            session = HarmonySession(
                model, topology,
                HarmonyConfig(mode, batch=BatchConfig(1, 2), options=opts),
            )
            out[label] = session.run()
        return out

    results = once(run_all)
    table = Table(
        ["variant", "samples/s", "host traffic (GB)", "K traffic (GB)"],
        title="optimizer placement (GPT-2 XL, 4x 1080Ti)",
    )
    for label, result in results.items():
        table.add_row(
            [
                label,
                f"{result.throughput:.3f}",
                f"{result.host_traffic / GB:.1f}",
                f"{result.stats.kind_swap_volume(TensorKind.OPT_STATE) / GB:.1f}",
            ]
        )
    print_table(table)
    assert results["pp / cpu optimizer"].stats.kind_swap_volume(
        TensorKind.OPT_STATE
    ) == 0
    assert results["pp / cpu optimizer"].throughput > results[
        "pp / gpu optimizer"
    ].throughput
    k_plain = results["dp / gpu optimizer"].stats.kind_swap_volume(
        TensorKind.OPT_STATE
    )
    k_zero = results["dp / zero-1 sharded"].stats.kind_swap_volume(
        TensorKind.OPT_STATE
    )
    assert k_zero < 0.5 * k_plain
    assert results["dp / zero-1 sharded"].throughput > results[
        "dp / gpu optimizer"
    ].throughput
