"""Section 1's motivating claim: "model parameters are only part of the
memory footprint of training; gradients, stashed activations, optimizer
states ... all taken together significantly blow up the memory
footprint", and the footprint is also a function of sample size and
batch size.

The bench quantifies the blow-up factor (footprint / parameter bytes)
for the Fig. 1 models at several batch sizes and checks the paper's
qualitative claims: the factor is large (>> 1), grows with batch size,
and grows with sample (sequence) length.
"""

from repro.models import zoo
from repro.models.transformer import bert_large
from repro.units import GB

from conftest import print_table
from repro.util.tables import Table


def test_footprint_blowup(once):
    def measure():
        rows = []
        for name in ("bert-large", "gpt2", "t5"):
            model = zoo.build(name)
            for batch in (1, 8, 32):
                footprint = model.training_footprint_bytes(batch)
                rows.append(
                    (name, batch, model.param_bytes, footprint)
                )
        return rows

    rows = once(measure)
    table = Table(
        ["model", "batch", "params (GB)", "footprint (GB)", "blow-up"],
        title="training footprint vs parameter size (section 1)",
    )
    for name, batch, params, footprint in rows:
        table.add_row(
            [name, batch, f"{params / GB:.1f}", f"{footprint / GB:.1f}",
             f"{footprint / params:.1f}x"]
        )
    print_table(table)
    by_key = {(n, b): f for n, b, _, f in rows}
    for name, batch, params, footprint in rows:
        assert footprint > 4 * params  # grads + Adam alone are 4x params...
        if batch > 1:
            assert footprint > by_key[(name, 1)]  # ...and activations scale


def test_sample_size_scaling(once):
    """Longer sequences (the paper's 'sample size') inflate the stash
    even at fixed parameter count."""

    def measure():
        return [
            (seq, bert_large(seq_len=seq).training_footprint_bytes(8))
            for seq in (128, 256, 512)
        ]

    rows = once(measure)
    table = Table(
        ["seq len", "footprint at batch 8 (GB)"],
        title="sample-size effect on footprint (BERT-large)",
    )
    for seq, footprint in rows:
        table.add_row([seq, f"{footprint / GB:.1f}"])
    print_table(table)
    footprints = [f for _, f in rows]
    assert footprints == sorted(footprints)
    assert footprints[-1] > 2 * footprints[0]
