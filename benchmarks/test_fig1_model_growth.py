"""Fig. 1 — model size growth, LeNet (1998) through GPT-3 (2020).

Paper series: 60 K, 61 M, 278 M, 557 M, 1.5 B, 11 B, 175 B.  The bench
rebuilds every model from its architecture and prints published vs
reconstructed parameter counts.
"""

from repro.experiments import fig1_growth

from conftest import print_table


def test_fig1_model_growth(once):
    rows = once(fig1_growth.run)
    print_table(fig1_growth.table(rows))
    for row in rows:
        assert abs(row.relative_error) < 0.10, row.name
    published = [r.published_params for r in rows]
    assert all(b > a for a, b in zip(published, published[1:]))
