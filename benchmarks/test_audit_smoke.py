"""Audit smoke: every scheme x hardware-preset combination the
benchmarks exercise must pass the physical-consistency audit.

Where the figure benchmarks check that the *numbers* come out the way
the paper says, this suite checks that the runs producing those
numbers were physically possible at all — no overlapping compute, no
traffic faster than the wires, ledgers that reconcile with the trace.
It runs BERT-large rather than GPT-2 XL so auditing the full grid
stays cheap enough for CI.
"""

from repro import BatchConfig, HarmonyConfig, HarmonySession
from repro.errors import ReproError
from repro.hardware import presets
from repro.models import zoo
from repro.validate import differential_check

import pytest

from conftest import print_table

SCHEMES = [
    "single", "dp-baseline", "harmony-dp", "pp-baseline", "harmony-pp",
    "harmony-tp",
]

TOPOLOGIES = {
    "gtx1080ti-4": lambda: presets.gtx1080ti_server(num_gpus=4),
    "gtx1080ti-2": lambda: presets.gtx1080ti_server(num_gpus=2),
    "dgx1-4": lambda: presets.dgx1_like_server(num_gpus=4),
    "cluster-2x2": lambda: presets.multi_server_cluster(2, 2),
}


@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
def test_audit_grid(once, topo_name):
    model = zoo.build("bert-large")
    topology = TOPOLOGIES[topo_name]()

    def audit_all():
        reports = {}
        for scheme in SCHEMES:
            session = HarmonySession(
                model, topology, HarmonyConfig(scheme, batch=BatchConfig(1, 4))
            )
            try:
                reports[scheme] = session.audit_report()
            except ReproError as exc:
                print(f"{topo_name}/{scheme}: infeasible ({exc})")
        return reports

    reports = once(audit_all)
    from repro.core.report import audit_summary

    print_table(audit_summary(list(reports.values())))
    assert reports, f"no scheme feasible on {topo_name}"
    failures = {s: r for s, r in reports.items() if not r.passed}
    assert not failures, {
        s: [str(v.kind) for v in r.violations] for s, r in failures.items()
    }


def test_differential_agreement(once):
    """The schedulers cross-checked against each other and the §3
    analytic accounting on the paper's 4-GPU commodity box."""
    model = zoo.build("bert-large")
    topology = presets.gtx1080ti_server(num_gpus=4)
    report = once(
        differential_check, model, topology, total_microbatches=4, audit=True
    )
    print_table(report.render())
    assert report.passed, report.render()
