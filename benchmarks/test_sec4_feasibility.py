"""Section 4 — end-to-end training feasibility.

Paper claims: GPT-3 pre-training took 314 ZFLOPs (months on thousands
of GPUs, *years* on tens); fine-tuning needs < 10s of exaFLOPs (*days*
on a modest deployment).  The bench recomputes all three from the
reconstructed GPT-3 and the 6 * params * tokens rule.
"""

from repro.experiments import sec4_feasibility

from conftest import print_table


def test_sec4_feasibility(once):
    result = once(sec4_feasibility.run)
    print_table(result.table)
    # 6 * 175e9 * 300e9 = 3.15e23: within 1% of the paper's 314 ZFLOPs.
    assert abs(result.flops_relative_error) < 0.01
    large, tens, finetune = result.cases
    assert large.days < 365          # months on a large cluster
    assert tens.years > 5            # years on tens of GPUs
    assert finetune.days < 10        # days on a modest server
