"""Memory-aware stage partitioning — what per-GPU virtualization cannot
do alone (Fig. 2(c)'s root cause) but a scheduler with global memory
context can.

The paper: pipeline "stages are designed to be compute-load balanced,
but pipelining schemes inherently have imbalanced memory requirements
... Lacking this context, and operating in isolation on individual
GPUs, naively using GPU memory virtualization ... can result in swap
imbalance across stages thus exposing bottleneck stages."

This bench gives the baseline pipeline scheduler exactly that context
(stage partition weighted by the 1F1B in-flight stash count) and
measures the effect on the Fig. 2(c) workload.
"""

from repro.hardware import presets
from repro.models.transformer import bert_large
from repro.schedulers.base import BatchConfig
from repro.schedulers.pp_baseline import PipelineBaseline
from repro.sim.executor import Executor
from repro.units import GB

from conftest import print_table
from repro.util.tables import Table


def test_memory_aware_stage_partitioning(once):
    model = bert_large(seq_len=512)

    def run_both():
        out = {}
        for balance in ("compute", "memory"):
            topo = presets.gtx1080ti_server(4)
            plan = PipelineBaseline(
                model, topo, BatchConfig(8, 8), balance=balance
            ).plan()
            out[balance] = (plan.notes["stages"], Executor(topo, plan).run())
        return out

    results = once(run_both)
    table = Table(
        ["partition objective", "layers/stage", "per-GPU footprint (GB)",
         "max/min", "seqs/s"],
        title="stage partitioning with vs without memory context (BERT, 1F1B)",
    )
    for balance, (stages, result) in results.items():
        demands = [result.devices[d].peak_demand for d in sorted(result.devices)]
        table.add_row(
            [
                balance,
                "/".join(str(len(s)) for s in stages),
                " / ".join(f"{d / GB:.1f}" for d in demands),
                f"{max(demands) / min(demands):.2f}",
                f"{result.throughput:.2f}",
            ]
        )
    print_table(table)
    compute_result = results["compute"][1]
    memory_result = results["memory"][1]
    c_demands = [compute_result.devices[d].peak_demand
                 for d in sorted(compute_result.devices)]
    m_demands = [memory_result.devices[d].peak_demand
                 for d in sorted(memory_result.devices)]
    # Memory context flattens the footprint distribution...
    assert max(m_demands) / min(m_demands) < 0.5 * (
        max(c_demands) / min(c_demands)
    )
    # ...which removes the bottleneck stage and lifts throughput.
    assert memory_result.throughput > 1.3 * compute_result.throughput
