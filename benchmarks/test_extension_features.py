"""Extension benchmarks: the paper's sketched directions, made concrete.

* **recompute** — Chen et al.'s checkpointing (paper-cited memory
  optimization) interacting with pack size (section 4: "increasing the
  pack size can reduce p2p transfer and swap volume (when using
  recompute)");
* **operation decomposition (harmony-tp)** — paper key idea #2: split
  each matmul across GPUs, shrinking per-GPU persistent state N-fold
  for two collectives per layer;
* **multi-machine training** — section 4's extension: two commodity
  servers over 100 GbE, hierarchical interconnects and all.
"""

from repro import BatchConfig, HarmonyConfig, HarmonyOptions, HarmonySession
from repro.hardware import presets
from repro.models.transformer import bert_large, gpt2_xl
from repro.tensors.tensor import TensorKind
from repro.units import GB

from conftest import print_table
from repro.util.tables import Table


def test_recompute_ablation(once):
    """BERT on the 4-GPU box: checkpointing collapses the stash traffic
    that dominates Fig. 2(a)'s swap volume, at ~33% extra compute."""
    model = bert_large(seq_len=512)
    topology = presets.gtx1080ti_server(4)

    def run_all():
        rows = []
        for label, opts in [
            ("no recompute", HarmonyOptions()),
            ("recompute", HarmonyOptions(recompute=True)),
            ("recompute pack=4", HarmonyOptions(recompute=True, pack_size=4)),
        ]:
            session = HarmonySession(
                model, topology,
                HarmonyConfig("harmony-pp", batch=BatchConfig(8, 4), options=opts),
            )
            result = session.run()
            rows.append((label, result))
        return rows

    rows = once(run_all)
    table = Table(
        ["variant", "samples/s", "stash traffic (GB)", "host traffic (GB)"],
        title="recompute ablation (BERT-large, harmony-pp, 4x 1080Ti)",
    )
    for label, result in rows:
        table.add_row(
            [
                label,
                f"{result.throughput:.2f}",
                f"{result.stats.kind_swap_volume(TensorKind.STASH) / GB:.1f}",
                f"{result.host_traffic / GB:.1f}",
            ]
        )
    print_table(table)
    base, ckpt = rows[0][1], rows[1][1]
    assert ckpt.stats.kind_swap_volume(TensorKind.STASH) < 0.5 * base.stats.kind_swap_volume(
        TensorKind.STASH
    )
    assert ckpt.throughput > base.throughput  # swap-bound: recompute wins


def test_operation_decomposition(once):
    """GPT-2 XL: sharding state 4 ways brings per-GPU persistent state
    from 24.9 GB (does not fit 11 GB) to 6.2 GB (fits), removing the
    weight re-swaps data parallelism pays."""
    model = gpt2_xl(seq_len=1024)
    topology = presets.gtx1080ti_server(4)

    def run_two():
        out = {}
        for mode in ("harmony-dp", "harmony-tp"):
            session = HarmonySession(
                model, topology, HarmonyConfig(mode, batch=BatchConfig(1, 2))
            )
            out[mode] = session.run()
        return out

    results = once(run_two)
    table = Table(
        ["scheme", "samples/s", "weight traffic (GB)", "collective (GB)"],
        title="operation decomposition vs replication (GPT-2 XL)",
    )
    for mode, result in results.items():
        table.add_row(
            [
                mode,
                f"{result.throughput:.3f}",
                f"{result.stats.kind_swap_volume(TensorKind.WEIGHT) / GB:.1f}",
                f"{result.stats.p2p_volume() / GB:.1f}",
            ]
        )
    print_table(table)
    dp_w = results["harmony-dp"].stats.kind_swap_volume(TensorKind.WEIGHT)
    tp_w = results["harmony-tp"].stats.kind_swap_volume(TensorKind.WEIGHT)
    assert tp_w < 0.25 * dp_w  # sharded weights stop thrashing
    assert results["harmony-tp"].throughput > results["harmony-dp"].throughput


def test_multi_server_scaling(once):
    """Section 4 multi-machine: doubling servers relieves memory
    pressure despite the slower inter-server network."""
    model = gpt2_xl(seq_len=1024)

    def run_three():
        rows = []
        for label, topo in [
            ("1 server (4 GPUs)", presets.gtx1080ti_server(4)),
            ("2 servers (8 GPUs), 100GbE",
             presets.multi_server_cluster(2, 4, network="100gbe")),
            ("2 servers (8 GPUs), IB",
             presets.multi_server_cluster(2, 4, network="ib")),
        ]:
            session = HarmonySession(
                model, topo, HarmonyConfig("harmony-pp", batch=BatchConfig(1, 4))
            )
            rows.append((label, session.run()))
        return rows

    rows = once(run_three)
    table = Table(
        ["deployment", "samples/s", "swap-out (GB)"],
        title="multi-machine scaling (GPT-2 XL, harmony-pp)",
    )
    for label, result in rows:
        table.add_row(
            [label, f"{result.throughput:.3f}", f"{result.swap_out_volume / GB:.1f}"]
        )
    print_table(table)
    one, eth, ib = (r for _, r in rows)
    assert eth.throughput > one.throughput   # more aggregate memory wins
    assert ib.throughput >= eth.throughput   # a faster fabric never hurts
    assert eth.swap_out_volume < one.swap_out_volume
