"""Head-to-head scheme comparison in the paper's target regime.

The paper's central pitch: on a modest server whose aggregate GPU
memory is smaller than the training footprint, Harmony's virtualized
parallel schedules beat today's frameworks + per-GPU virtualization.
This bench trains GPT-2 XL (24.9 GB of training state) on the simulated
4x 11 GB commodity box under all five schemes and prints the comparison
table.

Expected shape: harmony-dp beats dp-baseline on both throughput and
host traffic; the pipeline schemes (which partition weights instead of
replicating them) beat the data-parallel schemes; harmony-pp is at
least as good as the pp baseline.
"""

from repro import BatchConfig, HarmonyConfig, HarmonySession, compare_runs
from repro.hardware import presets
from repro.models.transformer import gpt2_xl

from conftest import print_table

SCHEMES = ["single", "dp-baseline", "harmony-dp", "pp-baseline", "harmony-pp"]


def test_scheme_comparison_gpt2xl(once):
    model = gpt2_xl(seq_len=1024)
    topology = presets.gtx1080ti_server(num_gpus=4)

    def run_all():
        results = {}
        for scheme in SCHEMES:
            session = HarmonySession(
                model, topology,
                HarmonyConfig(scheme, batch=BatchConfig(1, 4)),
            )
            results[scheme] = session.run()
        return results

    results = once(run_all)
    print_table(compare_runs(list(results.values())))

    # Harmony beats its corresponding baseline on throughput.
    assert results["harmony-dp"].throughput > results["dp-baseline"].throughput
    assert results["harmony-pp"].throughput >= 0.95 * results["pp-baseline"].throughput
    # ... and on host traffic.
    assert results["harmony-dp"].host_traffic < results["dp-baseline"].host_traffic
    # Partitioned weights (PP family) beat replicated weights (DP family)
    # when state >> memory — the paper's section 4 observation.
    assert results["pp-baseline"].throughput > results["dp-baseline"].throughput
    # Any multi-GPU scheme beats one swapping GPU.
    assert results["harmony-pp"].throughput > results["single"].throughput


def test_scheme_comparison_roomy_memory(once):
    """When aggregate memory is plentiful 'swapping becomes irrelevant'
    (section 4): the baselines stop losing badly."""
    model = gpt2_xl(seq_len=1024)
    topology = presets.dgx1_like_server(num_gpus=4)  # 16 GB V100s + NVLink

    def run_two():
        out = {}
        for scheme in ("dp-baseline", "harmony-dp"):
            session = HarmonySession(
                model, topology, HarmonyConfig(scheme, batch=BatchConfig(1, 2))
            )
            out[scheme] = session.run()
        return out

    results = once(run_two)
    print_table(compare_runs(list(results.values())))
    gap = results["harmony-dp"].throughput / results["dp-baseline"].throughput
    assert gap < 3.0  # the gap narrows when memory pressure eases
