"""Fig. 2(c) — PP with per-GPU tensor swapping: unbalanced footprints.

Paper shape: per-GPU memory usage decreases monotonically across the
pipeline (head stage "Heavy Swap" above the 11 GB capacity line, tail
stage "No Swap" well below it).
"""

from repro.experiments import fig2c_pp_imbalance

from conftest import print_table


def test_fig2c_pp_imbalance_1f1b(once):
    rows = once(fig2c_pp_imbalance.run)
    print_table(fig2c_pp_imbalance.table(rows))
    demands = [r.demand_bytes for r in rows]
    assert all(a > b for a, b in zip(demands, demands[1:]))
    assert rows[0].demand_bytes > rows[0].capacity_bytes  # head swaps
    assert rows[-1].pressure == "no swap"                 # tail does not
    assert rows[0].swap_bytes > rows[-1].swap_bytes


def test_fig2c_gpipe_variant(once):
    """GPipe stashes every microbatch at every stage: footprints are
    higher overall but the head-heavy shape persists (the head's layers
    stash larger early-pipeline activations)."""
    rows = once(fig2c_pp_imbalance.run, schedule="gpipe")
    print_table(
        fig2c_pp_imbalance.table(rows)
    )
    assert rows[0].demand_bytes >= rows[-1].demand_bytes
    assert rows[0].demand_bytes > rows[0].capacity_bytes


def test_fig2c_harmony_balances_the_pipeline(once):
    """Paper principle #4 ("Balance load"): Harmony's interleaved late
    binding spreads the stash load 1F1B concentrates on the head stage.

    Three configurations of the same BERT workload:
    * baseline 1F1B     — strongly imbalanced (head ~5x the tail);
    * harmony-pp        — near-perfectly balanced, but grouping holds
      every microbatch's stash (high total footprint: the memory side
      of the grouping trade-off);
    * harmony-pp + recompute — balanced AND small: checkpoints replace
      stashes, so the balanced footprint also fits in memory.
    """
    from repro.hardware import presets
    from repro.models.transformer import bert_large
    from repro.schedulers.base import BatchConfig
    from repro.schedulers.harmony_pp import HarmonyPP
    from repro.schedulers.options import HarmonyOptions
    from repro.sim.executor import Executor
    from repro.units import GB
    from repro.util.tables import Table

    def run_all():
        baseline = fig2c_pp_imbalance.run()
        harmony = fig2c_pp_imbalance.run_harmony()
        model = bert_large(seq_len=512)
        topo = presets.gtx1080ti_server(4)
        plan = HarmonyPP(
            model, topo, BatchConfig(8, 8),
            options=HarmonyOptions(recompute=True),
        ).plan()
        ckpt = Executor(topo, plan).run()
        ckpt_demands = [
            ckpt.devices[d].peak_demand for d in sorted(ckpt.devices)
        ]
        return baseline, harmony, ckpt_demands

    baseline, harmony, ckpt_demands = once(run_all)
    table = Table(
        ["scheme", "per-GPU footprint (GB)", "max/min"],
        title="pipeline footprint balance (BERT, 4 GPUs, mb 8x8)",
    )
    for label, demands in [
        ("pp-baseline 1F1B", [r.demand_bytes for r in baseline]),
        ("harmony-pp", [r.demand_bytes for r in harmony]),
        ("harmony-pp + recompute", ckpt_demands),
    ]:
        table.add_row(
            [
                label,
                " / ".join(f"{d / GB:.1f}" for d in demands),
                f"{max(demands) / min(demands):.2f}",
            ]
        )
    print_table(table)
    assert fig2c_pp_imbalance.imbalance_ratio(baseline) > 3.0
    assert fig2c_pp_imbalance.imbalance_ratio(harmony) < 1.2
    assert max(ckpt_demands) / min(ckpt_demands) < 1.5
    assert max(ckpt_demands) < min(r.demand_bytes for r in baseline)
