"""The memory-performance tango (section 4) — pack x microbatch sweep
and the double-buffering (prefetch) trade-off.

The paper poses these as open trade-offs; the bench maps them: the
surface has an infeasible region (working set > capacity), a swap-bound
region (tiny packs and microbatches), and a sweet spot the tuner must
find; prefetch helps when memory headroom exists and silently degrades
to serial execution when it does not.
"""

from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.presets import commodity_server
from repro.models import zoo
from repro.tuner.search import tune
from repro.tuner.tango import prefetch_tradeoff, tango_surface, tango_table
from repro.units import MB, TFLOP

from conftest import print_table


def tight_server(num_gpus: int, capacity: float):
    return commodity_server(
        num_gpus=num_gpus,
        gpu_factory=lambda n: DeviceSpec(n, DeviceKind.GPU, capacity, 4.5 * TFLOP),
        name=f"tight-{num_gpus}",
    )


def _workload():
    model = zoo.synthetic_uniform(
        num_layers=8, param_bytes_per_layer=50 * MB, activation_bytes=10 * MB
    )
    return model, tight_server(2, capacity=400 * MB)


def test_tango_surface(once):
    model, topo = _workload()
    points = once(tango_surface, model, topo, 8)
    print_table(tango_table(points))
    feasible = [p for p in points if p.feasible]
    assert feasible, "some cells must be feasible"
    assert any(not p.feasible for p in points), "the fence line must appear"
    # Throughput varies across the surface: the tango is a real trade-off.
    rates = [p.throughput for p in feasible]
    assert max(rates) > 1.2 * min(rates)


def test_tuner_finds_sweet_spot(once):
    model, topo = _workload()
    result = once(tune, model, topo, 4)
    print_table(result.table())
    assert result.best.feasible
    assert result.best.throughput == max(
        p.throughput for p in result.points if p.feasible
    )


def test_prefetch_tradeoff(once):
    model, topo = _workload()
    roomy = tight_server(2, capacity=1200 * MB)

    def both():
        return (
            prefetch_tradeoff(model, roomy, 1, 4),
            prefetch_tradeoff(model, topo, 1, 4),
        )

    (roomy_base, roomy_pf), (tight_base, tight_pf) = once(both)
    print()
    print(f"roomy: base {roomy_base.makespan:.3f}s, prefetch {roomy_pf.makespan:.3f}s")
    print(f"tight: base {tight_base.makespan:.3f}s, prefetch {tight_pf.makespan:.3f}s")
    # With headroom, double buffering overlaps transfers with compute.
    assert roomy_pf.makespan <= roomy_base.makespan + 1e-9
    # Without headroom it degrades gracefully (never a failure).
    assert tight_pf.feasible
