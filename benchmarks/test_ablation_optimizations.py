"""Ablations — attribute Harmony's win to each optimization (section 3).

Runs the weight-dominated workload (GPT-2 XL, whose 25 GB of training
state dwarfs each GPU's 11 GB) under Harmony-PP and Harmony-DP with one
mechanism disabled at a time.  Input-batch grouping is the dominant
lever (it is what turns per-microbatch weight swaps into per-pass
swaps); the others must never *help* when disabled.
"""

from repro.core.config import Parallelism
from repro.experiments import ablations

from conftest import print_table


def _by_variant(rows):
    return {r.variant: r for r in rows}


def test_ablation_harmony_pp(once):
    rows = once(ablations.run, Parallelism.HARMONY_PP)
    print_table(ablations.table(rows, title="ablations: harmony-pp, GPT-2 XL"))
    by = _by_variant(rows)
    full = by["full harmony"]
    assert by["no grouping"].throughput < full.throughput
    assert by["no grouping"].host_traffic_bytes > full.host_traffic_bytes
    assert by["no p2p"].p2p_bytes == 0
    assert by["no p2p"].host_traffic_bytes >= full.host_traffic_bytes
    assert by["no dirty-bit tracking"].host_traffic_bytes >= full.host_traffic_bytes


def test_ablation_harmony_dp(once):
    rows = once(ablations.run, Parallelism.HARMONY_DP)
    print_table(ablations.table(rows, title="ablations: harmony-dp, GPT-2 XL"))
    by = _by_variant(rows)
    full = by["full harmony"]
    assert by["no grouping"].host_traffic_bytes > full.host_traffic_bytes
    # JIT updates avoid re-fetching W/dW after the full backward pass.
    assert by["no jit update"].host_traffic_bytes >= full.host_traffic_bytes


def test_ablation_eviction_policies(once):
    """Victim-selection policy ablation: LRU (the reference swappers),
    largest-first, and vDNN-style activations-first.  Preferentially
    offloading feature maps keeps weights hot, cutting weight traffic."""
    from repro.memory.policy import MemoryPolicy
    from repro.models.transformer import bert_large
    from repro.hardware import presets
    from repro.schedulers.base import BatchConfig
    from repro.schedulers.single import SingleGpuScheduler
    from repro.sim.executor import Executor
    from repro.tensors.tensor import TensorKind
    from repro.units import GB
    from repro.util.tables import Table

    model = bert_large(seq_len=512)

    def run_all():
        out = {}
        for eviction in ("lru", "largest_first", "activations_first"):
            topo = presets.gtx1080ti_server(1)
            policy = MemoryPolicy(
                track_clean=False, p2p_enabled=False, eviction=eviction
            )
            plan = SingleGpuScheduler(
                model, topo, BatchConfig(8, 1), policy=policy
            ).plan()
            out[eviction] = Executor(topo, plan).run()
        return out

    results = once(run_all)
    table = Table(
        ["eviction", "samples/s", "W traffic (GB)", "host traffic (GB)"],
        title="eviction-policy ablation (BERT, single virtualized GPU)",
    )
    for eviction, result in results.items():
        table.add_row(
            [
                eviction,
                f"{result.throughput:.2f}",
                f"{result.stats.kind_swap_volume(TensorKind.WEIGHT) / GB:.2f}",
                f"{result.host_traffic / GB:.1f}",
            ]
        )
    print_table(table)
    assert results["activations_first"].stats.kind_swap_volume(
        TensorKind.WEIGHT
    ) <= results["lru"].stats.kind_swap_volume(TensorKind.WEIGHT)
