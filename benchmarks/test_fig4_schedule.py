"""Fig. 4 — the Harmony-PP schedule on the paper's toy example.

4 uniform layers, 2 GPUs, 2 microbatches, layer granularity: layers
late-bound round-robin (L1/L3 on GPU 1, L2/L4 on GPU 2), every layer's
forward/backward grouped over both microbatches, boundary tensors
moving p2p, updates just-in-time, and weights crossing the host link at
most three times each (in for forward, in for backward, out after
update).
"""

from repro.experiments import fig4_schedule
from repro.tensors.tensor import TensorKind

from conftest import print_table


def test_fig4_harmony_pp_schedule(once):
    example = once(fig4_schedule.run)
    print_table(fig4_schedule.describe(example))

    gpu0, gpu1 = example.sequences["gpu0"], example.sequences["gpu1"]
    # Round-robin late binding: L1, L3 on gpu0; L2, L4 on gpu1.
    assert [s.split("/")[0] for s in gpu0[:4]] == [
        "fwd[p0:0-0]", "fwd[p0:0-0]", "fwd[p2:2-2]", "fwd[p2:2-2]"
    ]
    assert [s.split("/")[0] for s in gpu1[:4]] == [
        "fwd[p1:1-1]", "fwd[p1:1-1]", "fwd[p3:3-3]", "fwd[p3:3-3]"
    ]
    # JIT updates directly after each backward group.
    assert gpu0[6] == "upd[p2]/r0" and gpu0[-1] == "upd[p0]/r0"
    # p2p transfers carry the boundary tensors.
    assert example.result.stats.p2p_volume() > 0
    # Weights swap at most three times each over the host link.
    weight_traffic = example.result.stats.kind_swap_volume(TensorKind.WEIGHT)
    assert weight_traffic <= 3 * example.session.model.param_bytes + 1e-6
