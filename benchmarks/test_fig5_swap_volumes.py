"""Fig. 5 + section-3 analysis — per-iteration weight swap volumes.

Paper formulas (R uniform layers, m microbatches/GPU, N GPUs, capacity
holding one layer-level operation):

    DP baseline   (4m + 2) N |W|      <- must match the simulator exactly
    Harmony-DP     3 N |W|            <- simulator may come in at/under
    Harmony-PP     3 |W|              <- simulator may come in at/under

plus the Fig. 5(a) swap-model table and the full per-kind comparison
the paper omits "for brevity".
"""

import pytest

from repro.analytic.swap_model import swap_model_table
from repro.analytic.volumes import comparison_table
from repro.experiments import fig5_swap_volumes
from repro.models import zoo

from conftest import print_table


def test_fig5_weight_swap_volumes(once):
    rows = once(fig5_swap_volumes.run)
    print_table(fig5_swap_volumes.table(rows))

    base, hdp, hpp = rows
    assert base.simulated_bytes == pytest.approx(base.analytic_bytes)
    assert hdp.simulated_bytes <= hdp.analytic_bytes + 1e-6
    assert hpp.simulated_bytes <= hpp.analytic_bytes + 1e-6
    # Harmony-PP dominates everything (paper: "Harmony-PP dominates
    # savings compared to all other baselines").
    assert hpp.simulated_bytes < hdp.simulated_bytes < base.simulated_bytes


def test_fig5_scaling_in_m_and_n(once):
    """Baseline volume grows with m; Harmony-DP is m-independent;
    Harmony-PP is N-independent."""

    def sweep():
        return (
            fig5_swap_volumes.run(num_microbatches=2),
            fig5_swap_volumes.run(num_microbatches=5),
        )

    small, large = once(sweep)
    print_table(fig5_swap_volumes.table(small))
    print_table(fig5_swap_volumes.table(large))
    assert large[0].simulated_bytes > small[0].simulated_bytes
    assert large[1].simulated_bytes == pytest.approx(small[1].simulated_bytes)
    assert large[2].simulated_bytes == pytest.approx(small[2].simulated_bytes)


def test_fig5a_swap_model_table(once):
    model = zoo.synthetic_uniform(num_layers=1)
    table = once(swap_model_table, model.layer(0), 1)
    print_table(table)
    text = table.render()
    assert "W" in text and "stash_X" in text and "K" in text


def test_fig5_full_tensor_model(once):
    """The complete analytical model over all Fig. 5(a) tensor kinds."""
    model = zoo.synthetic_uniform(num_layers=4)
    table = once(comparison_table, model, 3, 2)
    print_table(table)
    assert "harmony-pp" in table.render()
