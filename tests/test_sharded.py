"""Operation decomposition (harmony-tp): sharded subtasks + collectives."""

import pytest

from repro import BatchConfig, HarmonyConfig, HarmonyOptions, HarmonySession
from repro.errors import ConfigError
from repro.models import zoo
from repro.schedulers.harmony_tp import HarmonyTP
from repro.tasks.sharded import ShardedDecomposer
from repro.tasks.task import TaskKind
from repro.tensors.tensor import TensorKind
from repro.units import MB

from tests.conftest import run_plan, tight_server


@pytest.fixture
def model():
    return zoo.synthetic_uniform(
        num_layers=4, param_bytes_per_layer=100 * MB, activation_bytes=25 * MB
    )


def decompose(model, shards=2, m=2):
    return ShardedDecomposer(
        model, microbatch_size=1, num_microbatches=m, num_shards=shards
    ).decompose()


class TestShardedDecomposer:
    def test_task_counts(self, model):
        it = decompose(model, shards=2, m=2)
        layers, s, m = 4, 2, 2
        compute = layers * m * s * 2 + layers * s  # fwd+bwd subtasks + upds
        gathers = (layers - 1) * m                 # no gather for logits
        grad_colls = (layers - 1) * m              # no collective below L0
        assert len(it.graph) == compute + gathers + grad_colls

    def test_weight_shard_size(self, model):
        it = decompose(model, shards=4)
        assert it.registry.weight(0, 0).size_bytes == 25 * MB

    def test_partial_output_size(self, model):
        it = decompose(model, shards=2)
        assert it.registry.act_part(0, 0, 0).size_bytes == 12.5 * MB

    def test_full_activation_replicated_per_shard(self, model):
        it = decompose(model, shards=2)
        a0 = it.registry.activation(0, 0, 0)
        a1 = it.registry.activation(0, 0, 1)
        assert a0 is not a1
        assert a0.size_bytes == a1.size_bytes == 25 * MB

    def test_gather_comm_bytes(self, model):
        it = decompose(model, shards=4)
        gather = it.gather[(0, 0)]
        assert gather.comm_bytes == pytest.approx(3 / 4 * 25 * MB)

    def test_grad_collective_comm_bytes(self, model):
        it = decompose(model, shards=4)
        coll = it.grad_coll[(0, 0)]
        assert coll.comm_bytes == pytest.approx(2 * 3 / 4 * 25 * MB)

    def test_no_collectives_single_shard(self, model):
        it = decompose(model, shards=1)
        assert not it.gather and not it.grad_coll

    def test_no_gather_for_logits(self, model):
        it = decompose(model, shards=2)
        assert (3, 0) not in it.gather

    def test_updates_are_local(self, model):
        it = decompose(model, shards=2)
        # No update depends on any collective: shards own their slices.
        coll_ids = {t.tid for t in it.graph if t.kind is TaskKind.ALLREDUCE}
        for task in it.upd.values():
            assert not (task.all_deps & coll_ids)

    def test_subtask_flops_divided(self, model):
        one = decompose(model, shards=1)
        four = decompose(model, shards=4)
        f1 = one.fwd[(0, 0, 0)].flops
        f4 = four.fwd[(0, 0, 0)].flops
        assert f4 == pytest.approx(f1 / 4)

    def test_acyclic(self, model):
        decompose(model, shards=3, m=3).graph.topo_order()

    def test_accumulation_ordering(self, model):
        it = decompose(model, shards=2, m=3)
        assert it.bwd[(1, 2, 0)].tid in it.bwd[(1, 2, 1)].all_deps

    def test_samples_counted_once(self, model):
        it = decompose(model, shards=4, m=3)
        assert sum(t.samples for t in it.graph) == 3


class TestHarmonyTpExecution:
    def test_runs_to_completion(self, model):
        topo = tight_server(2, 550 * MB)
        plan = HarmonyTP(model, topo, BatchConfig(1, 2)).plan()
        result = run_plan(topo, plan)
        assert result.samples == 2

    def test_per_gpu_demand_halves_with_two_shards(self, model):
        topo2 = tight_server(2, 2000 * MB)
        plan = HarmonyTP(model, topo2, BatchConfig(1, 2)).plan()
        sharded = run_plan(topo2, plan)
        from repro.schedulers.single import SingleGpuScheduler

        topo1 = tight_server(1, 2000 * MB)
        plan1 = SingleGpuScheduler(model, topo1, BatchConfig(1, 2)).plan()
        single = run_plan(topo1, plan1)
        # Persistent state per GPU is halved; activation replicas are
        # small here, so the total demand must drop well below single-GPU.
        assert (
            sharded.devices["gpu0"].peak_demand
            < 0.7 * single.devices["gpu0"].peak_demand
        )

    def test_collective_traffic_accounted(self, model):
        topo = tight_server(2, 550 * MB)
        plan = HarmonyTP(model, topo, BatchConfig(1, 2)).plan()
        result = run_plan(topo, plan)
        assert result.stats.p2p_volume() > 0

    def test_weight_swap_volume_independent_of_shards(self, model):
        """Sharding splits W across GPUs: total weight traffic stays
        ~|W|-scaled (each shard swaps its slice), not N x |W|."""
        topo = tight_server(2, 420 * MB)
        plan = HarmonyTP(model, topo, BatchConfig(1, 2)).plan()
        result = run_plan(topo, plan)
        w_traffic = result.stats.kind_swap_volume(TensorKind.WEIGHT)
        assert w_traffic <= 3 * model.param_bytes + 1e-6

    def test_session_integration(self, model):
        topo = tight_server(2, 550 * MB)
        session = HarmonySession(
            model, topo, HarmonyConfig("harmony-tp", batch=BatchConfig(1, 2))
        )
        result = session.run()
        assert result.label == "harmony-tp"

    def test_ungrouped_variant_runs(self, model):
        topo = tight_server(2, 550 * MB)
        plan = HarmonyTP(
            model, topo, BatchConfig(1, 2),
            options=HarmonyOptions(grouping=False, jit_update=False),
        ).plan()
        result = run_plan(topo, plan)
        assert result.samples == 2

    def test_packing_rejected(self, model):
        topo = tight_server(2, 550 * MB)
        with pytest.raises(ConfigError):
            HarmonyTP(
                model, topo, BatchConfig(1, 1),
                options=HarmonyOptions(pack_size=2),
            )

    def test_too_many_shards_rejected(self, model):
        topo = tight_server(2, 550 * MB)
        with pytest.raises(ConfigError):
            HarmonyTP(model, topo, BatchConfig(1, 1), num_shards=3)

    def test_deterministic(self, model):
        def once():
            topo = tight_server(2, 550 * MB)
            plan = HarmonyTP(model, topo, BatchConfig(1, 2)).plan()
            return run_plan(topo, plan)

        a, b = once(), once()
        assert a.makespan == b.makespan
        assert a.swap_out_volume == b.swap_out_volume
