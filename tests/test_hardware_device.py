"""Device specifications."""

import pytest

from repro.errors import ConfigError
from repro.hardware.device import (
    DeviceKind,
    DeviceSpec,
    gtx1080ti,
    host_cpu,
    v100,
)
from repro.units import GIB, TFLOP


class TestDeviceSpec:
    def test_gpu_flags(self):
        gpu = gtx1080ti("gpu0")
        assert gpu.is_gpu and not gpu.is_host

    def test_host_flags(self):
        cpu = host_cpu()
        assert cpu.is_host and not cpu.is_gpu

    def test_1080ti_capacity(self):
        assert gtx1080ti("g").memory_bytes == 11 * GIB

    def test_v100_capacity(self):
        assert v100("g").memory_bytes == 16 * GIB

    def test_v100_faster_than_1080ti(self):
        assert v100("a").flops_per_sec > gtx1080ti("b").flops_per_sec

    def test_rejects_zero_memory(self):
        with pytest.raises(ConfigError):
            DeviceSpec("bad", DeviceKind.GPU, 0, 1 * TFLOP)

    def test_rejects_negative_flops(self):
        with pytest.raises(ConfigError):
            DeviceSpec("bad", DeviceKind.GPU, GIB, -1)

    def test_str_mentions_name_and_kind(self):
        text = str(gtx1080ti("gpu3"))
        assert "gpu3" in text and "gpu" in text

    def test_frozen(self):
        gpu = gtx1080ti("g")
        with pytest.raises(AttributeError):
            gpu.memory_bytes = 1

    def test_host_memory_configurable(self):
        cpu = host_cpu(memory_bytes=64 * GIB)
        assert cpu.memory_bytes == 64 * GIB
