"""LayerSpec sizing and FLOP accounting."""

import pytest

from repro.errors import ModelError
from repro.models.layer import LayerSpec
from repro.models.phases import Phase
from repro.units import MB


@pytest.fixture
def layer():
    return LayerSpec(
        name="L",
        param_count=25 * MB,  # 100 MB at fp32
        in_bytes_per_sample=25 * MB,
        out_bytes_per_sample=25 * MB,
        stash_bytes_per_sample=25 * MB,
        flops_fwd_per_sample=1e12,
        flops_bwd_per_sample=2e12,
    )


class TestDerivedSizes:
    def test_param_bytes(self, layer):
        assert layer.param_bytes == 100 * MB

    def test_grad_matches_params(self, layer):
        assert layer.grad_bytes == layer.param_bytes

    def test_adam_optimizer_state(self, layer):
        assert layer.optimizer_bytes == 2 * layer.param_bytes

    def test_sgd_has_no_optimizer_state(self):
        layer = LayerSpec("L", 10, 1, 1, 1, 1, 1, optimizer_multiplier=0.0)
        assert layer.optimizer_bytes == 0

    def test_activation_scaling_with_microbatch(self, layer):
        assert layer.in_bytes(4) == 4 * layer.in_bytes(1)
        assert layer.stash_bytes(3) == 3 * layer.stash_bytes(1)


class TestFlops:
    def test_forward_scales_with_batch(self, layer):
        assert layer.flops(Phase.FORWARD, 4) == 4e12

    def test_backward_scales_with_batch(self, layer):
        assert layer.flops(Phase.BACKWARD, 2) == 4e12

    def test_update_independent_of_batch(self, layer):
        assert layer.flops(Phase.UPDATE, 1) == layer.flops(Phase.UPDATE, 16)

    def test_update_is_6_flops_per_param(self, layer):
        assert layer.flops(Phase.UPDATE, 1) == 6.0 * layer.param_count


class TestWorkingSets:
    def test_update_working_set(self, layer):
        # W + dW + K
        assert layer.working_set_bytes(Phase.UPDATE, 1) == 400 * MB

    def test_backward_biggest_for_uniform_layer(self, layer):
        bwd = layer.working_set_bytes(Phase.BACKWARD, 1)
        fwd = layer.working_set_bytes(Phase.FORWARD, 1)
        assert bwd > fwd

    def test_forward_working_set_counts_in_out_w(self, layer):
        ws = layer.working_set_bytes(Phase.FORWARD, 1)
        assert ws == 25 * MB + 100 * MB + 25 * MB  # X + W + Y (stash == X)

    def test_working_set_grows_with_microbatch(self, layer):
        assert layer.working_set_bytes(Phase.FORWARD, 4) > layer.working_set_bytes(
            Phase.FORWARD, 1
        )


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            LayerSpec("", 1, 1, 1, 1, 1, 1)

    def test_negative_params_rejected(self):
        with pytest.raises(ModelError):
            LayerSpec("L", -1, 1, 1, 1, 1, 1)

    def test_negative_flops_rejected(self):
        with pytest.raises(ModelError):
            LayerSpec("L", 1, 1, 1, 1, -1, 1)

    def test_zero_dtype_rejected(self):
        with pytest.raises(ModelError):
            LayerSpec("L", 1, 1, 1, 1, 1, 1, dtype_bytes=0)

    def test_unknown_phase_rejected(self, layer):
        with pytest.raises(ModelError):
            layer.flops("not-a-phase", 1)
